//! Figure 3 reproduction: end-to-end QoS of the four prototype
//! configuration events, plus a timing of the full scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use ubiqos_runtime::scenario::run_prototype_scenario;

fn print_reproduction() {
    println!("\n================ Figure 3 (reproduction) ================");
    let reports = run_prototype_scenario().expect("scenario configures");
    println!(
        "{:<5} | {:<55} | measured QoS",
        "event", "service configuration result"
    );
    println!("{}", "-".repeat(110));
    for r in &reports {
        let placement: Vec<String> = r
            .placement
            .iter()
            .map(|(c, d)| format!("{c}@{d}"))
            .collect();
        let qos: Vec<String> = r
            .measured_qos
            .iter()
            .map(|q| format!("{} {:.0}fps", q.sink, q.fps))
            .collect();
        println!(
            "{:<5} | {:<55} | {}",
            r.label,
            placement.join(", "),
            qos.join(", ")
        );
    }
    println!(
        "\n(paper: events 1-3 play audio at 40 fps across desktop→PDA→desktop handoffs\n with an MPEG2WAV transcoder on the PDA leg; event 4 delivers video 25 fps + audio 6 fps)\n"
    );
    ubiqos_bench::dump_json("fig3.json", &reports);
}

fn bench_scenario(c: &mut Criterion) {
    print_reproduction();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(20);
    group.bench_function("four-event-prototype-scenario", |b| {
        b.iter(|| run_prototype_scenario().expect("scenario configures"))
    });
    group.finish();
}

criterion_group!(benches, bench_scenario);
criterion_main!(benches);
