//! Figure 4 reproduction: the per-event overhead breakdown (service
//! composition, service distribution, dynamic downloading,
//! initialization/state handoff), plus timings of the two tiers'
//! algorithmic kernels on the scenario's graphs.

use criterion::{criterion_group, criterion_main, Criterion};
use ubiqos_composition::{oc, CorrectionPolicy, TranscoderCatalog};
use ubiqos_distribution::{GreedyHeuristic, OsdProblem, ServiceDistributor};
use ubiqos_model::Weights;
use ubiqos_runtime::apps;
use ubiqos_runtime::scenario::run_prototype_scenario;

fn print_reproduction() {
    println!("\n================ Figure 4 (reproduction) ================");
    let reports = run_prototype_scenario().expect("scenario configures");
    println!(
        "{:<5} | {:>12} | {:>12} | {:>12} | {:>14} | {:>9}",
        "event", "composition", "distribution", "downloading", "init/handoff", "total"
    );
    println!("{}", "-".repeat(82));
    for r in &reports {
        let o = &r.overhead;
        println!(
            "{:<5} | {:>10.0}ms | {:>10.0}ms | {:>10.0}ms | {:>12.0}ms | {:>7.0}ms",
            r.label,
            o.composition_ms,
            o.distribution_ms,
            o.downloading_ms,
            o.init_or_handoff_ms,
            o.total_ms()
        );
    }
    println!(
        "\n(paper: totals under ~2000 ms; downloading dominates event 4 and vanishes when\n components are pre-installed; the PC→PDA handoff of event 2 exceeds event 3's)\n"
    );
    ubiqos_bench::dump_json("fig4.json", &reports);
}

/// Times the OC algorithm on the audio graph with its format mismatch.
fn bench_kernels(c: &mut Criterion) {
    print_reproduction();

    // Composition kernel: compose the conference app's concrete graph and
    // run OC on a fresh clone each iteration.
    let (_, _, _props) = apps::conference_environment();
    let mut registry = ubiqos::prelude::ServiceRegistry::new();
    apps::register_conference_services(&mut registry);
    let composer = ubiqos_composition::ServiceComposer::new(&registry);
    let composed = composer
        .compose(&ubiqos_composition::ComposeRequest {
            abstract_graph: &apps::video_conference_app(),
            user_qos: apps::conference_user_qos(),
            client_device: ubiqos_graph::DeviceId::from_index(2),
            client_props: ubiqos_discovery_props(),
            domain: None,
        })
        .expect("conference composes");
    let catalog = TranscoderCatalog::standard();

    let mut group = c.benchmark_group("fig4");
    group.sample_size(30);
    group.bench_function("oc-on-conference-graph", |b| {
        b.iter(|| {
            let mut g = composed.graph.clone();
            oc::ordered_coordination(&mut g, &catalog, CorrectionPolicy::all()).expect("consistent")
        })
    });

    // Distribution kernel: place the composed conference graph.
    let (env, _, _) = apps::conference_environment();
    let weights = Weights::default();
    group.bench_function("heuristic-on-conference-graph", |b| {
        b.iter(|| {
            let problem = OsdProblem::new(&composed.graph, &env, &weights);
            GreedyHeuristic::paper().distribute(&problem).expect("fits")
        })
    });
    group.finish();
}

fn ubiqos_discovery_props() -> ubiqos::prelude::DeviceProperties {
    apps::desktop_props()
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
