//! Figure 5 reproduction: success rate of the fixed / random / heuristic
//! policies over the paper's full 5000-request, 1000-hour workload, plus
//! a timing of the simulation kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use ubiqos_sim::Policy;

fn print_reproduction() {
    println!("\n================ Figure 5 (reproduction) ================");
    println!("5000 requests over 1000 h; 5 predefined graphs (50-100 nodes);");
    println!("desktop [256MB,300%] / laptop [128MB,100%] / PDA [32MB,50%];");
    println!("b12=50 Mbps, b13=b23=5 Mbps; success rate sampled every 50 h.\n");
    let outcome = ubiqos_bench::reproduce_fig5();
    println!("{}", outcome.render());
    for policy in [
        Policy::Fixed,
        Policy::FixedPlanned,
        Policy::Random,
        Policy::Heuristic,
    ] {
        let c = outcome.curve(policy);
        println!("overall [{:>13}]: {:.1}%", c.policy, c.overall * 100.0);
    }
    let h = outcome.curve(Policy::Heuristic).overall;
    let r = outcome.curve(Policy::Random).overall;
    let f = outcome.curve(Policy::Fixed).overall;
    println!(
        "\nshape: heuristic ({h:.2}) > random ({r:.2}) > fixed ({f:.2}) — {}",
        if h > r && r > f {
            "matches the paper's ordering"
        } else {
            "UNEXPECTED ORDERING"
        }
    );
    println!("(fixed-planned is an ablation: static but well-planned placements)\n");
    ubiqos_bench::dump_json("fig5.json", &outcome);
}

fn bench_simulation(c: &mut Criterion) {
    print_reproduction();
    let small = ubiqos_bench::fig5_config_small();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("simulate-250-requests-all-policies", |b| {
        b.iter(|| ubiqos_sim::scenario::run_fig5(&small))
    });
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
