//! Branch-and-bound OSD solver benchmarks: the suffix-bound ablation and
//! the serial-vs-parallel comparison on Table 1-sized instances.
//!
//! The same measurements, averaged over more instances and written to
//! `BENCH_osd.json`, are produced by
//! `cargo run --release -p ubiqos-bench --bin repro -- osd`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ubiqos_distribution::{ExhaustiveOptimal, OsdProblem, ServiceDistributor};
use ubiqos_model::Weights;
use ubiqos_sim::GraphGenConfig;

fn instance(nodes: usize, seed: u64) -> ubiqos_graph::ServiceGraph {
    let gen = GraphGenConfig {
        nodes: nodes..=nodes,
        ..GraphGenConfig::table1()
    };
    gen.generate(&mut StdRng::seed_from_u64(seed))
}

fn bench_bound_ablation(c: &mut Criterion) {
    let env = ubiqos_sim::table1::table1_environment();
    let weights = Weights::default();
    let mut group = c.benchmark_group("osd/bound-ablation");
    group.sample_size(10);
    for nodes in [14usize, 18, 20] {
        let graph = instance(nodes, 0x05d0 + nodes as u64);
        group.bench_with_input(
            BenchmarkId::new("no-suffix-bound", nodes),
            &graph,
            |b, graph| {
                b.iter(|| {
                    let p = OsdProblem::new(graph, &env, &weights);
                    ExhaustiveOptimal::new()
                        .with_parallel(false)
                        .with_suffix_bound(false)
                        .distribute(&p)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("suffix-bound", nodes),
            &graph,
            |b, graph| {
                b.iter(|| {
                    let p = OsdProblem::new(graph, &env, &weights);
                    ExhaustiveOptimal::new().with_parallel(false).distribute(&p)
                })
            },
        );
    }
    group.finish();
}

fn bench_serial_vs_parallel(c: &mut Criterion) {
    let env = ubiqos_sim::table1::table1_environment();
    let weights = Weights::default();
    let graph = instance(20, 0x05d1);
    let mut group = c.benchmark_group("osd/fan-out-20-nodes");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            let p = OsdProblem::new(&graph, &env, &weights);
            ExhaustiveOptimal::new().with_parallel(false).distribute(&p)
        })
    });
    group.bench_function("parallel", |b| {
        b.iter(|| {
            let p = OsdProblem::new(&graph, &env, &weights);
            ExhaustiveOptimal::new().with_parallel(true).distribute(&p)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bound_ablation, bench_serial_vs_parallel);
criterion_main!(benches);
