//! Complexity and ablation benchmarks backing the paper's analytical
//! claims:
//!
//! * the OC algorithm is O(V + E) (Section 3.2) — timed on growing
//!   consistent graphs, where near-linear growth is expected;
//! * the distribution heuristic is polynomial (Section 3.3) — timed on
//!   growing graphs over the Figure 5 environment;
//! * ablations: how much the heuristic's device re-sorting and cluster
//!   adjacency contribute to placement *quality* (printed as a cost /
//!   success comparison) and what they cost in time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ubiqos_composition::{oc, CorrectionPolicy, TranscoderCatalog};
use ubiqos_distribution::{GreedyHeuristic, OsdProblem, ServiceDistributor};
use ubiqos_graph::{ComponentRole, ServiceComponent, ServiceGraph};
use ubiqos_model::{QosDimension as D, QosValue, QosVector, Weights};
use ubiqos_sim::GraphGenConfig;

/// Builds a consistent-but-adjustable chain-of-width-2 graph of `n`
/// components for OC scaling runs: every node forwards WAV at a tunable
/// rate, and the sink imposes a narrower range, so OC must cascade an
/// adjustment through the whole depth.
fn oc_graph(n: usize) -> ServiceGraph {
    let mut g = ServiceGraph::new();
    let mk = |i: usize| {
        ServiceComponent::builder(format!("n{i}"))
            .role(ComponentRole::Processor)
            .qos_in(
                QosVector::new()
                    .with(D::Format, QosValue::token("WAV"))
                    .with(D::FrameRate, QosValue::range(1.0, 100.0)),
            )
            .qos_out(
                QosVector::new()
                    .with(D::Format, QosValue::token("WAV"))
                    .with(D::FrameRate, QosValue::exact(90.0)),
            )
            .capability(D::FrameRate, QosValue::range(1.0, 100.0))
            .passthrough(D::FrameRate)
            .build()
    };
    let ids: Vec<_> = (0..n).map(|i| g.add_component(mk(i))).collect();
    for i in 1..n {
        g.add_edge(ids[i - 1], ids[i], 1.0).unwrap();
        if i + 1 < n && i % 2 == 0 {
            g.add_edge(ids[i - 1], ids[i + 1], 0.5).unwrap();
        }
    }
    // The sink takes at most 30 fps: the adjustment cascades upstream.
    g.component_mut(ids[n - 1]).unwrap().set_qos_in(
        QosVector::new()
            .with(D::Format, QosValue::token("WAV"))
            .with(D::FrameRate, QosValue::range(1.0, 30.0)),
    );
    g
}

fn bench_oc_scaling(c: &mut Criterion) {
    let catalog = TranscoderCatalog::standard();
    let mut group = c.benchmark_group("scaling/oc");
    group.sample_size(20);
    for n in [50usize, 100, 200, 400] {
        let graph = oc_graph(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            b.iter(|| {
                let mut g = graph.clone();
                oc::ordered_coordination(&mut g, &catalog, CorrectionPolicy::all())
                    .expect("correctable")
            })
        });
    }
    group.finish();
}

fn bench_heuristic_scaling(c: &mut Criterion) {
    let env = ubiqos_sim::scenario::fig5_environment();
    let weights = Weights::default();
    let mut group = c.benchmark_group("scaling/heuristic");
    group.sample_size(20);
    for n in [25usize, 50, 100] {
        let gen = GraphGenConfig {
            nodes: n..=n,
            // Light components so every size fits the trio.
            memory: 0.1..=0.8,
            cpu: 0.1..=0.9,
            ..GraphGenConfig::fig5()
        };
        let graph = gen.generate(&mut StdRng::seed_from_u64(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            b.iter(|| {
                let problem = OsdProblem::new(graph, &env, &weights);
                GreedyHeuristic::paper().distribute(&problem).expect("fits")
            })
        });
    }
    group.finish();
}

fn print_ablation_quality() {
    println!("\n============ Heuristic ablation (placement quality) ============");
    let env = ubiqos_sim::table1::table1_environment();
    let mut rng = StdRng::seed_from_u64(0xab1a);
    let gen = GraphGenConfig::table1();
    let weights = Weights::default();
    type Variant = (&'static str, fn() -> GreedyHeuristic);
    let variants: Vec<Variant> = vec![
        ("heuristic", GreedyHeuristic::paper),
        ("heuristic-unsorted", GreedyHeuristic::without_device_resort),
        (
            "heuristic-nomerge",
            GreedyHeuristic::without_cluster_adjacency,
        ),
    ];
    let mut sums = vec![0.0; variants.len()];
    let mut fails = vec![0usize; variants.len()];
    let trials = 60;
    for _ in 0..trials {
        let graph = gen.generate(&mut rng);
        let problem = OsdProblem::new(&graph, &env, &weights);
        for (i, (_, make)) in variants.iter().enumerate() {
            match make().distribute(&problem) {
                Ok(cut) => sums[i] += problem.cost(&cut),
                Err(_) => fails[i] += 1,
            }
        }
    }
    println!(
        "{:<20} | {:>14} | {:>9}",
        "variant", "mean CA (fit)", "failures"
    );
    for (i, (name, _)) in variants.iter().enumerate() {
        let ok = trials - fails[i];
        println!(
            "{:<20} | {:>14.4} | {:>6}/{trials}",
            name,
            if ok > 0 {
                sums[i] / ok as f64
            } else {
                f64::NAN
            },
            fails[i]
        );
    }
    println!(
        "(lower CA is better. On *two-device* instances the fixed-order variant can win:\n\
         first-fit on the big PC is hard to beat when the optimum is PC-heavy. In the\n\
         three-device Figure 5 environment the full heuristic admits the most requests —\n\
         see the fig5_success bench, where `fixed-planned` isolates placement quality.)\n"
    );
}

fn bench_ablations(c: &mut Criterion) {
    print_ablation_quality();
    let env = ubiqos_sim::table1::table1_environment();
    let weights = Weights::default();
    let gen = GraphGenConfig {
        nodes: 18..=18,
        ..GraphGenConfig::table1()
    };
    let graph = gen.generate(&mut StdRng::seed_from_u64(22));
    let mut group = c.benchmark_group("scaling/ablation-18-nodes");
    group.sample_size(30);
    group.bench_function("paper", |b| {
        b.iter(|| {
            let problem = OsdProblem::new(&graph, &env, &weights);
            GreedyHeuristic::paper().distribute(&problem).expect("fits")
        })
    });
    group.bench_function("unsorted", |b| {
        b.iter(|| {
            let problem = OsdProblem::new(&graph, &env, &weights);
            GreedyHeuristic::without_device_resort()
                .distribute(&problem)
                .expect("fits")
        })
    });
    group.bench_function("nomerge", |b| {
        b.iter(|| {
            let problem = OsdProblem::new(&graph, &env, &weights);
            GreedyHeuristic::without_cluster_adjacency()
                .distribute(&problem)
                .expect("fits")
        })
    });
    group.finish();
}

/// Ablation of the OC examination order: the paper's reverse order
/// converges in one sweep; the forward order needs up to depth-many.
fn bench_order_ablation(c: &mut Criterion) {
    use ubiqos_composition::{coordination_with_order, CoordinationOrder};
    let catalog = TranscoderCatalog::standard();
    let graph = oc_graph(200);
    {
        let mut g = graph.clone();
        let rev = coordination_with_order(
            &mut g,
            &catalog,
            CorrectionPolicy::all(),
            CoordinationOrder::Reverse,
        )
        .expect("correctable");
        let mut g = graph.clone();
        let fwd = coordination_with_order(
            &mut g,
            &catalog,
            CorrectionPolicy::all(),
            CoordinationOrder::Forward,
        )
        .expect("correctable");
        println!(
            "\n============ OC order ablation (200-node graph) ============\n\
             reverse (paper): {} sweep(s), {} checks\n\
             forward (ablation): {} sweep(s), {} checks\n",
            rev.passes, rev.checks, fwd.passes, fwd.checks
        );
    }
    let mut group = c.benchmark_group("scaling/oc-order-200-nodes");
    group.sample_size(20);
    group.bench_function("reverse", |b| {
        b.iter(|| {
            let mut g = graph.clone();
            coordination_with_order(
                &mut g,
                &catalog,
                CorrectionPolicy::all(),
                CoordinationOrder::Reverse,
            )
            .expect("correctable")
        })
    });
    group.bench_function("forward", |b| {
        b.iter(|| {
            let mut g = graph.clone();
            coordination_with_order(
                &mut g,
                &catalog,
                CorrectionPolicy::all(),
                CoordinationOrder::Forward,
            )
            .expect("correctable")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_oc_scaling,
    bench_heuristic_scaling,
    bench_ablations,
    bench_order_ablation
);
criterion_main!(benches);
