//! Table 1 reproduction + distribution-algorithm micro-benchmarks.
//!
//! Prints the paper's Table 1 ("Comparisons among different service
//! distribution algorithms") regenerated on 150 seeded random graphs,
//! then times each algorithm on a representative 15-node instance.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ubiqos_distribution::{
    ExhaustiveOptimal, GreedyHeuristic, OsdProblem, RandomDistributor, ServiceDistributor,
};
use ubiqos_model::Weights;
use ubiqos_sim::GraphGenConfig;

fn print_reproduction() {
    println!("\n================ Table 1 (reproduction) ================");
    let report = ubiqos_bench::reproduce_table1();
    println!("{}", report.render());
    println!(
        "(150 feasible graphs evaluated; {} infeasible graphs skipped; paper: random 25%/0%, heuristic 91%/60%, optimal 100%/100%)\n",
        report.skipped_infeasible
    );
    ubiqos_bench::dump_json("table1.json", &report);
}

fn bench_algorithms(c: &mut Criterion) {
    print_reproduction();

    let gen = GraphGenConfig {
        nodes: 15..=15,
        ..GraphGenConfig::table1()
    };
    let graph = gen.generate(&mut StdRng::seed_from_u64(1));
    let env = ubiqos_sim::table1::table1_environment();
    let weights = Weights::default();

    let mut group = c.benchmark_group("table1/distribute-15-nodes");
    group.sample_size(20);
    group.bench_function("heuristic", |b| {
        b.iter_batched(
            GreedyHeuristic::paper,
            |mut alg| {
                let problem = OsdProblem::new(&graph, &env, &weights);
                alg.distribute(&problem).expect("feasible")
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("random", |b| {
        b.iter_batched(
            || RandomDistributor::seeded(7),
            |mut alg| {
                let problem = OsdProblem::new(&graph, &env, &weights);
                alg.distribute(&problem).expect("feasible")
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("optimal", |b| {
        b.iter_batched(
            ExhaustiveOptimal::new,
            |mut alg| {
                let problem = OsdProblem::new(&graph, &env, &weights);
                alg.distribute(&problem).expect("feasible")
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
