//! `repro` — regenerate every table and figure of the paper's evaluation
//! in one run, without Criterion.
//!
//! ```sh
//! cargo run --release -p ubiqos-bench --bin repro            # everything
//! cargo run --release -p ubiqos-bench --bin repro -- table1  # one artifact
//! ```
//!
//! Valid artifact names are the keys of [`ARTIFACTS`]. Figure data is
//! also written as JSON under `target/repro/`; the `osd` solver
//! benchmark additionally writes `BENCH_osd.json`, the `faults`
//! campaign `BENCH_faults.json`, the `configure` cache/warm-start
//! benchmark `BENCH_configure.json`, and the `scale` pipeline sweep
//! `BENCH_scale.json`, and the `federation` shard sweep
//! `BENCH_federation.json` in the working directory. `scale` reads
//! `UBIQOS_SCALE_ARRIVALS` (default 100000) and `federation` reads
//! `UBIQOS_FED_ARRIVALS` (default 20000) plus `UBIQOS_FED_SHARDS` (a
//! comma-separated shard-count list, default `1,2,4,8`),
//! `UBIQOS_FED_LOSS` (comma-separated drop rates), and
//! `UBIQOS_FED_LOSS_SHARDS` (shard count of the loss and crash sweeps,
//! default `min(max(UBIQOS_FED_SHARDS), 4)`), plus `UBIQOS_FED_CRASHES`
//! (comma-separated `crashes@loss` cells, default `4@0.0,4@0.1`) so CI
//! smoke runs can shrink the sweeps without touching the full nightly
//! campaigns. `osd` reads `UBIQOS_OSD_INSTANCES` (default 25),
//! `UBIQOS_OSD_LARGE_INSTANCES` (default 3), `UBIQOS_OSD_LARGE_NODES`
//! (a comma-separated node-count list, default `48,64,100`) and
//! `UBIQOS_OSD_BUDGET` (default 1000000, the raised-limit exhaustive
//! run's node cap) — and *asserts* the large-graph claims: certified
//! gap ≤ 2%, ≥ 10× fewer expanded nodes than the budgeted exhaustive.

use ubiqos_sim::{Fig5Config, Policy};

/// The artifact dispatch table: one `(name, runner)` row per
/// reproduction. Adding an artifact means adding a row here — `main`'s
/// argument handling and the usage message derive from this table.
const ARTIFACTS: &[(&str, fn())] = &[
    ("table1", table1),
    ("fig3", fig3),
    ("fig4", fig4),
    ("fig5", fig5),
    ("multi-seed", multi_seed),
    ("osd", osd),
    ("faults", faults),
    ("configure", configure),
    ("scale", scale),
    ("federation", federation),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let known = |arg: &str| ARTIFACTS.iter().any(|&(name, _)| name == arg);
    if let Some(unknown) = args.iter().find(|a| !known(a)) {
        let names: Vec<&str> = ARTIFACTS.iter().map(|&(name, _)| name).collect();
        eprintln!(
            "unknown artifact {unknown:?}; expected one of: {}",
            names.join(" ")
        );
        std::process::exit(2);
    }
    for &(name, run) in ARTIFACTS {
        if args.is_empty() || args.iter().any(|a| a == name) {
            run();
        }
    }
}

/// Writes a headline artifact next to the sources so the claim is
/// inspectable without digging through `target/`.
fn write_bench<T: serde::Serialize>(file: &str, report: &T) {
    match serde_json::to_string_pretty(report) {
        Ok(json) => match std::fs::write(file, json) {
            Ok(()) => println!("(benchmark written to {file})"),
            Err(e) => eprintln!("warning: could not write {file}: {e}"),
        },
        Err(e) => eprintln!("warning: could not serialize {file}: {e}"),
    }
}

fn table1() {
    println!("================ Table 1 ================");
    let report = ubiqos_bench::reproduce_table1();
    println!("{}", report.render());
    println!(
        "paper: random 25%/0%, heuristic 91%/60%, optimal 100%/100% ({} infeasible graphs skipped)\n",
        report.skipped_infeasible
    );
    ubiqos_bench::dump_json("table1.json", &report);
}

fn fig3() {
    println!("================ Figure 3 ================");
    let reports = ubiqos_runtime::scenario::run_prototype_scenario().expect("scenario configures");
    for r in &reports {
        print!("{}", r.render());
    }
    println!();
    ubiqos_bench::dump_json("fig3.json", &reports);
}

fn fig4() {
    println!("================ Figure 4 ================");
    let reports = ubiqos_runtime::scenario::run_prototype_scenario().expect("scenario configures");
    println!(
        "{:<5} | {:>12} | {:>12} | {:>12} | {:>14} | {:>9}",
        "event", "composition", "distribution", "downloading", "init/handoff", "total"
    );
    for r in &reports {
        let o = &r.overhead;
        println!(
            "{:<5} | {:>10.0}ms | {:>10.0}ms | {:>10.0}ms | {:>12.0}ms | {:>7.0}ms",
            r.label,
            o.composition_ms,
            o.distribution_ms,
            o.downloading_ms,
            o.init_or_handoff_ms,
            o.total_ms()
        );
    }
    println!();
    ubiqos_bench::dump_json("fig4.json", &reports);
}

fn fig5() {
    println!("================ Figure 5 ================");
    let outcome = ubiqos_bench::reproduce_fig5();
    println!("{}", outcome.render());
    for policy in [
        Policy::Fixed,
        Policy::FixedPlanned,
        Policy::Random,
        Policy::Heuristic,
    ] {
        let c = outcome.curve(policy);
        println!("overall [{:>13}]: {:.1}%", c.policy, c.overall * 100.0);
    }
    println!();
    ubiqos_bench::dump_json("fig5.json", &outcome);
}

fn multi_seed() {
    println!("================ Figure 5 robustness (5 seeds) ================");
    let cfg = Fig5Config {
        workload: ubiqos_sim::WorkloadConfig {
            requests: 1000,
            horizon_h: 200.0,
            ..ubiqos_sim::WorkloadConfig::default()
        },
        ..Fig5Config::default()
    };
    let summaries = ubiqos_sim::run_fig5_multi(&cfg, &[1, 7, 42, 1001, 0x1cdc_2002]);
    println!(
        "{:<14} | {:>6} | {:>6} | {:>6}",
        "policy", "mean", "min", "max"
    );
    for s in &summaries {
        println!(
            "{:<14} | {:>5.1}% | {:>5.1}% | {:>5.1}%",
            s.policy,
            s.mean * 100.0,
            s.min * 100.0,
            s.max * 100.0
        );
    }
    println!();
    ubiqos_bench::dump_json("fig5_multi_seed.json", &summaries);
}

fn osd() {
    println!("================ OSD solver benchmark ================");
    let instances = std::env::var("UBIQOS_OSD_INSTANCES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let large_instances = std::env::var("UBIQOS_OSD_LARGE_INSTANCES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let large_nodes: Vec<usize> = std::env::var("UBIQOS_OSD_LARGE_NODES")
        .ok()
        .map(|v| {
            v.split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .expect("UBIQOS_OSD_LARGE_NODES is a comma-separated list of node counts")
                })
                .collect()
        })
        .unwrap_or_else(|| vec![48, 64, 100]);
    let budget = std::env::var("UBIQOS_OSD_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let mut report = ubiqos_bench::osd::run_osd_bench(instances);
    report.large_cases =
        ubiqos_bench::osd::run_osd_large_bench(large_instances, &large_nodes, budget);
    println!("{}", report.render());
    if !report.speedup_ok(2.0) {
        eprintln!("warning: suffix-bound speedup below 2x on the 20-node/3-device rung");
    }
    // The large-graph acceptance gates are hard asserts: the artifact is
    // the claim, so a drifting gap or a lost node-count advantage must
    // fail the reproduction, not just reshape the JSON.
    assert!(
        report.large_gap_ok(0.02),
        "hierarchical route exceeded the 2% certified-gap ceiling: {:?}",
        report
            .large_cases
            .iter()
            .map(|c| (c.nodes, c.max_gap))
            .collect::<Vec<_>>()
    );
    assert!(
        report.large_expansion_ok(10.0),
        "hierarchical route expanded fewer than 10x fewer nodes than the budgeted \
         exhaustive run: {:?}",
        report
            .large_cases
            .iter()
            .map(|c| (c.nodes, c.expansion_ratio))
            .collect::<Vec<_>>()
    );
    println!();
    ubiqos_bench::dump_json("osd.json", &report);
    write_bench("BENCH_osd.json", &report);
}

/// One rung of the detection-lag ladder in `BENCH_faults.json`: the
/// imperfect-detection campaign at a fixed suspicion grace window.
#[derive(serde::Serialize)]
struct DetectionLagRow {
    /// Suspicion grace window (hours of missed renewals before the lease
    /// expires).
    grace_h: f64,
    /// Heartbeat renewal period (hours).
    heartbeat_period_h: f64,
    /// Worst-case detection lag the soundness invariant enforces:
    /// `grace + heartbeat period`.
    max_detection_lag_h: f64,
    suspicions: u32,
    false_suspected: u32,
    reinstatements: u32,
    stale_views: u32,
    parked: u32,
    readmitted: u32,
    dropped: u32,
    completed: u32,
    log_digest: u64,
}

/// Runs one campaign; on an invariant violation, shrinks the fault
/// schedule to a 1-minimal reproducer before aborting, so the artifact
/// failure is immediately debuggable.
fn run_or_shrink(cfg: &ubiqos_runtime::FaultCampaignConfig) -> ubiqos_runtime::CampaignOutcome {
    match ubiqos_runtime::run_fault_campaign(cfg) {
        Ok(outcome) => outcome,
        Err(violation) => {
            eprintln!("invariant violated: {violation}");
            eprintln!("shrinking the fault schedule to a minimal reproducer...");
            let schedule = ubiqos_runtime::campaign_schedule(cfg);
            if let Some(minimal) = ubiqos_runtime::shrink_schedule(&schedule, |candidate| {
                ubiqos_runtime::run_fault_campaign_with(cfg, candidate)
                    .err()
                    .map(|v| v.to_string())
            }) {
                eprintln!(
                    "minimal schedule: {} of {} faults ({} probes): {}",
                    minimal.schedule.len(),
                    schedule.len(),
                    minimal.probes,
                    minimal.violation
                );
                for f in &minimal.schedule {
                    eprintln!("  t={:.4}h {:?}", f.at_h, f.kind);
                }
            }
            panic!("fault campaign violated an invariant: {violation}");
        }
    }
}

fn faults() {
    println!("================ Fault-injection campaign ================");
    let cfg = ubiqos_bench::faults_config();
    let first = run_or_shrink(&cfg);
    // Re-run the identical campaign and require a byte-identical trace:
    // the determinism guarantee is part of the artifact, not a side note.
    let second = run_or_shrink(&cfg);
    assert_eq!(
        first.log.render(),
        second.log.render(),
        "same seed must reproduce a byte-identical event log"
    );
    assert_eq!(first.report, second.report, "and the same summary report");
    println!("{}", first.report.render());
    println!(
        "determinism: two runs, byte-identical logs ({} lines, digest {:#018x})",
        first.log.lines().len(),
        first.report.log_digest
    );

    // The staged-recovery payoff: the identical seed, workload, and fault
    // schedule with the ladder and retry queue disabled (drop-on-fault).
    let strict = run_or_shrink(&ubiqos_bench::faults_config_strict());
    println!();
    println!("---- staged recovery vs drop-on-fault (same seed & schedule) ----");
    println!(
        "{:<18} | {:>8} | {:>9} | {:>8} | {:>6} | {:>10} | {:>7}",
        "mode", "admitted", "completed", "degraded", "parked", "readmitted", "dropped"
    );
    for (label, r) in [
        ("staged (default)", &first.report),
        ("drop-on-fault", &strict.report),
    ] {
        println!(
            "{:<18} | {:>8} | {:>9} | {:>8} | {:>6} | {:>10} | {:>7}",
            label, r.admitted, r.completed, r.degraded, r.parked, r.readmitted, r.dropped
        );
    }
    // The arrival sequence is seed-derived and identical in both modes;
    // admission counts may differ slightly because dropping sessions
    // frees capacity that staged recovery keeps serving (degraded or
    // re-placed sessions stay live to completion).
    assert_eq!(
        first.report.arrivals, strict.report.arrivals,
        "both modes must face the identical arrival workload"
    );
    assert!(
        first.report.dropped < strict.report.dropped,
        "staged recovery must drop fewer sessions than drop-on-fault"
    );
    println!(
        "staged recovery drops {} session(s) instead of {} and completes {} vs {}",
        first.report.dropped,
        strict.report.dropped,
        first.report.completed,
        strict.report.completed
    );
    // The detection-lag ladder: the identical workload under imperfect
    // failure detection (partitions, lossy heartbeats) at three grace
    // windows. Longer grace tolerates longer network blips but widens
    // the stale window in which placements land on dead devices.
    println!();
    println!(
        "---- imperfect detection: detection-lag ladder (grace + {:.2}h heartbeat) ----",
        ubiqos_bench::faults_config_imperfect(0.5).heartbeat_period_h
    );
    println!(
        "{:>7} | {:>9} | {:>10} | {:>5} | {:>9} | {:>10} | {:>6} | {:>10} | {:>7}",
        "grace h",
        "lag bound",
        "suspicions",
        "false",
        "reinstate",
        "staleviews",
        "parked",
        "readmitted",
        "dropped"
    );
    let mut ladder: Vec<DetectionLagRow> = Vec::new();
    for grace_h in [0.5, 1.0, 2.0] {
        let cfg = ubiqos_bench::faults_config_imperfect(grace_h);
        let outcome = run_or_shrink(&cfg);
        let r = &outcome.report;
        let row = DetectionLagRow {
            grace_h,
            heartbeat_period_h: cfg.heartbeat_period_h,
            max_detection_lag_h: grace_h + cfg.heartbeat_period_h,
            suspicions: r.suspicions,
            false_suspected: r.false_suspected,
            reinstatements: r.reinstatements,
            stale_views: r.stale_views,
            parked: r.parked,
            readmitted: r.readmitted,
            dropped: r.dropped,
            completed: r.completed,
            log_digest: r.log_digest,
        };
        println!(
            "{:>7.2} | {:>8.2}h | {:>10} | {:>5} | {:>9} | {:>10} | {:>6} | {:>10} | {:>7}",
            row.grace_h,
            row.max_detection_lag_h,
            row.suspicions,
            row.false_suspected,
            row.reinstatements,
            row.stale_views,
            row.parked,
            row.readmitted,
            row.dropped
        );
        assert_eq!(
            r.parked_at_end, 0,
            "imperfect campaigns must converge (grace {grace_h}h)"
        );
        ladder.push(row);
    }

    println!();
    ubiqos_bench::dump_json("faults.json", &first.report);
    ubiqos_bench::dump_json("faults_strict.json", &strict.report);
    // BENCH_faults.json keeps the perfect-detection report's top-level
    // keys byte-for-byte (the nightly drift gate pins them) and grows a
    // `detection_lag` array with the ladder rows.
    let merged = serde_json::to_value(&first.report).and_then(|mut value| {
        if let serde_json::Value::Object(pairs) = &mut value {
            pairs.push(("detection_lag".to_owned(), serde_json::to_value(&ladder)?));
        }
        Ok(value)
    });
    match merged {
        Ok(value) => write_bench("BENCH_faults.json", &value),
        Err(e) => eprintln!("warning: could not serialize the fault report: {e}"),
    }
}

fn configure() {
    println!("================ Configuration cache + warm start ================");
    let report = ubiqos_bench::configure::run_configure_bench(300, 4);
    println!("{}", report.render());
    // Cache invisibility is part of the artifact, not a side note: the
    // cache and the warm seeds must never change an observable output.
    assert!(
        report.determinism_ok(),
        "cache/warm-start determinism violated: {report:?}"
    );
    if !report.cache_ok(2.0) {
        eprintln!("warning: cache speedup below 2x on the configure pipeline");
    }
    if !report.warm_ok(2.0) {
        eprintln!("warning: warm starts save less than 2x OSD nodes on re-placement");
    }
    println!();
    ubiqos_bench::dump_json("configure.json", &report);
    write_bench("BENCH_configure.json", &report);
}

fn scale() {
    println!("================ Batched pipeline scaling ================");
    let arrivals = std::env::var("UBIQOS_SCALE_ARRIVALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let report = ubiqos_bench::scale::run_scale_bench(arrivals, &[1, 4, 32, 256], &[1, 8]);
    println!("{}", report.render());
    // Byte-identity to the serial reference is part of the artifact, not
    // a side note: batching may only ever change wall-clock.
    assert!(
        report.all_match_serial,
        "a batched cell diverged from the serial digest {:#018x}",
        report.serial_digest
    );
    if !report.scale_ok(2.0) {
        eprintln!("warning: batched speedup below 2x at the widest thread count");
    }
    println!();
    ubiqos_bench::dump_json("scale.json", &report);
    write_bench("BENCH_scale.json", &report);
}

fn federation() {
    println!("================ Sharded federation scaling ================");
    let arrivals = std::env::var("UBIQOS_FED_ARRIVALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let shard_counts: Vec<usize> = std::env::var("UBIQOS_FED_SHARDS")
        .ok()
        .map(|v| {
            v.split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .expect("UBIQOS_FED_SHARDS is a comma-separated list of shard counts")
                })
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let losses: Vec<f64> = std::env::var("UBIQOS_FED_LOSS")
        .ok()
        .map(|v| {
            v.split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .expect("UBIQOS_FED_LOSS is a comma-separated list of drop rates")
                })
                .collect()
        })
        .unwrap_or_else(|| vec![0.01, 0.1, 0.3]);
    let loss_shards = std::env::var("UBIQOS_FED_LOSS_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| *shard_counts.iter().max().unwrap_or(&4).min(&4));
    let crash_cells: Vec<(usize, f64)> = std::env::var("UBIQOS_FED_CRASHES")
        .ok()
        .map(|v| {
            v.split(',')
                .map(|pair| {
                    let (n, loss) = pair
                        .split_once('@')
                        .expect("UBIQOS_FED_CRASHES cells are crashes@loss, e.g. 4@0.1");
                    (
                        n.trim().parse().expect("crash count"),
                        loss.trim().parse().expect("loss rate"),
                    )
                })
                .collect()
        })
        .unwrap_or_else(|| vec![(4, 0.0), (4, 0.1)]);
    let report = ubiqos_bench::federation::run_federation_bench(
        arrivals,
        &shard_counts,
        loss_shards,
        &losses,
        &crash_cells,
    );
    println!("{}", report.render());
    // Byte-identity of the 1-shard cell to the serial reference is part
    // of the artifact, not a side note: sharding may only ever change
    // wall-clock and which shard logs what, never the merged behaviour.
    assert!(
        report.one_shard_matches_serial,
        "the 1-shard federation cell diverged from the serial digest {:#018x}",
        report.serial_digest
    );
    // The lossy sweep's convergence contract is equally hard: every
    // seeded drop/dup/reorder schedule must drain to the exact digests
    // of the perfect run.
    assert!(
        report.lossy_converges,
        "a lossy federation run diverged from the perfect digests"
    );
    // So is the durability contract: every seeded shard-crash schedule
    // (with or without loss on top) rebuilds its shards from snapshot +
    // WAL and drains to the crash-free run's exact digests.
    assert!(
        report.crashes_converge,
        "a crashed federation run diverged from the crash-free digests"
    );
    // Sharding shrinks the discovery/placement share of each admission
    // but not its composition share, so the sweep saturates well below
    // linear; 1.2x is the regression floor, not the aspiration.
    if !report.scale_ok(1.2) {
        eprintln!("warning: best shard-sweep speedup below 1.2x over serial");
    }
    println!();
    ubiqos_bench::dump_json("federation.json", &report);
    write_bench("BENCH_federation.json", &report);
}
