//! `repro` — regenerate every table and figure of the paper's evaluation
//! in one run, without Criterion.
//!
//! ```sh
//! cargo run --release -p ubiqos-bench --bin repro            # everything
//! cargo run --release -p ubiqos-bench --bin repro -- table1  # one artifact
//! ```
//!
//! Valid artifact names: `table1`, `fig3`, `fig4`, `fig5`, `multi-seed`,
//! `osd`, `faults`. Figure data is also written as JSON under
//! `target/repro/`; the `osd` solver benchmark additionally writes
//! `BENCH_osd.json` and the `faults` campaign `BENCH_faults.json` in the
//! working directory.

use ubiqos_sim::{Fig5Config, Policy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    let mut ran = 0;

    if want("table1") {
        table1();
        ran += 1;
    }
    if want("fig3") {
        fig3();
        ran += 1;
    }
    if want("fig4") {
        fig4();
        ran += 1;
    }
    if want("fig5") {
        fig5();
        ran += 1;
    }
    if want("multi-seed") {
        multi_seed();
        ran += 1;
    }
    if want("osd") {
        osd();
        ran += 1;
    }
    if want("faults") {
        faults();
        ran += 1;
    }
    if ran == 0 {
        eprintln!(
            "unknown artifact {:?}; expected one of: table1 fig3 fig4 fig5 multi-seed osd faults",
            args
        );
        std::process::exit(2);
    }
}

fn table1() {
    println!("================ Table 1 ================");
    let report = ubiqos_bench::reproduce_table1();
    println!("{}", report.render());
    println!(
        "paper: random 25%/0%, heuristic 91%/60%, optimal 100%/100% ({} infeasible graphs skipped)\n",
        report.skipped_infeasible
    );
    ubiqos_bench::dump_json("table1.json", &report);
}

fn fig3() {
    println!("================ Figure 3 ================");
    let reports = ubiqos_runtime::scenario::run_prototype_scenario().expect("scenario configures");
    for r in &reports {
        print!("{}", r.render());
    }
    println!();
    ubiqos_bench::dump_json("fig3.json", &reports);
}

fn fig4() {
    println!("================ Figure 4 ================");
    let reports = ubiqos_runtime::scenario::run_prototype_scenario().expect("scenario configures");
    println!(
        "{:<5} | {:>12} | {:>12} | {:>12} | {:>14} | {:>9}",
        "event", "composition", "distribution", "downloading", "init/handoff", "total"
    );
    for r in &reports {
        let o = &r.overhead;
        println!(
            "{:<5} | {:>10.0}ms | {:>10.0}ms | {:>10.0}ms | {:>12.0}ms | {:>7.0}ms",
            r.label,
            o.composition_ms,
            o.distribution_ms,
            o.downloading_ms,
            o.init_or_handoff_ms,
            o.total_ms()
        );
    }
    println!();
    ubiqos_bench::dump_json("fig4.json", &reports);
}

fn fig5() {
    println!("================ Figure 5 ================");
    let outcome = ubiqos_bench::reproduce_fig5();
    println!("{}", outcome.render());
    for policy in [
        Policy::Fixed,
        Policy::FixedPlanned,
        Policy::Random,
        Policy::Heuristic,
    ] {
        let c = outcome.curve(policy);
        println!("overall [{:>13}]: {:.1}%", c.policy, c.overall * 100.0);
    }
    println!();
    ubiqos_bench::dump_json("fig5.json", &outcome);
}

fn multi_seed() {
    println!("================ Figure 5 robustness (5 seeds) ================");
    let cfg = Fig5Config {
        workload: ubiqos_sim::WorkloadConfig {
            requests: 1000,
            horizon_h: 200.0,
            ..ubiqos_sim::WorkloadConfig::default()
        },
        ..Fig5Config::default()
    };
    let summaries = ubiqos_sim::run_fig5_multi(&cfg, &[1, 7, 42, 1001, 0x1cdc_2002]);
    println!(
        "{:<14} | {:>6} | {:>6} | {:>6}",
        "policy", "mean", "min", "max"
    );
    for s in &summaries {
        println!(
            "{:<14} | {:>5.1}% | {:>5.1}% | {:>5.1}%",
            s.policy,
            s.mean * 100.0,
            s.min * 100.0,
            s.max * 100.0
        );
    }
    println!();
    ubiqos_bench::dump_json("fig5_multi_seed.json", &summaries);
}

fn osd() {
    println!("================ OSD solver benchmark ================");
    let report = ubiqos_bench::osd::run_osd_bench(25);
    println!("{}", report.render());
    if !report.speedup_ok(2.0) {
        eprintln!("warning: suffix-bound speedup below 2x on the 20-node/3-device rung");
    }
    println!();
    ubiqos_bench::dump_json("osd.json", &report);
    // The headline artifact also lands next to the sources so the claim
    // is inspectable without digging through target/.
    match serde_json::to_string_pretty(&report) {
        Ok(json) => match std::fs::write("BENCH_osd.json", json) {
            Ok(()) => println!("(solver benchmark written to BENCH_osd.json)"),
            Err(e) => eprintln!("warning: could not write BENCH_osd.json: {e}"),
        },
        Err(e) => eprintln!("warning: could not serialize the osd report: {e}"),
    }
}

fn faults() {
    println!("================ Fault-injection campaign ================");
    let cfg = ubiqos_bench::faults_config();
    let first = ubiqos_runtime::run_fault_campaign(&cfg)
        .expect("campaign must complete with every invariant intact");
    // Re-run the identical campaign and require a byte-identical trace:
    // the determinism guarantee is part of the artifact, not a side note.
    let second = ubiqos_runtime::run_fault_campaign(&cfg)
        .expect("campaign must complete with every invariant intact");
    assert_eq!(
        first.log.render(),
        second.log.render(),
        "same seed must reproduce a byte-identical event log"
    );
    assert_eq!(first.report, second.report, "and the same summary report");
    println!("{}", first.report.render());
    println!(
        "determinism: two runs, byte-identical logs ({} lines, digest {:#018x})",
        first.log.lines().len(),
        first.report.log_digest
    );
    println!();
    ubiqos_bench::dump_json("faults.json", &first.report);
    match serde_json::to_string_pretty(&first.report) {
        Ok(json) => match std::fs::write("BENCH_faults.json", json) {
            Ok(()) => println!("(fault campaign written to BENCH_faults.json)"),
            Err(e) => eprintln!("warning: could not write BENCH_faults.json: {e}"),
        },
        Err(e) => eprintln!("warning: could not serialize the fault report: {e}"),
    }
}
