//! The configuration-cache + warm-start benchmark behind
//! `BENCH_configure.json`.
//!
//! Three campaigns on the fault-harness smart space, all deterministic:
//!
//! * **Steady state** — a Figure-5-style request stream (two application
//!   templates cycling over five client devices with a bounded window of
//!   live sessions) runs twice, composition cache off then on. The
//!   artifact records per-stage wall clock (discover / compose / place /
//!   download), cache hit rates, and the configure-pipeline speedup the
//!   cache buys. The admission traces of both runs must be
//!   byte-identical — the cache may only ever change wall-clock, never an
//!   observable output.
//! * **Warm-started re-placement** — a fluctuation/recovery loop under
//!   [`PlacementStrategy::Optimal`], run cold-started then warm-started.
//!   Warm starting seeds the branch-and-bound OSD solver with each
//!   session's previous placement, tightening the incumbent before the
//!   first dive; the artifact compares summed nodes expanded and asserts
//!   the placements themselves are identical.
//! * **Campaign digest** — the unit-scale fault campaign runs with the
//!   cache enabled and disabled; both must produce the identical event
//!   log digest (virtual time never observes the cache).
//!
//! The headline claims — the cache wins ≥2x on the configure pipeline
//! and warm starts at least halve the explored OSD tree — are checked by
//! [`ConfigureBenchReport::cache_ok`] / [`ConfigureBenchReport::warm_ok`]
//! and surfaced by `repro -- configure`.

use crate::hist::{Align, TextTable};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;
use ubiqos::fault_report::fnv1a;
use ubiqos_graph::{AbstractComponentSpec, AbstractServiceGraph, ComponentId, DeviceId, PinHint};
use ubiqos_model::QosVector;
use ubiqos_runtime::faults::{app_template, build_space};
use ubiqos_runtime::{DomainServer, FaultCampaignConfig, PlacementStrategy, SessionId, StageTimes};

/// One steady-state run at a fixed cache setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachePhase {
    /// Whether the composition cache (and discovery memo) were enabled.
    pub cache: bool,
    /// Sessions admitted.
    pub admitted: usize,
    /// Requests rejected (deterministic, identical in both phases).
    pub rejected: usize,
    /// Composition-cache hits.
    pub hits: u64,
    /// Composition-cache misses.
    pub misses: u64,
    /// Cache entries revalidated across a registry-epoch bump.
    pub revalidations: u64,
    /// Per-stage wall clock — the same [`StageTimes`] type
    /// `BENCH_scale.json` uses, so stage accounting has exactly one
    /// schema across artifacts. (`pipeline_ms` is derived:
    /// [`StageTimes::pipeline_ms`].)
    pub stages: StageTimes,
    /// End-to-end wall clock of the whole phase (ms), bookkeeping
    /// included.
    pub wall_ms: f64,
    /// FNV-1a digest of the admission trace.
    pub trace_digest: u64,
}

/// One fluctuation/recovery run at a fixed warm-start setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsdPhase {
    /// Whether re-placements seeded the solver with the old placement.
    pub warm_start: bool,
    /// Optimal solves performed during the event loop.
    pub solves: u64,
    /// Solves where a warm seed was actually used.
    pub warm_solves: u64,
    /// Branch-and-bound nodes expanded, summed over the loop.
    pub nodes_expanded: u64,
    /// Subtrees cut by the bound, summed over the loop.
    pub pruned_bound: u64,
    /// FNV-1a digest of the placement trace (per-event cuts + factors).
    pub trace_digest: u64,
}

/// The full `BENCH_configure.json` artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigureBenchReport {
    /// Artifact schema version ([`ubiqos::BENCH_SCHEMA_VERSION`]). The
    /// nightly drift gate refuses to compare artifacts across versions.
    pub schema_version: u32,
    /// Requests in each steady-state phase.
    pub requests: usize,
    /// Live-session window of the steady-state workload.
    pub window: usize,
    /// Steady state with the cache disabled.
    pub cold: CachePhase,
    /// Steady state with the cache enabled.
    pub warm: CachePhase,
    /// `cold.pipeline_ms / warm.pipeline_ms` — what the cache buys.
    pub cache_speedup: f64,
    /// Whether the two steady-state traces were byte-identical.
    pub cache_logs_identical: bool,
    /// Re-placement loop without warm starts.
    pub cold_osd: OsdPhase,
    /// Re-placement loop with warm starts.
    pub warm_osd: OsdPhase,
    /// `cold_osd.nodes_expanded / warm_osd.nodes_expanded`.
    pub warm_node_ratio: f64,
    /// Whether cold and warm loops produced identical placements.
    pub warm_cuts_identical: bool,
    /// Unit-scale fault-campaign log digest with the cache enabled.
    pub campaign_digest_cached: u64,
    /// The same campaign's digest with the cache disabled.
    pub campaign_digest_uncached: u64,
}

impl ConfigureBenchReport {
    /// The cache claim: the enabled-cache configure pipeline is at least
    /// `factor`x faster than the disabled one.
    pub fn cache_ok(&self, factor: f64) -> bool {
        self.cache_speedup >= factor
    }

    /// The warm-start claim: cold re-placement expands at least `factor`x
    /// the nodes warm re-placement does.
    pub fn warm_ok(&self, factor: f64) -> bool {
        self.warm_node_ratio >= factor
    }

    /// Whether every cache-invisibility check passed: identical
    /// steady-state traces, identical warm/cold placements, identical
    /// campaign digests.
    pub fn determinism_ok(&self) -> bool {
        self.cache_logs_identical
            && self.warm_cuts_identical
            && self.campaign_digest_cached == self.campaign_digest_uncached
    }

    /// Renders the phases as aligned tables.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(&[
            ("cache", 9, Align::Left),
            ("admitted", 8, Align::Right),
            ("hits", 6, Align::Right),
            ("misses", 6, Align::Right),
            ("discover ms", 11, Align::Right),
            ("compose ms", 10, Align::Right),
            ("place ms", 8, Align::Right),
            ("pipeline ms", 11, Align::Right),
        ]);
        for p in [&self.cold, &self.warm] {
            table.row(&[
                (if p.cache { "on" } else { "off" }).to_string(),
                p.admitted.to_string(),
                p.hits.to_string(),
                p.misses.to_string(),
                format!("{:.1}", p.stages.discover_ms),
                format!("{:.1}", p.stages.compose_ms),
                format!("{:.1}", p.stages.place_ms),
                format!("{:.1}", p.stages.pipeline_ms()),
            ]);
        }
        let mut out = table.finish();
        let _ = writeln!(
            out,
            "cache speedup {:.1}x on the configure pipeline; traces {}",
            self.cache_speedup,
            if self.cache_logs_identical {
                "byte-identical"
            } else {
                "DIVERGED"
            }
        );
        let _ = writeln!(out);
        let mut osd = TextTable::new(&[
            ("warm start", 10, Align::Left),
            ("solves", 6, Align::Right),
            ("warm solves", 11, Align::Right),
            ("expanded", 10, Align::Right),
            ("bound-pruned", 12, Align::Right),
        ]);
        for p in [&self.cold_osd, &self.warm_osd] {
            osd.row(&[
                (if p.warm_start { "on" } else { "off" }).to_string(),
                p.solves.to_string(),
                p.warm_solves.to_string(),
                p.nodes_expanded.to_string(),
                p.pruned_bound.to_string(),
            ]);
        }
        out.push_str(&osd.finish());
        let _ = writeln!(
            out,
            "warm start expands {:.1}x fewer nodes; placements {}",
            self.warm_node_ratio,
            if self.warm_cuts_identical {
                "identical"
            } else {
                "DIVERGED"
            }
        );
        let _ = writeln!(
            out,
            "fault campaign digest {:#018x} (cache on) vs {:#018x} (cache off)",
            self.campaign_digest_cached, self.campaign_digest_uncached
        );
        out
    }
}

/// Drives one steady-state phase: `requests` admissions cycling the two
/// fault-harness templates over five client devices, holding at most
/// `window` sessions live. Returns the phase row and the full admission
/// trace (for byte-identity checks).
fn steady_state_phase(cache: bool, requests: usize, window: usize) -> (CachePhase, String) {
    let mut server = build_space(6);
    server.set_config_cache(cache);
    let mut trace = String::new();
    let mut live: VecDeque<SessionId> = VecDeque::new();
    let mut admitted = 0;
    let mut rejected = 0;
    let wall = Instant::now();
    for i in 0..requests {
        let (name, graph) = app_template(i);
        let client = 1 + i % 5;
        match server.start_session(
            format!("{name}-{i}"),
            graph,
            QosVector::new(),
            DeviceId::from_index(client),
        ) {
            Ok(id) => {
                let s = server.session(id).expect("just admitted");
                let _ = writeln!(
                    trace,
                    "{i} {name} dev{client} cost {:.9} overhead {:.3}ms",
                    s.configuration.cost,
                    s.overhead_log.last().map_or(0.0, |(_, o)| o.total_ms())
                );
                live.push_back(id);
                admitted += 1;
            }
            Err(e) => {
                let _ = writeln!(trace, "{i} {name} dev{client} rejected: {e}");
                rejected += 1;
            }
        }
        server.play(30.0);
        if live.len() > window {
            let oldest = live.pop_front().expect("window is non-empty");
            server.stop_session(oldest);
        }
    }
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let stats = server.config_cache_stats();
    let phase = CachePhase {
        cache,
        admitted,
        rejected,
        hits: stats.hits,
        misses: stats.misses,
        revalidations: stats.revalidations,
        stages: server.stage_times(),
        wall_ms,
        trace_digest: fnv1a(trace.as_bytes()),
    };
    (phase, trace)
}

/// Appends every live session's placement (and every parked id) to the
/// trace — the observable state the warm start must not change.
fn record_placements(server: &DomainServer, label: &str, trace: &mut String) {
    let _ = write!(trace, "{label}:");
    for (id, s) in server.sessions() {
        let assignment: Vec<usize> = (0..s.configuration.app.graph.component_count())
            .map(|i| {
                s.configuration
                    .cut
                    .part_of(ComponentId::from_index(i))
                    .expect("every component of a live cut is assigned")
            })
            .collect();
        let _ = write!(
            trace,
            " {id}@{assignment:?}x{:.2}c{:.9}",
            s.degrade_factor, s.configuration.cost
        );
    }
    let _ = writeln!(trace, " parked={}", server.parked_count());
}

/// A conference-style template: `width` MPEG sources fanning into one
/// WAV-only player pinned to the client, so composition inserts one
/// MPEG→WAV transcoder per branch. The fault-harness templates compose
/// to two or three components — too small for the OSD search tree to
/// matter — whereas this graph has `2 * width` free components (the
/// unpinned sources and transcoders), making every re-placement genuine
/// branch-and-bound work. MPEG sources are used because the space's only
/// `mpeg-source` instance is unpinned; `wav-source` specs resolve to the
/// per-device pinned instances and leave the solver nothing to decide.
fn conference_template(width: usize) -> AbstractServiceGraph {
    let mut g = AbstractServiceGraph::new();
    let sink = g.add_spec(AbstractComponentSpec::new("pcm-player").with_pin(PinHint::ClientDevice));
    for _ in 0..width {
        let s = g.add_spec(AbstractComponentSpec::new("mpeg-source"));
        g.add_edge(s, sink, 2.5).expect("template edge");
    }
    g
}

/// Drives one fluctuation/recovery loop under the optimal placement
/// strategy. Returns the phase row and the placement trace.
fn replacement_phase(warm_start: bool, rounds: usize) -> (OsdPhase, String) {
    let mut server = build_space(6);
    server.set_placement_strategy(PlacementStrategy::Optimal { warm_start });
    // Clients are the two largest devices — the only ones a whole
    // four-branch conference fits beside its pinned sink.
    let clients = [0usize, 4];
    for (i, &c) in clients.iter().enumerate() {
        server
            .start_session(
                format!("conference-{i}"),
                conference_template(4),
                QosVector::new(),
                DeviceId::from_index(c),
            )
            .expect("fresh space admits the warm-up sessions");
    }
    // Only the recovery re-placements are under test, not the admission
    // solves.
    server.reset_placement_totals();
    let mut trace = String::new();
    for round in 0..rounds {
        for &d in &clients {
            // Crash the client: its session parks (the pinned sink fits
            // nowhere), keeping the pre-crash configuration. Recovery
            // eagerly re-admits it, and the re-admission solve is seeded
            // with the parked cut — valid again on the pristine device
            // and already optimal, so a warm solver proves optimality
            // almost immediately where a cold one searches from scratch.
            server.handle_crash(DeviceId::from_index(d));
            record_placements(&server, &format!("r{round} d{d} crash"), &mut trace);
            server.play(60.0);
            server.recover_device(DeviceId::from_index(d));
            record_placements(&server, &format!("r{round} d{d} recover"), &mut trace);
            server.play(60.0);
        }
    }
    let totals = server.placement_totals();
    let phase = OsdPhase {
        warm_start,
        solves: totals.solves,
        warm_solves: totals.warm_solves,
        nodes_expanded: totals.nodes_expanded,
        pruned_bound: totals.pruned_bound,
        trace_digest: fnv1a(trace.as_bytes()),
    };
    (phase, trace)
}

/// The unit-scale fault campaign's log digest at one cache setting.
fn campaign_digest(cache: bool) -> u64 {
    let cfg = FaultCampaignConfig {
        config_cache: cache,
        ..FaultCampaignConfig::default()
    };
    ubiqos_runtime::run_fault_campaign(&cfg)
        .expect("the unit-scale campaign holds its invariants")
        .report
        .log_digest
}

/// Runs a phase `reps` times and keeps the fastest run by pipeline
/// wall-clock. Every repetition is fully deterministic apart from the
/// timings — the traces must agree, which this asserts — so min-of-N
/// only filters scheduler noise out of the reported milliseconds.
fn best_of(reps: usize, mut phase: impl FnMut() -> (CachePhase, String)) -> (CachePhase, String) {
    let mut best = phase();
    for _ in 1..reps {
        let next = phase();
        assert_eq!(
            next.1, best.1,
            "steady-state phases must be deterministic across repetitions"
        );
        if next.0.stages.pipeline_ms() < best.0.stages.pipeline_ms() {
            best = next;
        }
    }
    best
}

/// Runs all three campaigns. `requests` sizes the steady-state stream
/// (the artifact uses 300), `rounds` the fluctuation loop (the artifact
/// uses 4).
pub fn run_configure_bench(requests: usize, rounds: usize) -> ConfigureBenchReport {
    // The space saturates around 18 concurrent fault-harness sessions;
    // 12 keeps the stream genuinely steady (admissions keep succeeding)
    // rather than measuring a rejection storm.
    let window = 12;
    let (cold, cold_trace) = best_of(3, || steady_state_phase(false, requests, window));
    let (warm, warm_trace) = best_of(3, || steady_state_phase(true, requests, window));
    let (cold_osd, cold_cuts) = replacement_phase(false, rounds);
    let (warm_osd, warm_cuts) = replacement_phase(true, rounds);
    let cache_speedup = cold.stages.pipeline_ms() / warm.stages.pipeline_ms().max(1e-6);
    let warm_node_ratio =
        cold_osd.nodes_expanded as f64 / (warm_osd.nodes_expanded as f64).max(1.0);
    ConfigureBenchReport {
        schema_version: ubiqos::BENCH_SCHEMA_VERSION,
        requests,
        window,
        cache_logs_identical: cold_trace == warm_trace,
        warm_cuts_identical: cold_cuts == warm_cuts,
        cold,
        warm,
        cache_speedup,
        cold_osd,
        warm_osd,
        warm_node_ratio,
        campaign_digest_cached: campaign_digest(true),
        campaign_digest_uncached: campaign_digest(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_is_invisible_and_hits() {
        let (cold, cold_trace) = steady_state_phase(false, 40, 12);
        let (warm, warm_trace) = steady_state_phase(true, 40, 12);
        assert_eq!(cold_trace, warm_trace, "cache must be unobservable");
        assert_eq!(cold.trace_digest, warm.trace_digest);
        assert_eq!(
            (cold.hits, cold.misses),
            (0, 0),
            "disabled cache counts nothing"
        );
        assert!(warm.hits > 0, "steady state must hit: {warm:?}");
        // Two templates x five clients: at most ten distinct keys.
        assert!(warm.misses <= 10, "{warm:?}");
        assert_eq!(cold.admitted + cold.rejected, 40);
    }

    #[test]
    fn warm_start_saves_nodes_without_changing_placements() {
        let (cold, cold_cuts) = replacement_phase(false, 1);
        let (warm, warm_cuts) = replacement_phase(true, 1);
        assert_eq!(
            cold_cuts, warm_cuts,
            "warm start must not change placements"
        );
        assert_eq!(cold.solves, warm.solves, "same events, same solves");
        assert!(
            warm.warm_solves > 0,
            "warm seeds must actually be used: {warm:?}"
        );
        assert_eq!(cold.warm_solves, 0);
        // Node counts are timing-independent, so the headline 2x claim
        // holds even in slow debug builds.
        assert!(
            cold.nodes_expanded >= 2 * warm.nodes_expanded,
            "a warm incumbent should at least halve the tree ({} vs {})",
            cold.nodes_expanded,
            warm.nodes_expanded
        );
    }

    #[test]
    fn campaign_digest_ignores_the_cache() {
        assert_eq!(campaign_digest(true), campaign_digest(false));
    }
}
