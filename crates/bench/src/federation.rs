//! The sharded-federation scaling benchmark behind
//! `BENCH_federation.json`.
//!
//! One overload campaign — `arrivals` requests packed into a two-hour
//! horizon on a 24-device space, no injected infrastructure faults, a
//! mobility-wave overlay dragging sessions between domains — runs once
//! through the serial DES reference loop and once per shard count
//! through the federated runtime ([`ubiqos_runtime::federation`]). The
//! 1-shard cell must stay **byte-identical** to the serial loop:
//! report and event-log digest are compared and any divergence fails
//! the artifact. Cells at 2+ shards are pinned by their per-shard and
//! combined digests instead (the split changes which shard logs what,
//! deterministically).
//!
//! What the artifact records per cell: wall clock, sustained admitted
//! requests per second, speedup over serial, the federation's message
//! and handoff counters ([`FederationStats`]) and the aggregated
//! shard-attributed stage accounting ([`StageTimes`]). The headline
//! claim — sharding the space speeds the campaign up, because each
//! shard discovers and places over a fraction of the devices — is
//! checked by [`FederationReport::scale_ok`] and surfaced by
//! `repro -- federation`.

use crate::hist::{match_cell, p99_us, shard_wait_summary, Align, TextTable};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Instant;
use ubiqos_runtime::{
    run_fault_campaign_with, run_federation_campaign_lossy, run_federation_campaign_with,
    FaultCampaignConfig, FederationConfig, FederationStats, LossConfig, StageTimes,
};
use ubiqos_sim::{MobilityWaveConfig, ShardCrashPlan};

/// The federation campaign at a given arrival count and shard count: a
/// pure admission overload on 24 devices (no infrastructure faults, so
/// throughput measures the configure pipeline and the federation
/// protocol) plus a mobility-wave overlay that keeps sessions crossing
/// shard boundaries. The invariant stride is raised identically to the
/// serial reference so the reports stay comparable.
pub fn federation_config(arrivals: usize, shards: usize) -> FederationConfig {
    FederationConfig {
        base: FaultCampaignConfig {
            seed: 0x1cdc_2002,
            devices: 24,
            requests: arrivals,
            horizon_h: 2.0,
            faults: 0,
            invariant_stride: 64,
            ..FaultCampaignConfig::default()
        },
        shards,
        mobility: MobilityWaveConfig {
            moves: 64,
            waves: 4,
            horizon_h: 2.0,
            devices: 24,
            ..MobilityWaveConfig::default()
        },
        ..FederationConfig::default()
    }
}

/// One federated run at a fixed shard count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationCell {
    /// Domain-server shards the space was split across.
    pub shards: usize,
    /// End-to-end wall clock of the campaign (ms).
    pub wall_ms: f64,
    /// Sustained arrivals processed per wall-clock second.
    pub sustained_rps: f64,
    /// `serial_wall_ms / wall_ms` — what sharding buys in this cell.
    pub speedup: f64,
    /// Arrivals admitted, summed over shards.
    pub admitted: u64,
    /// Per-shard event-log digests — the values the equivalence tests
    /// pin per shard count.
    pub shard_digests: Vec<u64>,
    /// FNV-1a over the concatenated per-shard digests.
    pub combined_digest: u64,
    /// For the 1-shard cell: whether report *and* log were
    /// byte-identical to the serial reference. `true` (vacuously) for
    /// multi-shard cells.
    pub matches_serial: bool,
    /// Message, discovery, and handoff counters.
    pub stats: FederationStats,
    /// Stage accounting summed over shards, with each shard's queue
    /// waits attributed to its own slot
    /// ([`StageTimes::shard_queue_wait_us`]).
    pub stages: StageTimes,
}

/// One lossy-transport run of the same campaign: the seeded fault
/// injector drops/duplicates/reorders copies at the configured rate
/// and the reliable sublayer recovers, so the row measures the *cost*
/// of loss (retransmissions, absorbed duplicates, convergence delay)
/// against the pinned guarantee that the logical outcome never moves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossCell {
    /// Per-copy drop probability of the schedule.
    pub loss: f64,
    /// End-to-end wall clock of the lossy campaign (ms).
    pub wall_ms: f64,
    /// Physical copies dropped by the injector (burst drops included).
    pub drops: u64,
    /// Extra copies injected by duplication.
    pub dups: u64,
    /// Copies that arrived late (the reorder mechanism).
    pub delays: u64,
    /// Payload retransmissions the reliable sublayer issued.
    pub retransmissions: u64,
    /// Duplicate payload copies the receivers absorbed.
    pub duplicate_drops: u64,
    /// Standalone ack frames sent.
    pub acks_sent: u64,
    /// Payloads parked in the in-order release buffer.
    pub reorder_buffered: u64,
    /// Deepest any release buffer grew.
    pub reorder_depth_max: u64,
    /// Worst virtual-time gap between a payload's send and its release
    /// by the receiver (µs).
    pub convergence_delay_us_max: u64,
    /// Mean virtual-time send-to-release gap per payload (µs).
    pub convergence_delay_us_mean: f64,
    /// Whether the per-shard event-log digests match the perfect run
    /// at the same shard count — the convergence contract.
    pub digests_match_perfect: bool,
}

/// One seeded shard-crash run of the same campaign: whole domain
/// servers are torn down mid-campaign and rebuilt from snapshot + WAL
/// replay (optionally under transport loss on top), against the pinned
/// guarantee that the rebuilt shards drain to the crash-free run's
/// per-shard digests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashCell {
    /// Shard crashes the seeded plan scheduled.
    pub crashes: usize,
    /// Per-copy drop probability layered on top (0 = perfect links).
    pub loss: f64,
    /// End-to-end wall clock of the crashed campaign (ms).
    pub wall_ms: f64,
    /// Crashes actually executed (== `crashes`).
    pub shard_crashes: u64,
    /// Physical copies eaten by crash outage windows.
    pub crash_copies_dropped: u64,
    /// WAL records appended across all shards (lifetime).
    pub wal_records: u64,
    /// WAL records replayed across all recoveries.
    pub wal_replayed: u64,
    /// Snapshot restores performed (one per crash).
    pub snapshot_restores: u64,
    /// Deepest single-recovery replay (records past the checkpoint).
    pub replay_depth_max: u64,
    /// Mean per-recovery replay depth.
    pub replay_depth_mean: f64,
    /// Payload retransmissions that bridged the outages (and any loss).
    pub retransmissions: u64,
    /// Whether the per-shard digests match the crash-free perfect run.
    pub digests_match_perfect: bool,
}

/// The full `BENCH_federation.json` artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationReport {
    /// Artifact schema version ([`ubiqos::BENCH_SCHEMA_VERSION`]). The
    /// nightly drift gate refuses to compare artifacts across versions.
    pub schema_version: u32,
    /// Queued arrivals in every run.
    pub arrivals: usize,
    /// Serial reference wall clock (ms).
    pub serial_wall_ms: f64,
    /// Serial reference sustained arrivals per second.
    pub serial_rps: f64,
    /// Serial reference event-log digest — the value the 1-shard cell
    /// must reproduce.
    pub serial_digest: u64,
    /// One row per shard count.
    pub cells: Vec<FederationCell>,
    /// Best speedup over the serial reference among the cells.
    pub best_speedup: f64,
    /// Whether the 1-shard cell (when present) matched the serial
    /// report and log byte-for-byte.
    pub one_shard_matches_serial: bool,
    /// Shard count of the lossy-transport sweep.
    pub loss_shards: usize,
    /// One row per loss rate, all at `loss_shards` shards.
    pub loss_cells: Vec<LossCell>,
    /// Whether every lossy run converged to the perfect digests.
    pub lossy_converges: bool,
    /// One row per seeded crash schedule, all at `loss_shards` shards.
    #[serde(default)]
    pub crash_cells: Vec<CrashCell>,
    /// Whether every crashed run converged to the crash-free digests.
    #[serde(default)]
    pub crashes_converge: bool,
}

impl FederationReport {
    /// The headline claim: the 1-shard cell byte-identical to serial,
    /// every cell's fates balanced at run time, and the best cell at
    /// least `factor`x faster than serial.
    pub fn scale_ok(&self, factor: f64) -> bool {
        self.one_shard_matches_serial && self.best_speedup >= factor
    }

    /// Renders the sweep as an aligned table plus one per-shard
    /// queue-wait summary line per cell.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} arrivals, serial {:.0} ms ({:.0} req/s), digest {:#018x}\n",
            self.arrivals, self.serial_wall_ms, self.serial_rps, self.serial_digest
        );
        let mut table = TextTable::new(&[
            ("shards", 6, Align::Right),
            ("wall ms", 9, Align::Right),
            ("req/s", 7, Align::Right),
            ("speedup", 7, Align::Right),
            ("admitted", 8, Align::Right),
            ("fwd", 5, Align::Right),
            ("handoffs", 8, Align::Right),
            ("aborted", 7, Align::Right),
            ("p99 wait us", 12, Align::Right),
            ("serial", 6, Align::Right),
        ]);
        for c in &self.cells {
            table.row(&[
                c.shards.to_string(),
                format!("{:.0}", c.wall_ms),
                format!("{:.0}", c.sustained_rps),
                format!("{:.2}x", c.speedup),
                c.admitted.to_string(),
                c.stats.forwarded.to_string(),
                c.stats.handoffs_committed.to_string(),
                c.stats.handoffs_aborted.to_string(),
                p99_us(&c.stages.queue_wait_us).to_string(),
                (if c.shards == 1 {
                    match_cell(c.matches_serial)
                } else {
                    "-"
                })
                .to_string(),
            ]);
        }
        out.push_str(&table.finish());
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{} shard(s): digest {:#018x}, waits {}",
                c.shards,
                c.combined_digest,
                shard_wait_summary(&c.stages)
            );
        }
        let _ = writeln!(
            out,
            "best speedup {:.2}x over serial; 1-shard cell {}",
            self.best_speedup,
            if self.one_shard_matches_serial {
                "byte-identical to the serial reference"
            } else {
                "DIVERGED from the serial reference"
            }
        );
        if !self.loss_cells.is_empty() {
            let _ = writeln!(
                out,
                "lossy transport at {} shards (seeded drop/dup/reorder):",
                self.loss_shards
            );
            let mut table = TextTable::new(&[
                ("loss", 5, Align::Right),
                ("wall ms", 9, Align::Right),
                ("dropped", 7, Align::Right),
                ("retx", 6, Align::Right),
                ("dup-drop", 8, Align::Right),
                ("reorder", 7, Align::Right),
                ("acks", 7, Align::Right),
                ("conv max ms", 12, Align::Right),
                ("conv avg ms", 12, Align::Right),
                ("converged", 9, Align::Right),
            ]);
            for c in &self.loss_cells {
                table.row(&[
                    format!("{:.2}", c.loss),
                    format!("{:.0}", c.wall_ms),
                    c.drops.to_string(),
                    c.retransmissions.to_string(),
                    c.duplicate_drops.to_string(),
                    c.reorder_buffered.to_string(),
                    c.acks_sent.to_string(),
                    format!("{:.3}", c.convergence_delay_us_max as f64 / 1e3),
                    format!("{:.3}", c.convergence_delay_us_mean / 1e3),
                    match_cell(c.digests_match_perfect).to_string(),
                ]);
            }
            out.push_str(&table.finish());
        }
        if !self.crash_cells.is_empty() {
            let _ = writeln!(
                out,
                "shard crashes at {} shards (snapshot + WAL rebuild):",
                self.loss_shards
            );
            let mut table = TextTable::new(&[
                ("crashes", 7, Align::Right),
                ("loss", 5, Align::Right),
                ("wall ms", 9, Align::Right),
                ("copies eaten", 12, Align::Right),
                ("wal records", 11, Align::Right),
                ("replayed", 8, Align::Right),
                ("replay max", 10, Align::Right),
                ("replay avg", 10, Align::Right),
                ("retx", 6, Align::Right),
                ("converged", 9, Align::Right),
            ]);
            for c in &self.crash_cells {
                table.row(&[
                    c.crashes.to_string(),
                    format!("{:.2}", c.loss),
                    format!("{:.0}", c.wall_ms),
                    c.crash_copies_dropped.to_string(),
                    c.wal_records.to_string(),
                    c.wal_replayed.to_string(),
                    c.replay_depth_max.to_string(),
                    format!("{:.1}", c.replay_depth_mean),
                    c.retransmissions.to_string(),
                    match_cell(c.digests_match_perfect).to_string(),
                ]);
            }
            out.push_str(&table.finish());
        }
        out
    }
}

/// Runs the lossy-transport sweep: the same campaign at `shards`
/// shards, once perfectly and once per loss rate, asserting the
/// convergence contract (identical per-shard digests) in every cell.
pub fn run_federation_loss_sweep(arrivals: usize, shards: usize, losses: &[f64]) -> Vec<LossCell> {
    let cfg = federation_config(arrivals, shards);
    let schedule = cfg.schedule();
    let perfect = run_federation_campaign_with(&cfg, &schedule)
        .expect("the perfect reference holds its invariants");
    losses
        .iter()
        .map(|&loss| {
            let lc = LossConfig::lossy(0x1cdc_2002 ^ loss.to_bits(), loss)
                .align_bursts(&cfg.shard_partitions);
            let wall = Instant::now();
            let (outcome, loss_stats) = run_federation_campaign_lossy(&cfg, &schedule, lc)
                .expect("the lossy campaign holds its invariants");
            let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
            let digests_match_perfect = outcome.shard_digests() == perfect.shard_digests();
            let released = outcome.stats.messages.max(1);
            LossCell {
                loss,
                wall_ms,
                drops: loss_stats.drops + loss_stats.burst_drops,
                dups: loss_stats.dups,
                delays: loss_stats.delays,
                retransmissions: outcome.stats.retransmissions,
                duplicate_drops: outcome.stats.duplicate_drops,
                acks_sent: outcome.stats.acks_sent,
                reorder_buffered: outcome.stats.reorder_buffered,
                reorder_depth_max: outcome.stats.reorder_depth_max,
                convergence_delay_us_max: outcome.stats.convergence_delay_us_max,
                convergence_delay_us_mean: outcome.stats.convergence_delay_us_total as f64
                    / released as f64,
                digests_match_perfect,
            }
        })
        .collect()
}

/// Runs the shard-crash sweep: the same campaign at `shards` shards,
/// once crash-free as the reference, then once per `(crashes, loss)`
/// cell with a seeded [`ShardCrashPlan`] merged into the schedule
/// (and, when `loss > 0`, the seeded drop/dup/reorder injector layered
/// on top). Every cell hard-asserts the durability contract: the
/// crashed shards rebuild from snapshot + WAL and drain to the
/// crash-free run's exact per-shard digests.
pub fn run_federation_crash_sweep(
    arrivals: usize,
    shards: usize,
    cells: &[(usize, f64)],
) -> Vec<CrashCell> {
    let base_cfg = federation_config(arrivals, shards);
    let perfect = run_federation_campaign_with(&base_cfg, &base_cfg.schedule())
        .expect("the crash-free reference holds its invariants");
    cells
        .iter()
        .map(|&(crashes, loss)| {
            let mut cfg = federation_config(arrivals, shards);
            cfg.crashes = ShardCrashPlan {
                crashes,
                shards,
                horizon_h: cfg.base.horizon_h,
                outage_h: 0.1,
                ..ShardCrashPlan::default()
            };
            let schedule = cfg.schedule();
            let wall = Instant::now();
            let outcome = if loss > 0.0 {
                let lc = LossConfig::lossy(0x1cdc_2002 ^ loss.to_bits(), loss)
                    .align_bursts(&cfg.shard_partitions);
                run_federation_campaign_lossy(&cfg, &schedule, lc)
                    .expect("the crashed lossy campaign holds its invariants")
                    .0
            } else {
                run_federation_campaign_with(&cfg, &schedule)
                    .expect("the crashed campaign holds its invariants")
            };
            let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
            let digests_match_perfect = outcome.shard_digests() == perfect.shard_digests();
            assert!(
                digests_match_perfect,
                "a crashed federation run ({crashes} crashes, loss {loss}) \
                 diverged from the crash-free digests"
            );
            let depths = &outcome.stats.wal_replay_depths;
            CrashCell {
                crashes,
                loss,
                wall_ms,
                shard_crashes: outcome.stats.shard_crashes,
                crash_copies_dropped: outcome.stats.crash_copies_dropped,
                wal_records: outcome.stats.wal_records,
                wal_replayed: outcome.stats.wal_replayed,
                snapshot_restores: outcome.stats.snapshot_restores,
                replay_depth_max: depths.iter().copied().max().unwrap_or(0),
                replay_depth_mean: outcome.stats.wal_replayed as f64
                    / outcome.stats.shard_crashes.max(1) as f64,
                retransmissions: outcome.stats.retransmissions,
                digests_match_perfect,
            }
        })
        .collect()
}

/// Runs the full sweep: one serial reference, one federated cell per
/// shard count, then the lossy-transport sweep at `loss_shards`
/// shards. The fault schedule (base + mobility overlay) is derived
/// once and shared by every run, so all cells face the identical
/// workload.
pub fn run_federation_bench(
    arrivals: usize,
    shard_counts: &[usize],
    loss_shards: usize,
    losses: &[f64],
    crash_cells_spec: &[(usize, f64)],
) -> FederationReport {
    let serial_cfg = federation_config(arrivals, 1);
    let schedule = serial_cfg.schedule();
    let wall = Instant::now();
    let serial = run_fault_campaign_with(&serial_cfg.base, &schedule)
        .expect("the federation campaign holds its invariants serially");
    let serial_wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let serial_rps = arrivals as f64 / (serial_wall_ms / 1e3).max(1e-9);

    let mut cells = Vec::with_capacity(shard_counts.len());
    let mut best_speedup: f64 = 0.0;
    let mut one_shard_matches = true;
    for &shards in shard_counts {
        let cfg = federation_config(arrivals, shards);
        let wall = Instant::now();
        let outcome = run_federation_campaign_with(&cfg, &schedule)
            .expect("the federated campaign holds its invariants");
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        assert!(outcome.fates_balance(), "shard fate ledgers must balance");
        let matches_serial = shards != 1
            || (outcome.shards[0].report == serial.report
                && outcome.shards[0].log.render() == serial.log.render());
        if shards == 1 {
            one_shard_matches &= matches_serial;
        }
        let mut stages = StageTimes::default();
        for (s, shard) in outcome.shards.iter().enumerate() {
            stages.absorb_shard(s, &shard.stages);
        }
        let speedup = serial_wall_ms / wall_ms.max(1e-9);
        best_speedup = best_speedup.max(speedup);
        cells.push(FederationCell {
            shards,
            wall_ms,
            sustained_rps: arrivals as f64 / (wall_ms / 1e3).max(1e-9),
            speedup,
            admitted: outcome.total_admitted(),
            shard_digests: outcome.shard_digests(),
            combined_digest: outcome.combined_digest,
            matches_serial,
            stats: outcome.stats,
            stages,
        });
    }
    let loss_cells = run_federation_loss_sweep(arrivals, loss_shards, losses);
    let lossy_converges = loss_cells.iter().all(|c| c.digests_match_perfect);
    let crash_cells = run_federation_crash_sweep(arrivals, loss_shards, crash_cells_spec);
    let crashes_converge = crash_cells.iter().all(|c| c.digests_match_perfect);
    FederationReport {
        schema_version: ubiqos::BENCH_SCHEMA_VERSION,
        arrivals,
        serial_wall_ms,
        serial_rps,
        serial_digest: serial.report.log_digest,
        cells,
        best_speedup,
        one_shard_matches_serial: one_shard_matches,
        loss_shards,
        loss_cells,
        lossy_converges,
        crash_cells,
        crashes_converge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_pins_one_shard_to_serial() {
        let report = run_federation_bench(200, &[1, 2], 2, &[0.1], &[(2, 0.0), (2, 0.1)]);
        assert!(report.one_shard_matches_serial, "{}", report.render());
        assert!(report.lossy_converges, "{}", report.render());
        assert!(report.crashes_converge, "{}", report.render());
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.loss_cells.len(), 1);
        assert_eq!(report.crash_cells.len(), 2);
        for c in &report.crash_cells {
            assert!(c.shard_crashes >= 1, "{}", report.render());
            assert_eq!(c.snapshot_restores, c.shard_crashes);
            assert!(c.wal_records > 0);
        }
        assert!(
            report.render().contains("shard crashes at 2 shards"),
            "{}",
            report.render()
        );
        assert!(
            report.loss_cells[0].retransmissions > 0,
            "10% loss must force recovery: {}",
            report.render()
        );
        assert_eq!(report.schema_version, ubiqos::BENCH_SCHEMA_VERSION);
        assert_eq!(report.cells[0].shard_digests, vec![report.serial_digest]);
        assert_eq!(report.cells[1].shard_digests.len(), 2);
        // Admission totals agree across shard counts: the split changes
        // who resolves a request, never whether it is resolved.
        let rendered = report.render();
        assert!(rendered.contains("byte-identical"), "{rendered}");
        assert!(rendered.contains("2 shard(s): digest"), "{rendered}");
        assert!(
            rendered.contains("lossy transport at 2 shards"),
            "{rendered}"
        );
    }

    #[test]
    fn federation_config_is_a_sharded_overload() {
        let cfg = federation_config(1000, 8);
        assert_eq!(cfg.base.requests, 1000);
        assert_eq!(cfg.base.faults, 0);
        assert_eq!(cfg.shards, 8);
        assert!(cfg.base.devices >= 2 * cfg.shards);
        assert!(cfg.mobility.moves > 0, "mobility keeps handoffs flowing");
        cfg.validate();
    }
}
