//! Shared rendering helpers for the bench artifacts.
//!
//! Every `BENCH_*.json` artifact prints an aligned `|`-separated table
//! plus a handful of histogram summaries; before this module each
//! report hand-rolled its own `write!` column formatting ([`scale`],
//! [`configure`], now [`federation`]). [`TextTable`] centralises the
//! alignment so new artifacts get identical table style for free, and
//! the histogram helpers keep the quantile cells ([`p99_us`]) and the
//! shard-attributed queue-wait summaries ([`shard_wait_summary`])
//! consistent across reports.
//!
//! [`scale`]: crate::scale
//! [`configure`]: crate::configure
//! [`federation`]: crate::federation

use std::fmt::Write as _;
use ubiqos_runtime::{PowHistogram, StageTimes};

/// Cell alignment within a [`TextTable`] column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right (labels).
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// An aligned `|`-separated text table: the header row is emitted on
/// construction, each [`TextTable::row`] call appends one padded line,
/// and [`TextTable::finish`] hands the rendered block back. Column
/// widths are the max of the header and the declared width, so headers
/// and cells always line up.
#[derive(Debug)]
pub struct TextTable {
    widths: Vec<usize>,
    aligns: Vec<Align>,
    out: String,
}

impl TextTable {
    /// Starts a table from `(header, min_width, alignment)` columns and
    /// writes the header row.
    pub fn new(cols: &[(&str, usize, Align)]) -> Self {
        let widths = cols.iter().map(|(h, w, _)| (*w).max(h.len())).collect();
        let aligns = cols.iter().map(|&(_, _, a)| a).collect();
        let mut table = TextTable {
            widths,
            aligns,
            out: String::new(),
        };
        let headers: Vec<String> = cols.iter().map(|(h, _, _)| (*h).to_string()).collect();
        table.row(&headers);
        table
    }

    /// Appends one row. Cell count must match the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.widths.len(), "row arity matches header");
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                self.out.push_str(" | ");
            }
            let w = self.widths[i];
            match self.aligns[i] {
                Align::Left => {
                    let _ = write!(self.out, "{cell:<w$}");
                }
                Align::Right => {
                    let _ = write!(self.out, "{cell:>w$}");
                }
            }
        }
        self.out.push('\n');
    }

    /// The rendered table.
    pub fn finish(self) -> String {
        self.out
    }
}

/// The quantile cell the artifacts print for a latency histogram: the
/// upper bound of the bucket containing the 99th percentile, in the
/// histogram's native unit (µs for queue waits).
pub fn p99_us(hist: &PowHistogram) -> u64 {
    hist.quantile_upper(0.99)
}

/// The match/drift cell for byte-identity columns.
pub fn match_cell(matches: bool) -> &'static str {
    if matches {
        "=="
    } else {
        "DRIFT"
    }
}

/// Renders the shard-attributed queue-wait breakdown of a
/// [`StageTimes`]: one `s<idx>:p99=<us>µs(<n>)` clause per non-empty
/// shard slot, or `"(no shard queues)"` when nothing was recorded —
/// the per-shard view behind the merged [`p99_us`] cell.
pub fn shard_wait_summary(stages: &StageTimes) -> String {
    let mut clauses: Vec<String> = stages
        .shard_queue_wait_us
        .iter()
        .enumerate()
        .filter(|(_, h)| h.total() > 0)
        .map(|(s, h)| format!("s{s}:p99={}µs({})", p99_us(h), h.total()))
        .collect();
    if clauses.is_empty() {
        return "(no shard queues)".to_string();
    }
    let mut out = clauses.remove(0);
    for clause in clauses {
        let _ = write!(out, " {clause}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_headers_and_cells() {
        let mut t = TextTable::new(&[
            ("name", 4, Align::Left),
            ("n", 5, Align::Right),
            ("speedup", 3, Align::Right),
        ]);
        t.row(&["a".into(), "12".into(), "1.50x".into()]);
        let out = t.finish();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "name |     n | speedup");
        assert_eq!(lines[1], "a    |    12 |   1.50x");
        // Every row is the same width: headers widen narrow columns.
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_mismatched_rows() {
        TextTable::new(&[("a", 1, Align::Left)]).row(&[]);
    }

    #[test]
    fn shard_summary_reports_only_active_slots() {
        let mut stages = StageTimes::default();
        assert_eq!(shard_wait_summary(&stages), "(no shard queues)");
        stages.record_shard_queue_wait(1, 100);
        stages.record_shard_queue_wait(1, 200);
        let summary = shard_wait_summary(&stages);
        assert!(summary.starts_with("s1:p99="), "{summary}");
        assert!(summary.contains("(2)"), "{summary}");
        assert!(!summary.contains("s0:"), "slot 0 is empty: {summary}");
        assert_eq!(
            p99_us(&stages.queue_wait_us),
            p99_us(&stages.shard_queue_wait_us[1])
        );
    }

    #[test]
    fn match_cells() {
        assert_eq!(match_cell(true), "==");
        assert_eq!(match_cell(false), "DRIFT");
    }
}
