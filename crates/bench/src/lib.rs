//! # ubiqos-bench
//!
//! Benchmark and reproduction harness for the *ubiqos* reproduction of
//! Gu & Nahrstedt, ICDCS 2002. Each Criterion bench regenerates one
//! artifact of the paper's evaluation section before timing its kernel:
//!
//! | Bench target | Paper artifact |
//! |---|---|
//! | `table1_quality` | Table 1 — heuristic vs random vs optimal quality |
//! | `fig3_qos` | Figure 3 — end-to-end QoS of four configuration events |
//! | `fig4_overhead` | Figure 4 — per-event overhead breakdown |
//! | `fig5_success` | Figure 5 — success rate of fixed/random/heuristic |
//! | `scaling` | The O(V+E) / polynomial complexity claims + ablations |
//! | `osd_solver` | Branch-and-bound bound ablation + serial vs parallel |
//!
//! Run everything with `cargo bench --workspace`; each bench prints the
//! reproduced rows/series to stdout, then reports Criterion timings. The
//! shared reproduction entry points live in this library so integration
//! tests can assert on the same data the benches print.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod configure;
pub mod federation;
pub mod hist;
pub mod osd;
pub mod scale;

use ubiqos_runtime::FaultCampaignConfig;
use ubiqos_sim::{Fig5Config, Fig5Outcome, Table1Config, Table1Report, WorkloadConfig};

/// The Table 1 configuration used by the reproduction harness: the
/// paper's 150 graphs with ablation rows enabled.
pub fn table1_config() -> Table1Config {
    Table1Config {
        include_ablations: true,
        ..Table1Config::default()
    }
}

/// Runs the full Table 1 reproduction.
pub fn reproduce_table1() -> Table1Report {
    ubiqos_sim::run_table1(&table1_config())
}

/// The Figure 5 configuration used by the reproduction harness: the
/// paper's full 5000-request, 1000-hour workload.
pub fn fig5_config() -> Fig5Config {
    Fig5Config::default()
}

/// A scaled-down Figure 5 configuration for timing kernels (same shape,
/// ~20x less work).
pub fn fig5_config_small() -> Fig5Config {
    Fig5Config {
        workload: WorkloadConfig {
            requests: 250,
            horizon_h: 50.0,
            ..WorkloadConfig::default()
        },
        window_h: 10.0,
        ..Fig5Config::default()
    }
}

/// Runs the full Figure 5 reproduction.
pub fn reproduce_fig5() -> Fig5Outcome {
    ubiqos_sim::scenario::run_fig5(&fig5_config())
}

/// The fault-injection campaign the `repro -- faults` artifact runs: a
/// larger space and longer horizon than the unit-test default, with
/// correlated crash scopes and flapping links enabled, still fast in
/// release builds.
pub fn faults_config() -> FaultCampaignConfig {
    FaultCampaignConfig {
        seed: 0x1cdc_2002,
        devices: 6,
        requests: 800,
        horizon_h: 48.0,
        faults: 320,
        min_factor: 0.25,
        scope_max: 2,
        flapping_links: 1,
        ..FaultCampaignConfig::default()
    }
}

/// The same campaign with staged recovery disabled (drop-on-fault, the
/// pre-ladder behaviour). The `repro -- faults` artifact runs both and
/// reports the drop-count delta — the degradation ladder's payoff at an
/// identical admission workload.
pub fn faults_config_strict() -> FaultCampaignConfig {
    FaultCampaignConfig {
        staged_recovery: false,
        ..faults_config()
    }
}

/// An imperfect-detection variant of [`faults_config`]: the identical
/// seed, workload, and fault budget, plus network partitions, seeded
/// heartbeat loss, and a nonzero suspicion grace window. The
/// `repro -- faults` artifact runs one campaign per grace rung and
/// reports the resulting detection-lag ladder in `BENCH_faults.json`.
pub fn faults_config_imperfect(grace_h: f64) -> FaultCampaignConfig {
    FaultCampaignConfig {
        detection_grace_h: grace_h,
        heartbeat_period_h: 0.25,
        partitions: 4,
        partition_max: 2,
        heartbeat_loss: 0.1,
        ..faults_config()
    }
}

/// Writes reproduction data as pretty JSON under `target/repro/`, so
/// figure data survives the bench run for plotting. Failures are
/// reported but never abort a bench.
pub fn dump_json<T: serde::Serialize>(file: &str, data: &T) {
    let dir = std::path::Path::new("target").join("repro");
    let path = dir.join(file);
    let result = std::fs::create_dir_all(&dir)
        .map_err(|e| e.to_string())
        .and_then(|()| serde_json::to_string_pretty(data).map_err(|e| e.to_string()))
        .and_then(|json| std::fs::write(&path, json).map_err(|e| e.to_string()));
    match result {
        Ok(()) => println!("(figure data written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CI `perfect-detection` job's baseline pin: the default
    /// `repro -- faults` campaign runs in perfect-detection mode and
    /// must keep reproducing the artifact digest recorded when the
    /// campaign was introduced. Imperfect-detection machinery (leases,
    /// heartbeats, partitions) must stay invisible at grace zero.
    #[test]
    fn repro_faults_baseline_digest_is_pinned() {
        let cfg = faults_config();
        assert!(cfg.perfect_detection(), "the artifact baseline is grace-0");
        let outcome =
            ubiqos_runtime::run_fault_campaign(&cfg).expect("campaign holds its invariants");
        assert_eq!(
            outcome.report.log_digest, 0xe410_69cc_6f8b_564d,
            "BENCH_faults.json baseline digest drifted"
        );
        assert_eq!(outcome.report.schema_version, ubiqos::BENCH_SCHEMA_VERSION);
        assert_eq!(outcome.report.suspicions, 0);
        assert_eq!(outcome.report.stale_views, 0);
    }

    #[test]
    fn configs_are_paper_scale() {
        let t1 = table1_config();
        assert_eq!(t1.graphs, 150);
        assert!(t1.include_ablations);
        let f5 = fig5_config();
        assert_eq!(f5.workload.requests, 5000);
        assert_eq!(f5.workload.horizon_h, 1000.0);
        assert_eq!(f5.window_h, 50.0);
        assert!(fig5_config_small().workload.requests < 1000);
    }
}
