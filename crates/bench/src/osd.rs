//! The OSD solver micro-benchmark behind `BENCH_osd.json`.
//!
//! For a ladder of instance sizes this times the branch-and-bound solver
//! in three configurations on the same instances:
//!
//! * **baseline** — suffix lower bound disabled (pruning on bare partial
//!   cost, the pre-table behaviour);
//! * **serial** — suffix bound on, single subtree;
//! * **parallel** — suffix bound on, top-of-tree fan-out across workers.
//!
//! All three return the identical cut; the point of the artifact is the
//! wall-clock and node-count deltas. The headline claim — the tightened
//! bound wins ≥2x on 20-node/3-device instances — is checked by
//! [`OsdBenchReport::speedup_ok`] and asserted by the integration tests,
//! so a regression in the bound shows up as a test failure, not just a
//! slower JSON file.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use ubiqos_distribution::{
    Device, Environment, ExhaustiveOptimal, OsdProblem, ServiceDistributor, SolveStats,
};
use ubiqos_graph::ServiceGraph;
use ubiqos_model::Weights;
use ubiqos_sim::GraphGenConfig;

/// One (instance size, device count) measurement row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsdBenchCase {
    /// Components in the instance.
    pub nodes: usize,
    /// Devices (`k`).
    pub devices: usize,
    /// Instances averaged over.
    pub instances: usize,
    /// Total wall-clock of the suffix-bound-disabled solver (ms).
    pub baseline_ms: f64,
    /// Total wall-clock of the serial bounded solver (ms).
    pub serial_ms: f64,
    /// Total wall-clock of the parallel bounded solver (ms).
    pub parallel_ms: f64,
    /// Nodes expanded by the serial bounded solver.
    pub nodes_expanded: u64,
    /// Subtrees cut by the suffix bound (serial bounded solver).
    pub pruned_bound: u64,
    /// Candidate placements rejected as infeasible (serial bounded
    /// solver).
    pub pruned_infeasible: u64,
    /// Nodes expanded with the suffix bound disabled.
    pub baseline_nodes_expanded: u64,
    /// `baseline_ms / serial_ms` — what the tighter bound buys.
    pub bound_speedup: f64,
}

/// The full `BENCH_osd.json` artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsdBenchReport {
    /// Artifact schema version ([`ubiqos::BENCH_SCHEMA_VERSION`]). The
    /// nightly drift gate refuses to compare artifacts across versions.
    pub schema_version: u32,
    /// One row per (nodes, devices) rung.
    pub cases: Vec<OsdBenchCase>,
    /// Worker threads the parallel rows used.
    pub threads: usize,
    /// The solver's default serial-fallback threshold: instances with
    /// fewer free components than this run one serial subtree even when
    /// the fan-out is requested. The parallel column forces the fan-out
    /// (threshold 0) so every rung measures the parallel path; real
    /// callers keep the default and skip the fan-out overhead on small
    /// instances.
    pub serial_fallback_threshold: usize,
}

impl OsdBenchReport {
    /// The headline claim: on the largest rung (20 nodes, 3 devices) the
    /// suffix bound makes the solver at least `factor`x faster than the
    /// bare partial-cost baseline.
    pub fn speedup_ok(&self, factor: f64) -> bool {
        self.cases
            .iter()
            .filter(|c| c.nodes >= 20 && c.devices >= 3)
            .all(|c| c.bound_speedup >= factor)
    }

    /// Renders the rows as an aligned table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:>5} | {:>2} | {:>11} | {:>9} | {:>11} | {:>10} | {:>12} | {:>7}\n",
            "nodes",
            "k",
            "baseline ms",
            "serial ms",
            "parallel ms",
            "expanded",
            "bound-pruned",
            "speedup"
        );
        for c in &self.cases {
            out.push_str(&format!(
                "{:>5} | {:>2} | {:>11.1} | {:>9.1} | {:>11.1} | {:>10} | {:>12} | {:>6.1}x\n",
                c.nodes,
                c.devices,
                c.baseline_ms,
                c.serial_ms,
                c.parallel_ms,
                c.nodes_expanded,
                c.pruned_bound,
                c.bound_speedup
            ));
        }
        out.push_str(&format!(
            "({} worker threads; parallel column forces the fan-out, default serial \
             fallback below {} free components)\n",
            self.threads, self.serial_fallback_threshold
        ));
        out
    }
}

/// A `k`-device environment scaled so the benchmark instances are
/// feasible but contended (the PC/laptop/PDA ladder of the paper's
/// experiments, truncated to `k`).
fn bench_environment(k: usize) -> Environment {
    let specs = [
        ("pc", 256.0, 300.0),
        ("laptop", 128.0, 160.0),
        ("pda", 48.0, 110.0),
    ];
    let mut builder = Environment::builder();
    for &(name, mem, cpu) in specs.iter().take(k) {
        builder = builder.device(Device::new(
            name,
            ubiqos_model::ResourceVector::mem_cpu(mem, cpu),
        ));
    }
    builder.default_bandwidth_mbps(20.0).build()
}

/// Deterministic instance set for one rung: Table 1-style graphs pinned
/// to exactly `nodes` components.
fn bench_instances(nodes: usize, seed: u64, count: usize) -> Vec<ServiceGraph> {
    let gen = GraphGenConfig {
        nodes: nodes..=nodes,
        ..GraphGenConfig::table1()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| gen.generate(&mut rng)).collect()
}

/// Total wall-clock (ms) and summed stats of solving every instance with
/// `solver`. Infeasible instances are rare with this generator and are
/// simply skipped — identically in every configuration, so the timings
/// stay comparable.
fn time_solver(
    solver: &ExhaustiveOptimal,
    graphs: &[ServiceGraph],
    env: &Environment,
    weights: &Weights,
) -> (f64, SolveStats) {
    let mut total = SolveStats::default();
    let start = Instant::now();
    for g in graphs {
        let p = OsdProblem::new(g, env, weights);
        let mut s = solver.clone();
        if s.distribute(&p).is_ok() {
            let stats = s.last_stats().expect("stats recorded after a solve");
            total.nodes_expanded += stats.nodes_expanded;
            total.pruned_bound += stats.pruned_bound;
            total.pruned_infeasible += stats.pruned_infeasible;
        }
    }
    (start.elapsed().as_secs_f64() * 1e3, total)
}

/// Runs the full ladder. `instances` graphs per rung; rungs follow the
/// paper's Table 1 range and extend it to three devices.
pub fn run_osd_bench(instances: usize) -> OsdBenchReport {
    let weights = Weights::default();
    let rungs: &[(usize, usize, u64)] = &[
        (12, 2, 0xbe11),
        (16, 2, 0xbe12),
        (20, 2, 0xbe13),
        (20, 3, 0xbe14),
    ];
    let cases = rungs
        .iter()
        .map(|&(nodes, devices, seed)| {
            let env = bench_environment(devices);
            let graphs = bench_instances(nodes, seed, instances);

            let baseline = ExhaustiveOptimal::new()
                .with_parallel(false)
                .with_suffix_bound(false);
            let serial = ExhaustiveOptimal::new().with_parallel(false);
            // Threshold 0 forces the fan-out on every rung — the column
            // measures the parallel path itself, not the serial fallback
            // the default threshold would route small instances to.
            let parallel = ExhaustiveOptimal::new()
                .with_parallel(true)
                .with_parallel_threshold(0);

            let (baseline_ms, baseline_stats) = time_solver(&baseline, &graphs, &env, &weights);
            let (serial_ms, serial_stats) = time_solver(&serial, &graphs, &env, &weights);
            let (parallel_ms, _) = time_solver(&parallel, &graphs, &env, &weights);

            OsdBenchCase {
                nodes,
                devices,
                instances,
                baseline_ms,
                serial_ms,
                parallel_ms,
                nodes_expanded: serial_stats.nodes_expanded,
                pruned_bound: serial_stats.pruned_bound,
                pruned_infeasible: serial_stats.pruned_infeasible,
                baseline_nodes_expanded: baseline_stats.nodes_expanded,
                bound_speedup: baseline_ms / serial_ms.max(1e-6),
            }
        })
        .collect();
    OsdBenchReport {
        schema_version: ubiqos::BENCH_SCHEMA_VERSION,
        cases,
        threads: ubiqos_parallel::thread_count(),
        serial_fallback_threshold: ExhaustiveOptimal::new().parallel_threshold(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_shows_the_bound_paying_off() {
        // Few instances keep the test quick; the node-count ratio is
        // timing-independent and is the robust signal.
        let report = run_osd_bench(3);
        assert_eq!(report.cases.len(), 4);
        for c in &report.cases {
            assert!(c.nodes_expanded > 0);
            assert!(
                c.baseline_nodes_expanded >= c.nodes_expanded,
                "bound can only shrink the tree ({} vs {})",
                c.baseline_nodes_expanded,
                c.nodes_expanded
            );
        }
        let big = report
            .cases
            .iter()
            .find(|c| c.nodes == 20 && c.devices == 3)
            .unwrap();
        assert!(
            big.baseline_nodes_expanded as f64 >= 2.0 * big.nodes_expanded as f64,
            "suffix bound should at least halve the explored tree: {} vs {}",
            big.baseline_nodes_expanded,
            big.nodes_expanded
        );
    }

    #[test]
    fn render_mentions_every_rung() {
        let report = run_osd_bench(1);
        let s = report.render();
        assert!(s.contains("nodes"));
        assert!(s.lines().count() >= 5);
    }
}
