//! The OSD solver micro-benchmark behind `BENCH_osd.json`.
//!
//! For a ladder of instance sizes this times the branch-and-bound solver
//! in four configurations on the same instances:
//!
//! * **baseline** — suffix lower bound disabled (pruning on bare partial
//!   cost, the pre-table behaviour);
//! * **serial** — suffix bound on, single subtree;
//! * **parallel** — suffix bound on, fan-out *requested*; the solver's
//!   serial-fallback threshold still applies, so small rungs route to
//!   one subtree exactly as real callers see it;
//! * **portfolio** — greedy seed + warm-started exact through
//!   [`SolverPortfolio`], the strategy the runtime's `Portfolio`
//!   placement uses.
//!
//! All four return the identical cut; the point of the artifact is the
//! wall-clock and node-count deltas. The headline claim — the tightened
//! bound wins ≥2x on 20-node/3-device instances — is checked by
//! [`OsdBenchReport::speedup_ok`] and asserted by the integration tests,
//! so a regression in the bound shows up as a test failure, not just a
//! slower JSON file.
//!
//! A second ladder ([`OsdLargeCase`], 48/64/100 nodes) exercises the
//! hierarchical abstraction-refinement route: each rung reports the
//! certified optimality gap and the expanded-node ratio against a
//! raised-limit exhaustive run capped by a node budget — the "≥10× fewer
//! nodes at ≤2% gap" claim of [`OsdBenchReport::large_gap_ok`] and
//! [`OsdBenchReport::large_expansion_ok`].

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use ubiqos_distribution::{
    Device, Environment, ExhaustiveOptimal, GreedyHeuristic, OsdProblem, ServiceDistributor,
    SolveStats, SolverPortfolio,
};
use ubiqos_graph::ServiceGraph;
use ubiqos_model::Weights;
use ubiqos_sim::GraphGenConfig;

/// One (instance size, device count) measurement row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsdBenchCase {
    /// Components in the instance.
    pub nodes: usize,
    /// Devices (`k`).
    pub devices: usize,
    /// Instances averaged over.
    pub instances: usize,
    /// Total wall-clock of the suffix-bound-disabled solver (ms).
    pub baseline_ms: f64,
    /// Total wall-clock of the serial bounded solver (ms).
    pub serial_ms: f64,
    /// Total wall-clock of the parallel bounded solver (ms).
    pub parallel_ms: f64,
    /// Nodes expanded by the serial bounded solver.
    pub nodes_expanded: u64,
    /// Subtrees cut by the suffix bound (serial bounded solver).
    pub pruned_bound: u64,
    /// Candidate placements rejected as infeasible (serial bounded
    /// solver).
    pub pruned_infeasible: u64,
    /// Nodes expanded with the suffix bound disabled.
    pub baseline_nodes_expanded: u64,
    /// `baseline_ms / serial_ms` — what the tighter bound buys.
    pub bound_speedup: f64,
    /// Total wall-clock of the solver portfolio (greedy seed +
    /// warm-started exact) on the same instances (ms). Absent in
    /// pre-v6 artifacts.
    #[serde(default)]
    pub portfolio_ms: f64,
}

/// One large-graph rung: the hierarchical route of the portfolio versus
/// a raised-limit exhaustive run capped by a node budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsdLargeCase {
    /// Components in the instance (beyond the exact node limit).
    pub nodes: usize,
    /// Devices (`k`).
    pub devices: usize,
    /// Instances aggregated over (infeasible draws are skipped
    /// identically in every column).
    pub instances: usize,
    /// Total wall-clock of the greedy heuristic (ms).
    pub greedy_ms: f64,
    /// Total wall-clock of the portfolio (hierarchical route) (ms).
    pub portfolio_ms: f64,
    /// Total wall-clock of the budgeted raised-limit exhaustive run (ms).
    pub exhaustive_ms: f64,
    /// Coarse B&B nodes the portfolio expanded, summed over instances
    /// and refinement rounds (deterministic: serial inner solver).
    pub portfolio_nodes_expanded: u64,
    /// Nodes the budgeted exhaustive run expanded (deterministic:
    /// serial, greedy-seeded).
    pub exhaustive_nodes_expanded: u64,
    /// `exhaustive_nodes_expanded / portfolio_nodes_expanded` — how many
    /// fewer nodes the abstraction-refinement route visits.
    pub expansion_ratio: f64,
    /// Mean certified relative optimality gap across instances.
    pub mean_gap: f64,
    /// Worst certified relative optimality gap across instances.
    pub max_gap: f64,
    /// Node budget the raised-limit exhaustive run was capped at.
    pub exhaustive_budget: u64,
    /// Whether any instance's exhaustive run hit the budget before
    /// proving optimality (expected `true` at these sizes).
    pub budget_exhausted: bool,
    /// Mean `exhaustive anytime cost / portfolio cost` — above 1 means
    /// the hierarchical route also found *cheaper* placements than the
    /// budget-capped exhaustive search.
    pub cost_ratio: f64,
}

/// The full `BENCH_osd.json` artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsdBenchReport {
    /// Artifact schema version ([`ubiqos::BENCH_SCHEMA_VERSION`]). The
    /// nightly drift gate refuses to compare artifacts across versions.
    pub schema_version: u32,
    /// One row per (nodes, devices) rung.
    pub cases: Vec<OsdBenchCase>,
    /// Worker threads the parallel rows used.
    pub threads: usize,
    /// The solver's default serial-fallback threshold: instances with
    /// fewer free components than this run one serial subtree even when
    /// the fan-out is requested. The parallel column honors it — small
    /// rungs route to the serial path exactly as the portfolio and every
    /// real caller do, so `parallel_ms` can no longer exceed `serial_ms`
    /// by fan-out overhead alone below the threshold.
    pub serial_fallback_threshold: usize,
    /// Large-graph rungs through the hierarchical route. Absent in
    /// pre-v6 artifacts.
    #[serde(default)]
    pub large_cases: Vec<OsdLargeCase>,
}

impl OsdBenchReport {
    /// The headline claim: on the largest rung (20 nodes, 3 devices) the
    /// suffix bound makes the solver at least `factor`x faster than the
    /// bare partial-cost baseline.
    pub fn speedup_ok(&self, factor: f64) -> bool {
        self.cases
            .iter()
            .filter(|c| c.nodes >= 20 && c.devices >= 3)
            .all(|c| c.bound_speedup >= factor)
    }

    /// The large-graph optimality claim: every rung's worst certified
    /// gap is within `tolerance` (the acceptance gate uses 2%).
    pub fn large_gap_ok(&self, tolerance: f64) -> bool {
        self.large_cases.iter().all(|c| c.max_gap <= tolerance)
    }

    /// The large-graph efficiency claim: every rung expands at least
    /// `factor`× fewer nodes than the budgeted raised-limit exhaustive
    /// run on the same instances.
    pub fn large_expansion_ok(&self, factor: f64) -> bool {
        self.large_cases.iter().all(|c| c.expansion_ratio >= factor)
    }

    /// Renders the rows as an aligned table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:>5} | {:>2} | {:>11} | {:>9} | {:>11} | {:>12} | {:>10} | {:>12} | {:>7}\n",
            "nodes",
            "k",
            "baseline ms",
            "serial ms",
            "parallel ms",
            "portfolio ms",
            "expanded",
            "bound-pruned",
            "speedup"
        );
        for c in &self.cases {
            out.push_str(&format!(
                "{:>5} | {:>2} | {:>11.1} | {:>9.1} | {:>11.1} | {:>12.1} | {:>10} | {:>12} | \
                 {:>6.1}x\n",
                c.nodes,
                c.devices,
                c.baseline_ms,
                c.serial_ms,
                c.parallel_ms,
                c.portfolio_ms,
                c.nodes_expanded,
                c.pruned_bound,
                c.bound_speedup
            ));
        }
        out.push_str(&format!(
            "({} worker threads; parallel column honors the default serial \
             fallback below {} free components)\n",
            self.threads, self.serial_fallback_threshold
        ));
        if !self.large_cases.is_empty() {
            out.push_str(&format!(
                "\n{:>5} | {:>2} | {:>9} | {:>12} | {:>13} | {:>11} | {:>11} | {:>8} | {:>8}\n",
                "nodes",
                "k",
                "greedy ms",
                "portfolio ms",
                "exhaustive ms",
                "hier nodes",
                "exh nodes",
                "node-x",
                "max gap"
            ));
            for c in &self.large_cases {
                out.push_str(&format!(
                    "{:>5} | {:>2} | {:>9.1} | {:>12.1} | {:>13.1} | {:>11} | {:>11} | {:>7.1}x \
                     | {:>7.2}%\n",
                    c.nodes,
                    c.devices,
                    c.greedy_ms,
                    c.portfolio_ms,
                    c.exhaustive_ms,
                    c.portfolio_nodes_expanded,
                    c.exhaustive_nodes_expanded,
                    c.expansion_ratio,
                    c.max_gap * 100.0
                ));
            }
            out.push_str(&format!(
                "(exhaustive raised-limit runs greedy-seeded, capped at {} expanded nodes)\n",
                self.large_cases.first().map_or(0, |c| c.exhaustive_budget)
            ));
        }
        out
    }
}

/// A `k`-device environment scaled so the benchmark instances are
/// feasible but contended (the PC/laptop/PDA ladder of the paper's
/// experiments, truncated to `k`).
fn bench_environment(k: usize) -> Environment {
    let specs = [
        ("pc", 256.0, 300.0),
        ("laptop", 128.0, 160.0),
        ("pda", 48.0, 110.0),
    ];
    let mut builder = Environment::builder();
    for &(name, mem, cpu) in specs.iter().take(k) {
        builder = builder.device(Device::new(
            name,
            ubiqos_model::ResourceVector::mem_cpu(mem, cpu),
        ));
    }
    builder.default_bandwidth_mbps(20.0).build()
}

/// Deterministic instance set for one rung: Table 1-style graphs pinned
/// to exactly `nodes` components.
fn bench_instances(nodes: usize, seed: u64, count: usize) -> Vec<ServiceGraph> {
    let gen = GraphGenConfig {
        nodes: nodes..=nodes,
        ..GraphGenConfig::table1()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| gen.generate(&mut rng)).collect()
}

/// Total wall-clock (ms) and summed stats of solving every instance with
/// `solver`. Infeasible instances are rare with this generator and are
/// simply skipped — identically in every configuration, so the timings
/// stay comparable.
fn time_solver(
    solver: &ExhaustiveOptimal,
    graphs: &[ServiceGraph],
    env: &Environment,
    weights: &Weights,
) -> (f64, SolveStats) {
    let mut total = SolveStats::default();
    let start = Instant::now();
    for g in graphs {
        let p = OsdProblem::new(g, env, weights);
        let mut s = solver.clone();
        if s.distribute(&p).is_ok() {
            let stats = s.last_stats().expect("stats recorded after a solve");
            total.nodes_expanded += stats.nodes_expanded;
            total.pruned_bound += stats.pruned_bound;
            total.pruned_infeasible += stats.pruned_infeasible;
        }
    }
    (start.elapsed().as_secs_f64() * 1e3, total)
}

/// Runs the full ladder. `instances` graphs per rung; rungs follow the
/// paper's Table 1 range and extend it to three devices.
pub fn run_osd_bench(instances: usize) -> OsdBenchReport {
    let weights = Weights::default();
    let rungs: &[(usize, usize, u64)] = &[
        (12, 2, 0xbe11),
        (16, 2, 0xbe12),
        (20, 2, 0xbe13),
        (20, 3, 0xbe14),
    ];
    let cases = rungs
        .iter()
        .map(|&(nodes, devices, seed)| {
            let env = bench_environment(devices);
            let graphs = bench_instances(nodes, seed, instances);

            let baseline = ExhaustiveOptimal::new()
                .with_parallel(false)
                .with_suffix_bound(false);
            let serial = ExhaustiveOptimal::new().with_parallel(false);
            // The default serial-fallback threshold applies: rungs below
            // it route to one serial subtree, exactly as the portfolio
            // and every real caller see the solver. (Forcing the fan-out
            // with threshold 0 made the parallel column *slower* than
            // serial on the 12/16-node rungs — pure fan-out overhead no
            // caller pays.)
            let parallel = ExhaustiveOptimal::new().with_parallel(true);

            let (baseline_ms, baseline_stats) = time_solver(&baseline, &graphs, &env, &weights);
            let (serial_ms, serial_stats) = time_solver(&serial, &graphs, &env, &weights);
            let (parallel_ms, _) = time_solver(&parallel, &graphs, &env, &weights);
            let portfolio_ms = time_portfolio(&graphs, &env, &weights);

            OsdBenchCase {
                nodes,
                devices,
                instances,
                baseline_ms,
                serial_ms,
                parallel_ms,
                nodes_expanded: serial_stats.nodes_expanded,
                pruned_bound: serial_stats.pruned_bound,
                pruned_infeasible: serial_stats.pruned_infeasible,
                baseline_nodes_expanded: baseline_stats.nodes_expanded,
                bound_speedup: baseline_ms / serial_ms.max(1e-6),
                portfolio_ms,
            }
        })
        .collect();
    OsdBenchReport {
        schema_version: ubiqos::BENCH_SCHEMA_VERSION,
        cases,
        threads: ubiqos_parallel::thread_count(),
        serial_fallback_threshold: ExhaustiveOptimal::new().parallel_threshold(),
        large_cases: Vec::new(),
    }
}

/// Total wall-clock (ms) of the portfolio over the same instances.
fn time_portfolio(graphs: &[ServiceGraph], env: &Environment, weights: &Weights) -> f64 {
    let start = Instant::now();
    for g in graphs {
        let p = OsdProblem::new(g, env, weights);
        let _ = SolverPortfolio::new().distribute(&p);
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// CPU demand per unit of memory demand in the large-graph instances.
/// Keeping the two dimensions *perfectly correlated* (and the devices
/// exactly proportional) makes the solver's single-dimension fractional
/// transport bound the true fractional optimum of the whole end-system
/// problem — so the certified gap measures real placement slack, not
/// relaxation looseness.
const LARGE_CPU_PER_MEM: f64 = 1.15;

/// Sparse large-graph generator for the hierarchical rungs: a DAG with
/// 1-2 forward edges per node, per-component demand small against the
/// device ladder, CPU locked to `LARGE_CPU_PER_MEM`× memory.
fn large_graph(nodes: usize, rng: &mut StdRng) -> ServiceGraph {
    use rand::Rng;
    let mut g = ServiceGraph::new();
    let ids: Vec<_> = (0..nodes)
        .map(|i| {
            let mem = rng.gen_range(0.8..=2.8);
            g.add_component(
                ubiqos_graph::ServiceComponent::builder(format!("svc-{i}"))
                    .resources(ubiqos_model::ResourceVector::mem_cpu(
                        mem,
                        LARGE_CPU_PER_MEM * mem,
                    ))
                    .build(),
            )
        })
        .collect();
    for i in 0..nodes {
        let downstream = nodes - i - 1;
        if downstream == 0 {
            continue;
        }
        let degree = rng.gen_range(1..=2usize).min(downstream);
        for _ in 0..degree {
            let j = i + 1 + rng.gen_range(0..downstream);
            // A repeated (i, j) draw is simply skipped — the graphs stay
            // simple and the RNG stream deterministic.
            let _ = g.add_edge(ids[i], ids[j], rng.gen_range(0.1..=1.0));
        }
    }
    g
}

/// A three-device environment whose capacities are *exactly*
/// proportional across resource dimensions (λ = 1, 0.8, 0.6) — the shape
/// the hierarchical solver's fractional transport bound certifies
/// tightly — scaled so total capacity is ≈1.5× the expected demand of an
/// `nodes`-component instance (the cheapest device holds ~60% of the
/// mass, so every instance genuinely spills over).
fn large_environment(nodes: usize) -> Environment {
    const LAMBDA: [f64; 3] = [1.0, 0.8, 0.6];
    let demand_mem = 1.8 * nodes as f64;
    let demand_cpu = LARGE_CPU_PER_MEM * demand_mem;
    let scale = 1.5 / LAMBDA.iter().sum::<f64>();
    let mut builder = Environment::builder();
    for (d, &lambda) in LAMBDA.iter().enumerate() {
        builder = builder.device(Device::new(
            format!("node{d}"),
            ubiqos_model::ResourceVector::mem_cpu(
                lambda * scale * demand_mem,
                lambda * scale * demand_cpu,
            ),
        ));
    }
    // Bandwidth high enough that network cost is a small additive term:
    // the certified lower bound ignores it, so cheap links keep the
    // reported gap honest about end-system placement quality.
    builder.default_bandwidth_mbps(1_000.0).build()
}

/// Runs the large-graph ladder: for each rung in `node_counts`, solve
/// `instances` deterministic instances with the greedy heuristic, the
/// portfolio (hierarchical route, serial inner solver — the node counts
/// and gaps are deterministic and drift-gated), and a raised-limit
/// exhaustive search greedy-seeded and capped at `budget` expanded
/// nodes.
pub fn run_osd_large_bench(
    instances: usize,
    node_counts: &[usize],
    budget: u64,
) -> Vec<OsdLargeCase> {
    let weights = Weights::default();
    node_counts
        .iter()
        .map(|&nodes| {
            let env = large_environment(nodes);
            let mut rng = StdRng::seed_from_u64(0x1a36 ^ nodes as u64);
            let graphs: Vec<ServiceGraph> = (0..instances)
                .map(|_| large_graph(nodes, &mut rng))
                .collect();

            let mut greedy_ms = 0.0;
            let mut portfolio_ms = 0.0;
            let mut exhaustive_ms = 0.0;
            let mut portfolio_nodes = 0u64;
            let mut exhaustive_nodes = 0u64;
            let mut gaps: Vec<f64> = Vec::new();
            let mut cost_ratios: Vec<f64> = Vec::new();
            let mut budget_exhausted = false;
            let mut solved = 0usize;

            for g in &graphs {
                let p = OsdProblem::new(g, &env, &weights);

                let start = Instant::now();
                let greedy = GreedyHeuristic::paper().distribute(&p);
                greedy_ms += start.elapsed().as_secs_f64() * 1e3;

                let mut portfolio = SolverPortfolio::new();
                let start = Instant::now();
                let Ok(cut) = portfolio.distribute(&p) else {
                    // Infeasible draw: skipped identically in every
                    // column.
                    continue;
                };
                portfolio_ms += start.elapsed().as_secs_f64() * 1e3;
                solved += 1;
                let outcome = portfolio.last_outcome().expect("outcome after a solve");
                portfolio_nodes += outcome.stats.nodes_expanded;
                if let Some(cert) = outcome.certificate {
                    gaps.push(cert.gap);
                }
                let portfolio_cost = p.cost(&cut);

                let mut exhaustive = ExhaustiveOptimal::new()
                    .with_parallel(false)
                    .with_node_limit(nodes)
                    .with_node_budget(Some(budget));
                exhaustive.set_warm_start(greedy.as_ref().ok().map(|c| {
                    (0..g.component_count())
                        .map(|i| {
                            c.part_of(ubiqos_graph::ComponentId::from_index(i))
                                .expect("greedy places every component")
                        })
                        .collect()
                }));
                let start = Instant::now();
                let anytime = exhaustive.distribute(&p);
                exhaustive_ms += start.elapsed().as_secs_f64() * 1e3;
                let stats = exhaustive.last_stats().expect("stats after a solve");
                exhaustive_nodes += stats.nodes_expanded;
                budget_exhausted |= stats.budget_exhausted;
                if let Ok(cut) = anytime {
                    cost_ratios.push(p.cost(&cut) / portfolio_cost.max(1e-12));
                }
            }

            let mean = |v: &[f64]| {
                if v.is_empty() {
                    0.0
                } else {
                    v.iter().sum::<f64>() / v.len() as f64
                }
            };
            OsdLargeCase {
                nodes,
                devices: 3,
                instances: solved,
                greedy_ms,
                portfolio_ms,
                exhaustive_ms,
                portfolio_nodes_expanded: portfolio_nodes,
                exhaustive_nodes_expanded: exhaustive_nodes,
                expansion_ratio: exhaustive_nodes as f64 / (portfolio_nodes as f64).max(1.0),
                mean_gap: mean(&gaps),
                max_gap: gaps.iter().copied().fold(0.0, f64::max),
                exhaustive_budget: budget,
                budget_exhausted,
                cost_ratio: mean(&cost_ratios),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_shows_the_bound_paying_off() {
        // Few instances keep the test quick; the node-count ratio is
        // timing-independent and is the robust signal.
        let report = run_osd_bench(3);
        assert_eq!(report.cases.len(), 4);
        for c in &report.cases {
            assert!(c.nodes_expanded > 0);
            assert!(
                c.baseline_nodes_expanded >= c.nodes_expanded,
                "bound can only shrink the tree ({} vs {})",
                c.baseline_nodes_expanded,
                c.nodes_expanded
            );
        }
        let big = report
            .cases
            .iter()
            .find(|c| c.nodes == 20 && c.devices == 3)
            .unwrap();
        assert!(
            big.baseline_nodes_expanded as f64 >= 2.0 * big.nodes_expanded as f64,
            "suffix bound should at least halve the explored tree: {} vs {}",
            big.baseline_nodes_expanded,
            big.nodes_expanded
        );
    }

    #[test]
    fn render_mentions_every_rung() {
        let mut report = run_osd_bench(1);
        report.large_cases = run_osd_large_bench(1, &[40], 20_000);
        let s = report.render();
        assert!(s.contains("nodes"));
        assert!(s.contains("max gap"));
        assert!(s.lines().count() >= 8);
    }

    #[test]
    fn large_ladder_certifies_tight_gaps_with_fewer_nodes() {
        let cases = run_osd_large_bench(1, &[40], 20_000);
        assert_eq!(cases.len(), 1);
        let c = &cases[0];
        assert_eq!(c.instances, 1, "the deterministic draw must be feasible");
        assert!(c.portfolio_nodes_expanded > 0);
        assert!(
            c.max_gap <= 0.02,
            "certified gap above the 2% acceptance ceiling: {}",
            c.max_gap
        );
        assert!(
            c.expansion_ratio >= 10.0,
            "hierarchical route should expand >=10x fewer nodes: {}x",
            c.expansion_ratio
        );
        assert!(
            c.budget_exhausted,
            "a 40-node exhaustive run must hit a 20k-node budget"
        );
    }
}
