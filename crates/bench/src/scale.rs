//! The admission-throughput scaling benchmark behind `BENCH_scale.json`.
//!
//! One overload campaign — `arrivals` requests packed into a two-hour
//! horizon on the six-device fault-harness space, no injected faults —
//! runs once through the serial DES reference loop and once per
//! (batch size × thread count) cell through the batched pipeline
//! runtime. The batched runtime must stay **byte-identical** to the
//! serial loop: every cell's report and event-log digest are compared
//! against the serial baseline and any divergence fails the artifact.
//!
//! What the artifact records per cell: wall clock, sustained admitted
//! requests per second, speedup over serial, the pipeline's overlap
//! counters ([`PipelineStats`]) and the stage accounting
//! ([`StageTimes`], including the queue-wait and batch-size histograms
//! the batched runtime fills in). The headline claim — the batched
//! runtime sustains ≥2x serial throughput at the widest cell — is
//! checked by [`ScaleReport::scale_ok`] and surfaced by
//! `repro -- scale`.

use crate::hist::{match_cell, p99_us, Align, TextTable};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Instant;
use ubiqos_runtime::{
    run_fault_campaign, run_fault_campaign_batched, FaultCampaignConfig, PipelineConfig,
    PipelineStats, StageTimes,
};

/// The scale campaign at a given arrival count: a pure admission
/// overload (no faults, no detector) so throughput measures the
/// discover→compose→place→download pipeline and nothing else. The
/// invariant stride is raised — the full sweep is O(live sessions ×
/// cut parts) and would dominate 10⁵-arrival runs — identically for
/// the serial and batched cells, so their reports stay comparable.
pub fn scale_config(arrivals: usize) -> FaultCampaignConfig {
    FaultCampaignConfig {
        seed: 0x1cdc_2002,
        devices: 6,
        requests: arrivals,
        horizon_h: 2.0,
        faults: 0,
        invariant_stride: 64,
        ..FaultCampaignConfig::default()
    }
}

/// One batched run at a fixed (batch size, thread count).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleCell {
    /// Maximum events admitted per batch.
    pub batch_size: usize,
    /// Worker threads the speculation stage fans out over.
    pub threads: usize,
    /// End-to-end wall clock of the campaign (ms).
    pub wall_ms: f64,
    /// Sustained arrivals processed per wall-clock second.
    pub sustained_rps: f64,
    /// `serial_wall_ms / wall_ms` — what batching buys in this cell.
    pub speedup: f64,
    /// The cell's event-log digest.
    pub digest: u64,
    /// Whether report *and* digest were byte-identical to serial.
    pub matches_serial: bool,
    /// Overlap counters from the pipeline runtime.
    pub stats: PipelineStats,
    /// Per-stage wall clock plus the queue-wait and batch-size
    /// histograms — the same [`StageTimes`] type `BENCH_configure.json`
    /// embeds, so stage accounting has exactly one schema.
    pub stages: StageTimes,
}

/// The full `BENCH_scale.json` artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleReport {
    /// Artifact schema version ([`ubiqos::BENCH_SCHEMA_VERSION`]). The
    /// nightly drift gate refuses to compare artifacts across versions.
    pub schema_version: u32,
    /// Queued arrivals in every run.
    pub arrivals: usize,
    /// Arrivals admitted (identical in every cell, pinned to serial).
    pub admitted: u32,
    /// Arrivals denied (identical in every cell, pinned to serial).
    pub denied: u32,
    /// Serial reference wall clock (ms).
    pub serial_wall_ms: f64,
    /// Serial reference sustained arrivals per second.
    pub serial_rps: f64,
    /// Serial reference event-log digest — the value every cell must
    /// reproduce.
    pub serial_digest: u64,
    /// Serial reference stage accounting (histograms empty: the serial
    /// loop has no batches and no queue).
    pub serial_stages: StageTimes,
    /// One row per (batch size × thread count).
    pub cells: Vec<ScaleCell>,
    /// Best speedup among cells at the widest thread count.
    pub best_speedup: f64,
    /// Whether every cell matched the serial report and digest.
    pub all_match_serial: bool,
}

impl ScaleReport {
    /// The headline claim: every cell byte-identical to serial, and the
    /// widest cell at least `factor`x faster.
    pub fn scale_ok(&self, factor: f64) -> bool {
        self.all_match_serial && self.best_speedup >= factor
    }

    /// Renders the sweep as an aligned table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} arrivals, serial {:.0} ms ({:.0} req/s), digest {:#018x}\n",
            self.arrivals, self.serial_wall_ms, self.serial_rps, self.serial_digest
        );
        let mut table = TextTable::new(&[
            ("batch", 5, Align::Right),
            ("threads", 7, Align::Right),
            ("wall ms", 9, Align::Right),
            ("req/s", 7, Align::Right),
            ("speedup", 7, Align::Right),
            ("adopted", 7, Align::Right),
            ("inline", 8, Align::Right),
            ("p99 wait us", 12, Align::Right),
            ("digest", 6, Align::Right),
        ]);
        for c in &self.cells {
            table.row(&[
                c.batch_size.to_string(),
                c.threads.to_string(),
                format!("{:.0}", c.wall_ms),
                format!("{:.0}", c.sustained_rps),
                format!("{:.2}x", c.speedup),
                c.stats.adopted.to_string(),
                c.stats.inline_speculated.to_string(),
                p99_us(&c.stages.queue_wait_us).to_string(),
                match_cell(c.matches_serial).to_string(),
            ]);
        }
        out.push_str(&table.finish());
        let _ = writeln!(
            out,
            "best speedup {:.2}x at the widest thread count; digests {}",
            self.best_speedup,
            if self.all_match_serial {
                "byte-identical in every cell"
            } else {
                "DIVERGED"
            }
        );
        out
    }
}

/// Runs the full sweep: one serial reference, then one batched cell per
/// (batch size × thread count). Digest equality against serial is
/// recorded per cell, never assumed.
pub fn run_scale_bench(
    arrivals: usize,
    batch_sizes: &[usize],
    thread_counts: &[usize],
) -> ScaleReport {
    let cfg = scale_config(arrivals);
    let wall = Instant::now();
    let serial = run_fault_campaign(&cfg).expect("the scale campaign holds its invariants");
    let serial_wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let serial_rps = arrivals as f64 / (serial_wall_ms / 1e3).max(1e-9);

    let widest = thread_counts.iter().copied().max().unwrap_or(1);
    let mut cells = Vec::with_capacity(batch_sizes.len() * thread_counts.len());
    let mut best_speedup: f64 = 0.0;
    let mut all_match = true;
    for &threads in thread_counts {
        for &batch_size in batch_sizes {
            let pipeline = PipelineConfig {
                batch_size,
                threads,
            };
            let wall = Instant::now();
            let outcome = run_fault_campaign_batched(&cfg, &pipeline)
                .expect("the batched scale campaign holds its invariants");
            let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
            let matches_serial = outcome.report == serial.report
                && outcome.report.log_digest == serial.report.log_digest;
            all_match &= matches_serial;
            let speedup = serial_wall_ms / wall_ms.max(1e-9);
            if threads == widest {
                best_speedup = best_speedup.max(speedup);
            }
            cells.push(ScaleCell {
                batch_size,
                threads,
                wall_ms,
                sustained_rps: arrivals as f64 / (wall_ms / 1e3).max(1e-9),
                speedup,
                digest: outcome.report.log_digest,
                matches_serial,
                stats: outcome
                    .pipeline
                    .expect("batched campaigns report pipeline stats"),
                stages: outcome.stages,
            });
        }
    }
    ScaleReport {
        schema_version: ubiqos::BENCH_SCHEMA_VERSION,
        arrivals,
        admitted: serial.report.admitted,
        denied: serial.report.denied,
        serial_wall_ms,
        serial_rps,
        serial_digest: serial.report.log_digest,
        serial_stages: serial.stages,
        cells,
        best_speedup,
        all_match_serial: all_match,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_byte_identical_to_serial() {
        let report = run_scale_bench(250, &[1, 32], &[1, 2]);
        assert!(report.all_match_serial, "{}", report.render());
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.schema_version, ubiqos::BENCH_SCHEMA_VERSION);
        assert_eq!(report.arrivals as u32, report.admitted + report.denied);
        for cell in &report.cells {
            assert_eq!(cell.digest, report.serial_digest);
            assert_eq!(
                cell.stats.adopted + cell.stats.inline_speculated,
                u64::from(report.admitted + report.denied),
                "every arrival is either adopted or speculated inline"
            );
            assert!(cell.stages.batch_sizes.total() > 0);
        }
        // The serial reference has no queue and no batches.
        assert_eq!(report.serial_stages.batch_sizes.total(), 0);
        assert_eq!(report.serial_stages.queue_wait_us.total(), 0);
        let rendered = report.render();
        assert!(rendered.contains("byte-identical in every cell"));
        assert!(rendered.contains("speedup"));
    }

    #[test]
    fn scale_config_is_a_pure_admission_overload() {
        let cfg = scale_config(1000);
        assert_eq!(cfg.requests, 1000);
        assert_eq!(cfg.faults, 0);
        assert!(cfg.perfect_detection());
        assert!(cfg.invariant_stride > 1);
    }
}
