//! Golden-regression tests for the reproduction harness.
//!
//! The repro binary's full-scale runs are too slow for `cargo test`, so
//! these drive the same entry points (`run_table1`, `run_fig5`) at a
//! pinned, scaled-down configuration and pin the exact summary numbers.
//! A drift in the generators, the heuristic, the admission accounting,
//! or the RNG shim shows up here as a hard diff — not as a silently
//! shifted figure in the next paper artifact.
//!
//! When a change *intends* to move these numbers, re-run with
//! `--nocapture`, copy the printed actuals, and update the constants in
//! the same commit that justifies them.

use ubiqos_sim::{run_fig5, run_table1, Fig5Config, Policy, Table1Config, WorkloadConfig};

/// Tolerance for pinned f64 stats: the computations are deterministic,
/// so this only absorbs decimal-literal rounding in the constants.
const TOL: f64 = 1e-9;

fn golden_table1_config() -> Table1Config {
    Table1Config {
        graphs: 24,
        seed: 0x1cdc_2002,
        random_attempts: 16,
        include_ablations: true,
        ..Table1Config::default()
    }
}

fn golden_fig5_config() -> Fig5Config {
    Fig5Config {
        seed: 0x1cdc_2002,
        workload: WorkloadConfig {
            requests: 200,
            horizon_h: 50.0,
            ..WorkloadConfig::default()
        },
        window_h: 10.0,
        random_attempts: 4,
        ..Fig5Config::default()
    }
}

#[test]
fn table1_summary_stats_are_pinned() {
    let report = run_table1(&golden_table1_config());
    let row = |name: &str| {
        report
            .rows
            .iter()
            .find(|r| r.algorithm == name)
            .unwrap_or_else(|| panic!("missing row {name}: {report:?}"))
            .clone()
    };
    let random = row("random");
    let heuristic = row("heuristic");
    let optimal = row("optimal");
    println!(
        "table1 actuals: random {:.12}/{:.12} heuristic {:.12}/{:.12} skipped {}",
        random.avg_ratio,
        random.pct_optimal,
        heuristic.avg_ratio,
        heuristic.pct_optimal,
        report.skipped_infeasible
    );

    // Paper-shape ordering first: the qualitative claim of Table 1.
    assert!(
        heuristic.avg_ratio > random.avg_ratio,
        "heuristic must beat random: {heuristic:?} vs {random:?}"
    );
    assert!(heuristic.pct_optimal > random.pct_optimal);
    assert!(
        (optimal.avg_ratio - 1.0).abs() < TOL,
        "optimal is the yardstick"
    );
    assert!((optimal.pct_optimal - 1.0).abs() < TOL);

    // Exact pinned values for the seeded scaled-down run.
    assert!(
        (random.avg_ratio - 0.432237153125).abs() < TOL,
        "random avg_ratio {}",
        random.avg_ratio
    );
    assert!(
        (random.pct_optimal - 0.0).abs() < TOL,
        "random pct_optimal {}",
        random.pct_optimal
    );
    assert!(
        (heuristic.avg_ratio - 0.665948259428).abs() < TOL,
        "heuristic avg_ratio {}",
        heuristic.avg_ratio
    );
    assert!(
        (heuristic.pct_optimal - 0.458333333333).abs() < TOL,
        "heuristic pct_optimal {}",
        heuristic.pct_optimal
    );
    assert_eq!(
        report.skipped_infeasible, 0,
        "generator feasibility drifted"
    );
}

#[test]
fn table1_ablation_rows_bracket_the_full_heuristic() {
    let report = run_table1(&golden_table1_config());
    let full = report
        .rows
        .iter()
        .find(|r| r.algorithm == "heuristic")
        .expect("full heuristic row");
    for row in report
        .rows
        .iter()
        .filter(|r| r.algorithm.starts_with("heuristic-no-"))
    {
        assert!(
            row.avg_ratio <= full.avg_ratio + TOL,
            "ablation {} ({}) outperforms the full heuristic ({})",
            row.algorithm,
            row.avg_ratio,
            full.avg_ratio
        );
    }
}

#[test]
fn fig5_policy_ordering_and_overalls_are_pinned() {
    let outcome = run_fig5(&golden_fig5_config());
    let overall = |p: Policy| outcome.curve(p).overall;
    let fixed = overall(Policy::Fixed);
    let fixed_planned = overall(Policy::FixedPlanned);
    let random = overall(Policy::Random);
    let heuristic = overall(Policy::Heuristic);
    println!(
        "fig5 actuals: fixed {fixed:.12} fixed-planned {fixed_planned:.12} \
         random {random:.12} heuristic {heuristic:.12}"
    );

    // Figure 5's qualitative claim: dynamic heuristic > dynamic random >
    // static fixed placement.
    assert!(
        heuristic > random,
        "heuristic ({heuristic}) must beat random ({random})"
    );
    assert!(
        random > fixed,
        "dynamic random ({random}) must beat static fixed ({fixed})"
    );
    assert!(
        heuristic > fixed_planned,
        "re-planning beats one good plan: {heuristic} vs {fixed_planned}"
    );

    // Exact pinned values for the seeded scaled-down run.
    assert!((fixed - 0.130000000000).abs() < TOL, "fixed {fixed}");
    assert!(
        (fixed_planned - 0.525000000000).abs() < TOL,
        "fixed-planned {fixed_planned}"
    );
    assert!((random - 0.475000000000).abs() < TOL, "random {random}");
    assert!(
        (heuristic - 0.685000000000).abs() < TOL,
        "heuristic {heuristic}"
    );
}

#[test]
fn fig5_curves_are_complete_and_in_range() {
    let outcome = run_fig5(&golden_fig5_config());
    assert_eq!(outcome.curves.len(), 4, "one curve per policy");
    for curve in &outcome.curves {
        assert!(!curve.series.is_empty(), "{} has no windows", curve.policy);
        for &(t, rate) in &curve.series {
            assert!(t > 0.0, "{}: window at t={t}", curve.policy);
            assert!(
                (0.0..=1.0).contains(&rate),
                "{}: rate {rate} out of range",
                curve.policy
            );
        }
        assert!((0.0..=1.0).contains(&curve.overall));
    }
}
