//! The service composer: the four protocol steps of Section 3.2.

use crate::correction::{Correction, CorrectionPolicy};
use crate::error::CompositionError;
use crate::library::ExpansionLibrary;
use crate::oc::{ordered_coordination, OcReport};
use crate::transcoder::TranscoderCatalog;
use crate::RECURSION_LIMIT;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use ubiqos_discovery::{DeviceProperties, DiscoveryQuery, DomainId, ServiceRegistry};
use ubiqos_graph::{
    AbstractComponentSpec, AbstractServiceGraph, ComponentId, DeviceId, PinHint, ServiceGraph,
    SpecId,
};
use ubiqos_model::QosVector;

/// What the composer needs to know about the requesting user/session.
#[derive(Debug, Clone)]
pub struct ComposeRequest<'a> {
    /// The developer's abstract application description.
    pub abstract_graph: &'a AbstractServiceGraph,
    /// The user's QoS requirements, applied to client-pinned services
    /// (e.g. "CD quality music").
    pub user_qos: QosVector,
    /// The device acting as the user's portal; `ClientDevice` pins
    /// resolve to it.
    pub client_device: DeviceId,
    /// The client device's properties, for discovery filtering.
    pub client_props: DeviceProperties,
    /// Domain to discover in (`None` = whole smart space).
    pub domain: Option<DomainId>,
}

/// One registry instance used in a composed application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceUse {
    /// The registry instance id.
    pub instance_id: String,
    /// Code bundle size (MB), for dynamic-download accounting.
    pub code_size_mb: f64,
    /// The component this instance became in the composed graph.
    pub component: ComponentId,
}

/// A successfully composed, QoS-consistent application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComposedApplication {
    /// The QoS-consistent service graph, ready for the distribution tier.
    pub graph: ServiceGraph,
    /// What the OC algorithm did.
    pub report: OcReport,
    /// Registry instances used, in component order.
    pub instances: Vec<InstanceUse>,
}

impl ComposedApplication {
    /// Total code to download if none of the instances are pre-installed
    /// (MB).
    pub fn total_code_size_mb(&self) -> f64 {
        self.instances.iter().map(|i| i.code_size_mb).sum()
    }

    /// Scales every component's resource demand by `factor` — the
    /// degradation ladder's demand side. A session placed at rung factor
    /// `f` streams proportionally less data, so the distribution tier
    /// should charge (and fit) `f` times the full-quality demand.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is negative or non-finite.
    pub fn scale_resources(&mut self, factor: f64) {
        let ids: Vec<_> = self.graph.component_ids().collect();
        for id in ids {
            self.graph
                .component_mut(id)
                .expect("own component ids are valid")
                .scale_resources(factor);
        }
    }
}

/// The service composer.
///
/// Borrows the environment's [`ServiceRegistry`]; owns its transcoder
/// catalog, expansion library, and correction policy.
///
/// # Example
///
/// ```
/// use ubiqos_composition::{ComposeRequest, ServiceComposer};
/// use ubiqos_discovery::{DeviceProperties, ServiceDescriptor, ServiceRegistry};
/// use ubiqos_graph::{AbstractComponentSpec, AbstractServiceGraph, DeviceId, ServiceComponent};
/// use ubiqos_model::QosVector;
///
/// let mut registry = ServiceRegistry::new();
/// registry.register(ServiceDescriptor::new(
///     "srv-1",
///     "audio-server",
///     ServiceComponent::builder("audio-server").build(),
/// ));
/// let mut app = AbstractServiceGraph::new();
/// app.add_spec(AbstractComponentSpec::new("audio-server"));
///
/// let composer = ServiceComposer::new(&registry);
/// let composed = composer.compose(&ComposeRequest {
///     abstract_graph: &app,
///     user_qos: QosVector::new(),
///     client_device: DeviceId::from_index(0),
///     client_props: DeviceProperties::unconstrained(),
///     domain: None,
/// })?;
/// assert_eq!(composed.graph.component_count(), 1);
/// # Ok::<(), ubiqos_composition::CompositionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ServiceComposer<'r> {
    registry: &'r ServiceRegistry,
    catalog: TranscoderCatalog,
    library: ExpansionLibrary,
    policy: CorrectionPolicy,
}

/// Upper bound on instance-selection retries after uncorrectable
/// compositions.
const MAX_SELECTION_ATTEMPTS: usize = 16;

/// How one abstract spec was resolved.
// Short-lived per-spec value on the composition path; boxing the large
// `Instance` variant would only add an allocation per resolution.
#[allow(clippy::large_enum_variant)]
enum Resolution {
    /// A concrete instance was discovered.
    Instance(ubiqos_discovery::Discovered),
    /// Expanded into a chain of resolutions (recursive composition).
    Expanded(Vec<(AbstractComponentSpec, Resolution)>),
    /// Optional and missing: bypassed.
    Dropped,
}

impl<'r> ServiceComposer<'r> {
    /// Creates a composer with the standard transcoder catalog, an empty
    /// expansion library, and all corrections enabled.
    pub fn new(registry: &'r ServiceRegistry) -> Self {
        ServiceComposer {
            registry,
            catalog: TranscoderCatalog::standard(),
            library: ExpansionLibrary::new(),
            policy: CorrectionPolicy::all(),
        }
    }

    /// Replaces the transcoder catalog.
    #[must_use]
    pub fn with_catalog(mut self, catalog: TranscoderCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Replaces the expansion library.
    #[must_use]
    pub fn with_library(mut self, library: ExpansionLibrary) -> Self {
        self.library = library;
        self
    }

    /// Replaces the correction policy.
    #[must_use]
    pub fn with_policy(mut self, policy: CorrectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The transcoder catalog in use.
    pub fn catalog(&self) -> &TranscoderCatalog {
        &self.catalog
    }

    /// Runs the full composition protocol: discover every spec, build the
    /// concrete graph, and make it QoS consistent with Ordered
    /// Coordination.
    ///
    /// # Errors
    ///
    /// * [`CompositionError::MissingService`] — a mandatory service has no
    ///   instance and no expansion within the recursion limit;
    /// * [`CompositionError::Uncorrectable`] — a QoS inconsistency
    ///   survived every allowed correction;
    /// * [`CompositionError::Graph`] — structural failures.
    pub fn compose(
        &self,
        request: &ComposeRequest<'_>,
    ) -> Result<ComposedApplication, CompositionError> {
        // Discovery returns the instance *closest* to each abstract
        // description — but the closest instance can still compose
        // inconsistently (e.g. its format has no transcoder from the
        // chosen upstream). When that happens, retry with the next-best
        // candidate for a spec implicated in the failure, up to a small
        // bounded number of alternatives.
        let mut selection: BTreeMap<SpecId, usize> = BTreeMap::new();
        let mut last_err = None;
        for _ in 0..MAX_SELECTION_ATTEMPTS {
            match self.compose_with_selection(request, &selection) {
                Ok(app) => return Ok(app),
                Err((err @ CompositionError::Uncorrectable { .. }, chosen)) => {
                    if !self.advance_selection(request, &mut selection, &err, &chosen) {
                        return Err(err);
                    }
                    last_err = Some(err);
                }
                Err((err, _)) => return Err(err),
            }
        }
        Err(last_err.expect("loop ran at least once"))
    }

    /// One composition attempt with explicit per-spec candidate choices
    /// (`selection[spec]` = index into that spec's discovery ranking).
    /// On failure, also returns the instance chosen per spec so the
    /// caller can identify which candidate to advance.
    fn compose_with_selection(
        &self,
        request: &ComposeRequest<'_>,
        selection: &BTreeMap<SpecId, usize>,
    ) -> Result<ComposedApplication, (CompositionError, BTreeMap<SpecId, String>)> {
        let abs = request.abstract_graph;

        // Steps 1-2: resolve every abstract spec against the environment.
        let mut resolutions: Vec<(SpecId, Resolution)> = Vec::new();
        let mut chosen: BTreeMap<SpecId, String> = BTreeMap::new();
        for (id, spec) in abs.specs() {
            let choice = selection.get(&id).copied().unwrap_or(0);
            let resolution = self
                .resolve(spec, request, 0, choice)
                .map_err(|e| (e, chosen.clone()))?;
            if let Resolution::Instance(hit) = &resolution {
                chosen.insert(id, hit.descriptor.prototype.name().to_owned());
            }
            resolutions.push((id, resolution));
        }

        // Step 2.5: materialize the concrete graph nodes.
        let mut graph = ServiceGraph::new();
        let mut instances = Vec::new();
        let mut report = OcReport::default();
        // spec -> (entry component, exit component) or None when dropped.
        let mut endpoints: BTreeMap<SpecId, Option<(ComponentId, ComponentId)>> = BTreeMap::new();
        for (spec_id, resolution) in &resolutions {
            let spec = abs.spec(*spec_id).expect("spec ids are dense");
            let span = self.materialize(
                resolution,
                spec,
                request,
                &mut graph,
                &mut instances,
                &mut report.corrections,
            );
            endpoints.insert(*spec_id, span);
        }

        // Step 2.75: wire the abstract edges, bypassing dropped optionals.
        let effective = bypass_dropped(abs, &endpoints);
        for (from, to, throughput) in effective {
            let (_, exit) = endpoints[&from].expect("bypass removed dropped endpoints");
            let (entry, _) = endpoints[&to].expect("bypass removed dropped endpoints");
            graph
                .add_edge(exit, entry, throughput)
                .map_err(|e| (CompositionError::from(e), chosen.clone()))?;
        }

        // Steps 3-4: QoS consistency check and automatic correction.
        let oc = ordered_coordination(&mut graph, &self.catalog, self.policy)
            .map_err(|e| (e, chosen.clone()))?;
        report.corrections.extend(oc.corrections);
        report.checks = oc.checks;
        report.passes = oc.passes;

        Ok(ComposedApplication {
            graph,
            report,
            instances,
        })
    }

    /// Picks the next candidate to try after an uncorrectable failure:
    /// prefer the spec whose chosen instance is named as the failure's
    /// downstream, then its upstream, then any spec with alternatives
    /// left. Returns false when no spec has another candidate.
    fn advance_selection(
        &self,
        request: &ComposeRequest<'_>,
        selection: &mut BTreeMap<SpecId, usize>,
        err: &CompositionError,
        chosen: &BTreeMap<SpecId, String>,
    ) -> bool {
        let CompositionError::Uncorrectable {
            upstream,
            downstream,
            ..
        } = err
        else {
            return false;
        };
        let has_more = |id: SpecId| -> bool {
            let spec = request.abstract_graph.spec(id).expect("spec ids are dense");
            let current = selection.get(&id).copied().unwrap_or(0);
            self.candidates(spec, request).len() > current + 1
        };
        let by_name = |name: &str| -> Option<SpecId> {
            chosen
                .iter()
                .find(|(id, n)| n.as_str() == name && has_more(**id))
                .map(|(&id, _)| id)
        };
        let target = by_name(downstream)
            .or_else(|| by_name(upstream))
            .or_else(|| chosen.keys().copied().find(|&id| has_more(id)));
        match target {
            Some(id) => {
                *selection.entry(id).or_insert(0) += 1;
                true
            }
            None => false,
        }
    }

    /// The discovery ranking for a spec (shared by resolution and the
    /// fallback search).
    fn candidates(
        &self,
        spec: &AbstractComponentSpec,
        request: &ComposeRequest<'_>,
    ) -> Vec<ubiqos_discovery::Discovered> {
        self.registry.discover_all(&self.query_for(spec, request))
    }

    /// Builds the discovery query for a spec.
    fn query_for(
        &self,
        spec: &AbstractComponentSpec,
        request: &ComposeRequest<'_>,
    ) -> DiscoveryQuery {
        let mut query = DiscoveryQuery::new(spec.service_type.clone())
            .with_desired_qos(spec.desired_qos.clone());
        if let Some(domain) = request.domain {
            query = query.in_domain(domain);
        }
        if spec.pin == Some(PinHint::ClientDevice) {
            // The user's QoS requirements attach to the client-facing
            // service, and the instance must run on the client device.
            let mut desired = spec.desired_qos.clone();
            desired.merge_from(&request.user_qos);
            query = query
                .with_desired_qos(desired)
                .on_client(request.client_props);
        }
        query
    }

    /// Resolves one abstract spec: discovery first (taking the
    /// `choice`-th ranked candidate, saturating at the last), then
    /// optional-drop, then recursive expansion.
    fn resolve(
        &self,
        spec: &AbstractComponentSpec,
        request: &ComposeRequest<'_>,
        depth: usize,
        choice: usize,
    ) -> Result<Resolution, CompositionError> {
        let mut hits = self.candidates(spec, request);
        if !hits.is_empty() {
            let idx = choice.min(hits.len() - 1);
            return Ok(Resolution::Instance(hits.swap_remove(idx)));
        }
        if spec.optional {
            return Ok(Resolution::Dropped);
        }
        if depth < RECURSION_LIMIT {
            if let Some(rule) = self.library.rule(&spec.service_type) {
                let mut chain = Vec::with_capacity(rule.chain.len());
                for sub in &rule.chain {
                    let resolved = self.resolve(sub, request, depth + 1, 0)?;
                    chain.push((sub.clone(), resolved));
                }
                return Ok(Resolution::Expanded(chain));
            }
        }
        Err(CompositionError::MissingService {
            service_type: spec.service_type.clone(),
            depth,
        })
    }

    /// Adds the components of one resolution to the graph, returning the
    /// (entry, exit) span, or `None` for dropped optionals.
    fn materialize(
        &self,
        resolution: &Resolution,
        spec: &AbstractComponentSpec,
        request: &ComposeRequest<'_>,
        graph: &mut ServiceGraph,
        instances: &mut Vec<InstanceUse>,
        corrections: &mut Vec<Correction>,
    ) -> Option<(ComponentId, ComponentId)> {
        match resolution {
            Resolution::Dropped => {
                corrections.push(Correction::DroppedOptional {
                    service_type: spec.service_type.clone(),
                });
                None
            }
            Resolution::Instance(hit) => {
                let mut component = hit.descriptor.prototype.clone();
                match spec.pin {
                    Some(PinHint::ClientDevice) => {
                        component.set_pinned_to(Some(request.client_device));
                    }
                    Some(PinHint::Device(i)) => {
                        component.set_pinned_to(Some(DeviceId::from_index(i as usize)));
                    }
                    None => {}
                }
                let id = graph.add_component(component);
                instances.push(InstanceUse {
                    instance_id: hit.descriptor.instance_id.clone(),
                    code_size_mb: hit.descriptor.code_size_mb,
                    component: id,
                });
                Some((id, id))
            }
            Resolution::Expanded(chain) => {
                let rule_tp = self
                    .library
                    .rule(&spec.service_type)
                    .map_or(1.0, |r| r.internal_throughput);
                let mut entry: Option<ComponentId> = None;
                let mut prev: Option<ComponentId> = None;
                for (sub_spec, sub_res) in chain {
                    if let Some((sub_entry, sub_exit)) =
                        self.materialize(sub_res, sub_spec, request, graph, instances, corrections)
                    {
                        if entry.is_none() {
                            entry = Some(sub_entry);
                        }
                        if let Some(p) = prev {
                            graph
                                .add_edge(p, sub_entry, rule_tp)
                                .expect("chain edges connect fresh nodes");
                        }
                        prev = Some(sub_exit);
                    }
                }
                match (entry, prev) {
                    (Some(e), Some(x)) => Some((e, x)),
                    _ => None, // every chain element was optional & dropped
                }
            }
        }
    }
}

/// Rewrites the abstract edge list so edges through dropped specs connect
/// their neighbors directly (keeping the upstream edge's throughput), and
/// edges dangling on a dropped source/sink disappear.
fn bypass_dropped(
    abs: &AbstractServiceGraph,
    endpoints: &BTreeMap<SpecId, Option<(ComponentId, ComponentId)>>,
) -> Vec<(SpecId, SpecId, f64)> {
    let mut edges: Vec<(SpecId, SpecId, f64)> = abs.edges().collect();
    let dropped: Vec<SpecId> = endpoints
        .iter()
        .filter(|(_, span)| span.is_none())
        .map(|(&id, _)| id)
        .collect();
    for d in dropped {
        let ins: Vec<(SpecId, f64)> = edges
            .iter()
            .filter(|&&(_, to, _)| to == d)
            .map(|&(from, _, tp)| (from, tp))
            .collect();
        let outs: Vec<SpecId> = edges
            .iter()
            .filter(|&&(from, _, _)| from == d)
            .map(|&(_, to, _)| to)
            .collect();
        edges.retain(|&(from, to, _)| from != d && to != d);
        for &(u, tp) in &ins {
            for &v in &outs {
                if u != v && !edges.iter().any(|&(f, t, _)| f == u && t == v) {
                    edges.push((u, v, tp));
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_discovery::ServiceDescriptor;
    use ubiqos_graph::{ComponentRole, ServiceComponent};
    use ubiqos_model::{QosDimension as D, QosValue, ResourceVector};

    fn registry() -> ServiceRegistry {
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescriptor::new(
            "server@ws1",
            "audio-server",
            ServiceComponent::builder("audio-server")
                .role(ComponentRole::Source)
                .qos_out(
                    QosVector::new()
                        .with(D::Format, QosValue::token("MPEG"))
                        .with(D::FrameRate, QosValue::exact(40.0)),
                )
                .capability(D::FrameRate, QosValue::range(5.0, 40.0))
                .resources(ResourceVector::mem_cpu(64.0, 30.0))
                .build(),
        ));
        r.register(
            ServiceDescriptor::new(
                "player@pda",
                "audio-player",
                ServiceComponent::builder("audio-player")
                    .role(ComponentRole::Sink)
                    .qos_in(
                        QosVector::new()
                            .with(D::Format, QosValue::token("WAV"))
                            .with(D::FrameRate, QosValue::range(10.0, 40.0)),
                    )
                    .qos_out(QosVector::new().with(D::FrameRate, QosValue::exact(40.0)))
                    .capability(D::FrameRate, QosValue::range(5.0, 40.0))
                    .resources(ResourceVector::mem_cpu(8.0, 15.0))
                    .build(),
            )
            .with_code_size_mb(2.0),
        );
        r
    }

    fn audio_app() -> AbstractServiceGraph {
        let mut g = AbstractServiceGraph::new();
        let server = g.add_spec(AbstractComponentSpec::new("audio-server"));
        let player =
            g.add_spec(AbstractComponentSpec::new("audio-player").with_pin(PinHint::ClientDevice));
        g.add_edge(server, player, 1.4).unwrap();
        g
    }

    fn request<'a>(abs: &'a AbstractServiceGraph) -> ComposeRequest<'a> {
        ComposeRequest {
            abstract_graph: abs,
            user_qos: QosVector::new(),
            client_device: DeviceId::from_index(1),
            client_props: DeviceProperties::unconstrained(),
            domain: None,
        }
    }

    #[test]
    fn composes_audio_on_demand_with_transcoder() {
        let r = registry();
        let abs = audio_app();
        let composed = ServiceComposer::new(&r).compose(&request(&abs)).unwrap();
        // server + player + inserted MPEG2WAV transcoder.
        assert_eq!(composed.graph.component_count(), 3);
        assert!(crate::oc::is_consistent(&composed.graph));
        assert_eq!(composed.instances.len(), 2);
        assert!((composed.total_code_size_mb() - 3.0).abs() < 1e-12);
        // The player is pinned to the client device.
        let player = composed
            .instances
            .iter()
            .find(|i| i.instance_id == "player@pda")
            .unwrap();
        assert_eq!(
            composed
                .graph
                .component(player.component)
                .unwrap()
                .pinned_to(),
            Some(DeviceId::from_index(1))
        );
    }

    #[test]
    fn missing_mandatory_service_fails() {
        let r = ServiceRegistry::new();
        let abs = audio_app();
        let err = ServiceComposer::new(&r)
            .compose(&request(&abs))
            .unwrap_err();
        assert!(matches!(
            err,
            CompositionError::MissingService { ref service_type, .. } if service_type == "audio-server"
        ));
    }

    #[test]
    fn missing_optional_service_is_bypassed() {
        let r = registry();
        let mut abs = AbstractServiceGraph::new();
        let server = abs.add_spec(AbstractComponentSpec::new("audio-server"));
        let eq = abs.add_spec(AbstractComponentSpec::new("equalizer").optional());
        let player = abs
            .add_spec(AbstractComponentSpec::new("audio-player").with_pin(PinHint::ClientDevice));
        abs.add_edge(server, eq, 1.4).unwrap();
        abs.add_edge(eq, player, 1.4).unwrap();
        let composed = ServiceComposer::new(&r).compose(&request(&abs)).unwrap();
        assert!(composed
            .report
            .corrections
            .iter()
            .any(|c| matches!(c, Correction::DroppedOptional { service_type } if service_type == "equalizer")));
        // The bypass edge server -> player exists (through the inserted
        // transcoder after OC).
        assert!(crate::oc::is_consistent(&composed.graph));
        assert_eq!(composed.instances.len(), 2);
    }

    #[test]
    fn recursive_composition_expands_missing_service() {
        // No "audio-player" registered, but the library knows it can be
        // realized as decoder -> renderer, both of which exist.
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescriptor::new(
            "server@ws1",
            "audio-server",
            ServiceComponent::builder("audio-server")
                .qos_out(QosVector::new().with(D::Format, QosValue::token("WAV")))
                .resources(ResourceVector::mem_cpu(64.0, 30.0))
                .build(),
        ));
        r.register(ServiceDescriptor::new(
            "dec@ws1",
            "decoder",
            ServiceComponent::builder("decoder")
                .qos_in(QosVector::new().with(D::Format, QosValue::token("WAV")))
                .qos_out(QosVector::new().with(D::Format, QosValue::token("PCM")))
                .resources(ResourceVector::mem_cpu(8.0, 10.0))
                .build(),
        ));
        r.register(ServiceDescriptor::new(
            "ren@pda",
            "renderer",
            ServiceComponent::builder("renderer")
                .qos_in(QosVector::new().with(D::Format, QosValue::token("PCM")))
                .resources(ResourceVector::mem_cpu(4.0, 8.0))
                .build(),
        ));
        let mut lib = ExpansionLibrary::new();
        lib.add(
            "audio-player",
            crate::library::ExpansionRule::new(
                vec![
                    AbstractComponentSpec::new("decoder"),
                    AbstractComponentSpec::new("renderer"),
                ],
                2.0,
            ),
        );
        let abs = audio_app();
        let composed = ServiceComposer::new(&r)
            .with_library(lib)
            .compose(&request(&abs))
            .unwrap();
        assert_eq!(composed.graph.component_count(), 3);
        assert_eq!(composed.instances.len(), 3);
        assert!(crate::oc::is_consistent(&composed.graph));
    }

    #[test]
    fn recursion_depth_is_limited() {
        // a expands to b, b expands to c, c expands to d: resolving "a"
        // needs depth 3 > limit 2, so it must fail with MissingService.
        let r = ServiceRegistry::new();
        let mut lib = ExpansionLibrary::new();
        for (from, to) in [("a", "b"), ("b", "c"), ("c", "d")] {
            lib.add(
                from,
                crate::library::ExpansionRule::new(vec![AbstractComponentSpec::new(to)], 1.0),
            );
        }
        let mut abs = AbstractServiceGraph::new();
        abs.add_spec(AbstractComponentSpec::new("a"));
        let err = ServiceComposer::new(&r)
            .with_library(lib)
            .compose(&request(&abs))
            .unwrap_err();
        match err {
            CompositionError::MissingService {
                service_type,
                depth,
            } => {
                assert_eq!(service_type, "c");
                assert_eq!(depth, RECURSION_LIMIT);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn user_qos_steers_client_discovery() {
        let mut r = registry();
        // Add a second player that cannot reach 40 fps.
        r.register(ServiceDescriptor::new(
            "slow-player@pda",
            "audio-player",
            ServiceComponent::builder("audio-player")
                .role(ComponentRole::Sink)
                .qos_in(QosVector::new().with(D::Format, QosValue::token("WAV")))
                .qos_out(QosVector::new().with(D::FrameRate, QosValue::exact(10.0)))
                .capability(D::FrameRate, QosValue::range(1.0, 10.0))
                .resources(ResourceVector::mem_cpu(2.0, 4.0))
                .build(),
        ));
        let abs = audio_app();
        let mut req = request(&abs);
        req.user_qos = QosVector::new().with(D::FrameRate, QosValue::exact(40.0));
        let composed = ServiceComposer::new(&r).compose(&req).unwrap();
        assert!(
            composed
                .instances
                .iter()
                .any(|i| i.instance_id == "player@pda"),
            "the 40fps-capable player is chosen over the slow one"
        );
    }

    #[test]
    fn dropped_source_optional_just_removes_edges() {
        let r = registry();
        let mut abs = AbstractServiceGraph::new();
        let logger = abs.add_spec(AbstractComponentSpec::new("usage-logger").optional());
        let server = abs.add_spec(AbstractComponentSpec::new("audio-server"));
        let player = abs
            .add_spec(AbstractComponentSpec::new("audio-player").with_pin(PinHint::ClientDevice));
        abs.add_edge(server, player, 1.4).unwrap();
        abs.add_edge(logger, player, 0.1).unwrap();
        let composed = ServiceComposer::new(&r).compose(&request(&abs)).unwrap();
        assert!(crate::oc::is_consistent(&composed.graph));
        assert_eq!(composed.instances.len(), 2);
    }

    #[test]
    fn falls_back_to_next_candidate_when_best_is_uncorrectable() {
        // Two players: the H261-only one out-scores the WAV one on the
        // desired format (H261), but no transcoder converts MPEG -> H261,
        // so composing with it is uncorrectable. The composer must fall
        // back to the WAV player, which *is* correctable (MPEG2WAV).
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescriptor::new(
            "server",
            "audio-server",
            ServiceComponent::builder("audio-server")
                .role(ComponentRole::Source)
                .qos_out(QosVector::new().with(D::Format, QosValue::token("MPEG")))
                .resources(ResourceVector::mem_cpu(32.0, 20.0))
                .build(),
        ));
        r.register(ServiceDescriptor::new(
            "h261-player",
            "audio-player",
            ServiceComponent::builder("h261-player")
                .role(ComponentRole::Sink)
                .qos_in(QosVector::new().with(D::Format, QosValue::token("H261")))
                .qos_out(QosVector::new().with(D::Format, QosValue::token("H261")))
                .resources(ResourceVector::mem_cpu(2.0, 2.0))
                .build(),
        ));
        r.register(ServiceDescriptor::new(
            "wav-player",
            "audio-player",
            ServiceComponent::builder("wav-player")
                .role(ComponentRole::Sink)
                .qos_in(QosVector::new().with(D::Format, QosValue::token("WAV")))
                .resources(ResourceVector::mem_cpu(8.0, 8.0))
                .build(),
        ));
        let mut abs = AbstractServiceGraph::new();
        let s = abs.add_spec(AbstractComponentSpec::new("audio-server"));
        let p = abs.add_spec(
            AbstractComponentSpec::new("audio-player")
                .with_desired_qos(QosVector::new().with(D::Format, QosValue::token("H261"))),
        );
        abs.add_edge(s, p, 1.0).unwrap();

        // Sanity: discovery alone prefers the (uncorrectable) H261 player.
        let best = r
            .discover(
                &ubiqos_discovery::DiscoveryQuery::new("audio-player")
                    .with_desired_qos(QosVector::new().with(D::Format, QosValue::token("H261"))),
            )
            .unwrap();
        assert_eq!(best.descriptor.instance_id, "h261-player");

        let composed = ServiceComposer::new(&r).compose(&request(&abs)).unwrap();
        assert!(crate::oc::is_consistent(&composed.graph));
        assert!(
            composed
                .instances
                .iter()
                .any(|i| i.instance_id == "wav-player"),
            "fell back to the correctable candidate: {:?}",
            composed.instances
        );
        assert!(composed
            .instances
            .iter()
            .all(|i| i.instance_id != "h261-player"));
    }

    #[test]
    fn truly_uncorrectable_still_fails_after_fallbacks() {
        // Only one player exists and it is uncorrectable: the composer
        // must report the Uncorrectable error, not loop.
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescriptor::new(
            "server",
            "audio-server",
            ServiceComponent::builder("audio-server")
                .qos_out(QosVector::new().with(D::Format, QosValue::token("MPEG")))
                .build(),
        ));
        r.register(ServiceDescriptor::new(
            "h261-player",
            "audio-player",
            ServiceComponent::builder("h261-player")
                .qos_in(QosVector::new().with(D::Format, QosValue::token("H261")))
                .build(),
        ));
        let mut abs = AbstractServiceGraph::new();
        let s = abs.add_spec(AbstractComponentSpec::new("audio-server"));
        let p = abs.add_spec(AbstractComponentSpec::new("audio-player"));
        abs.add_edge(s, p, 1.0).unwrap();
        let err = ServiceComposer::new(&r)
            .compose(&request(&abs))
            .unwrap_err();
        assert!(matches!(err, CompositionError::Uncorrectable { .. }));
    }

    #[test]
    fn pin_to_specific_device() {
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescriptor::new(
            "gw@ws2",
            "gateway",
            ServiceComponent::builder("gateway")
                .resources(ResourceVector::mem_cpu(16.0, 10.0))
                .build(),
        ));
        let mut abs = AbstractServiceGraph::new();
        abs.add_spec(AbstractComponentSpec::new("gateway").with_pin(PinHint::Device(2)));
        let composed = ServiceComposer::new(&r).compose(&request(&abs)).unwrap();
        let (id, c) = composed.graph.components().next().unwrap();
        assert_eq!(c.pinned_to(), Some(DeviceId::from_index(2)));
        assert_eq!(composed.instances[0].component, id);
    }
}
