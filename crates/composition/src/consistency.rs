//! Whole-graph QoS consistency diagnosis.
//!
//! The OC algorithm *corrects* inconsistencies; this module *reports*
//! them, for tooling that wants to show the developer exactly which
//! interactions are broken and why (the "QoS consistency check to
//! discover … inconsistencies of QoS parameters between any two
//! interacting service components" of Section 1) without mutating the
//! graph.

use serde::{Deserialize, Serialize};
use std::fmt;
use ubiqos_graph::{ComponentId, ServiceGraph};
use ubiqos_model::Mismatch;

/// One inconsistent interaction in a service graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairDiagnosis {
    /// The upstream component.
    pub upstream: ComponentId,
    /// Upstream component's name.
    pub upstream_name: String,
    /// The downstream component.
    pub downstream: ComponentId,
    /// Downstream component's name.
    pub downstream_name: String,
    /// Every violated dimension.
    pub mismatches: Vec<Mismatch>,
}

impl fmt::Display for PairDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}:", self.upstream_name, self.downstream_name)?;
        for m in &self.mismatches {
            write!(f, " [{m}]")?;
        }
        Ok(())
    }
}

/// The full consistency report for a graph.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConsistencyReport {
    /// Inconsistent interactions, in edge order.
    pub inconsistent: Vec<PairDiagnosis>,
    /// Total interactions examined.
    pub examined: usize,
}

impl ConsistencyReport {
    /// Whether every interaction satisfies Eq. 1.
    pub fn is_consistent(&self) -> bool {
        self.inconsistent.is_empty()
    }

    /// Total violated dimensions across all pairs.
    pub fn mismatch_count(&self) -> usize {
        self.inconsistent.iter().map(|p| p.mismatches.len()).sum()
    }
}

impl fmt::Display for ConsistencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_consistent() {
            return write!(f, "all {} interactions are QoS consistent", self.examined);
        }
        writeln!(
            f,
            "{} of {} interactions are inconsistent:",
            self.inconsistent.len(),
            self.examined
        )?;
        for p in &self.inconsistent {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

/// Diagnoses every edge of `graph` against the "satisfy" relation,
/// without mutating anything.
pub fn diagnose(graph: &ServiceGraph) -> ConsistencyReport {
    let mut report = ConsistencyReport::default();
    for edge in graph.edges() {
        report.examined += 1;
        let upstream = graph.component(edge.from).expect("edge endpoints exist");
        let downstream = graph.component(edge.to).expect("edge endpoints exist");
        let mismatches = upstream.qos_out().mismatches(downstream.qos_in());
        if !mismatches.is_empty() {
            report.inconsistent.push(PairDiagnosis {
                upstream: edge.from,
                upstream_name: upstream.name().to_owned(),
                downstream: edge.to,
                downstream_name: downstream.name().to_owned(),
                mismatches,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_graph::ServiceComponent;
    use ubiqos_model::{QosDimension as D, QosValue, QosVector};

    fn graph_with_issue() -> ServiceGraph {
        let mut g = ServiceGraph::new();
        let a = g.add_component(
            ServiceComponent::builder("server")
                .qos_out(
                    QosVector::new()
                        .with(D::Format, QosValue::token("MPEG"))
                        .with(D::FrameRate, QosValue::exact(50.0)),
                )
                .build(),
        );
        let b = g.add_component(
            ServiceComponent::builder("player")
                .qos_in(
                    QosVector::new()
                        .with(D::Format, QosValue::token("WAV"))
                        .with(D::FrameRate, QosValue::range(10.0, 30.0)),
                )
                .build(),
        );
        g.add_edge(a, b, 1.0).unwrap();
        g
    }

    #[test]
    fn diagnoses_each_violated_dimension() {
        let g = graph_with_issue();
        let report = diagnose(&g);
        assert!(!report.is_consistent());
        assert_eq!(report.examined, 1);
        assert_eq!(report.inconsistent.len(), 1);
        assert_eq!(report.mismatch_count(), 2);
        let p = &report.inconsistent[0];
        assert_eq!(p.upstream_name, "server");
        assert_eq!(p.downstream_name, "player");
        let s = report.to_string();
        assert!(s.contains("server -> player"));
        assert!(s.contains("MPEG"));
    }

    #[test]
    fn consistent_graph_reports_clean() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(
            ServiceComponent::builder("a")
                .qos_out(QosVector::new().with(D::Format, QosValue::token("WAV")))
                .build(),
        );
        let b = g.add_component(
            ServiceComponent::builder("b")
                .qos_in(QosVector::new().with(D::Format, QosValue::token("WAV")))
                .build(),
        );
        g.add_edge(a, b, 1.0).unwrap();
        let report = diagnose(&g);
        assert!(report.is_consistent());
        assert_eq!(report.mismatch_count(), 0);
        assert!(report.to_string().contains("all 1 interactions"));
    }

    #[test]
    fn diagnosis_agrees_with_oc_postcondition() {
        use crate::oc;
        use crate::{CorrectionPolicy, TranscoderCatalog};
        let mut g = graph_with_issue();
        // Give the server an adjustable rate so OC can fully correct.
        g.component_mut(ubiqos_graph::ComponentId::from_index(0))
            .unwrap()
            .set_qos_out(
                QosVector::new()
                    .with(D::Format, QosValue::token("MPEG"))
                    .with(D::FrameRate, QosValue::exact(50.0)),
            );
        let mut g2 = g.clone();
        // Can't fix the rate without a capability: OC fails, diagnosis
        // still lists the problem.
        assert!(oc::ordered_coordination(
            &mut g2,
            &TranscoderCatalog::standard(),
            CorrectionPolicy::all()
        )
        .is_err());
        assert!(!diagnose(&g).is_consistent());
    }

    #[test]
    fn empty_graph_is_trivially_consistent() {
        let report = diagnose(&ServiceGraph::new());
        assert!(report.is_consistent());
        assert_eq!(report.examined, 0);
    }
}
