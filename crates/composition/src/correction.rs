//! Correction records and policy for the OC algorithm.

use serde::{Deserialize, Serialize};
use std::fmt;
use ubiqos_graph::ComponentId;
use ubiqos_model::{QosDimension, QosValue};

/// Which automatic corrections the composer may apply.
///
/// "In the general case, developers should decide how to correct QoS
/// inconsistencies" — the policy is how a developer scopes the composer's
/// autonomy. The default enables everything the paper describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorrectionPolicy {
    /// Retune adjustable outputs of predecessors (with upstream cascade).
    pub allow_adjustment: bool,
    /// Insert transcoders for format mismatches.
    pub allow_transcoders: bool,
    /// Insert buffers for jitter/latency performance mismatches.
    pub allow_buffers: bool,
}

impl CorrectionPolicy {
    /// All corrections enabled (the paper's behaviour).
    pub fn all() -> Self {
        CorrectionPolicy {
            allow_adjustment: true,
            allow_transcoders: true,
            allow_buffers: true,
        }
    }

    /// Check only — report inconsistencies without touching the graph.
    pub fn check_only() -> Self {
        CorrectionPolicy {
            allow_adjustment: false,
            allow_transcoders: false,
            allow_buffers: false,
        }
    }
}

impl Default for CorrectionPolicy {
    fn default() -> Self {
        Self::all()
    }
}

/// One correction the OC algorithm applied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Correction {
    /// An adjustable output was retuned to satisfy a downstream input.
    AdjustedOutput {
        /// The retuned (upstream) component.
        component: ComponentId,
        /// The dimension retuned.
        dimension: QosDimension,
        /// The new output value.
        value: QosValue,
        /// Whether the adjustment cascaded into the component's own input
        /// requirement (a passthrough dimension).
        cascaded: bool,
    },
    /// A transcoder was spliced into an edge to fix a format mismatch.
    InsertedTranscoder {
        /// The new transcoder component.
        component: ComponentId,
        /// Upstream endpoint of the original edge.
        upstream: ComponentId,
        /// Downstream endpoint of the original edge.
        downstream: ComponentId,
        /// Human-readable transcoder name (e.g. `"MPEG2WAV transcoder"`).
        name: String,
    },
    /// A buffer was spliced into an edge to absorb a jitter/latency
    /// performance mismatch.
    InsertedBuffer {
        /// The new buffer component.
        component: ComponentId,
        /// Upstream endpoint of the original edge.
        upstream: ComponentId,
        /// Downstream endpoint of the original edge.
        downstream: ComponentId,
        /// The dimension the buffer corrects.
        dimension: QosDimension,
    },
    /// An optional service was dropped because no instance was found.
    DroppedOptional {
        /// The abstract service type that was skipped.
        service_type: String,
    },
}

impl fmt::Display for Correction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Correction::AdjustedOutput {
                component,
                dimension,
                value,
                cascaded,
            } => write!(
                f,
                "adjusted {component} output {dimension} to {value}{}",
                if *cascaded {
                    " (cascaded upstream)"
                } else {
                    ""
                }
            ),
            Correction::InsertedTranscoder {
                name,
                upstream,
                downstream,
                ..
            } => write!(f, "inserted {name} between {upstream} and {downstream}"),
            Correction::InsertedBuffer {
                dimension,
                upstream,
                downstream,
                ..
            } => write!(
                f,
                "inserted {dimension} buffer between {upstream} and {downstream}"
            ),
            Correction::DroppedOptional { service_type } => {
                write!(f, "dropped optional service '{service_type}'")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_presets() {
        let all = CorrectionPolicy::all();
        assert!(all.allow_adjustment && all.allow_transcoders && all.allow_buffers);
        let none = CorrectionPolicy::check_only();
        assert!(!none.allow_adjustment && !none.allow_transcoders && !none.allow_buffers);
        assert_eq!(CorrectionPolicy::default(), all);
    }

    #[test]
    fn correction_display() {
        let c = Correction::AdjustedOutput {
            component: ComponentId::from_index(3),
            dimension: QosDimension::FrameRate,
            value: QosValue::exact(20.0),
            cascaded: true,
        };
        let s = c.to_string();
        assert!(s.contains("c3"));
        assert!(s.contains("frame-rate"));
        assert!(s.contains("cascaded"));

        let t = Correction::InsertedTranscoder {
            component: ComponentId::from_index(9),
            upstream: ComponentId::from_index(0),
            downstream: ComponentId::from_index(1),
            name: "MPEG2WAV transcoder".into(),
        };
        assert!(t.to_string().contains("MPEG2WAV"));

        let d = Correction::DroppedOptional {
            service_type: "equalizer".into(),
        };
        assert!(d.to_string().contains("equalizer"));

        let b = Correction::InsertedBuffer {
            component: ComponentId::from_index(2),
            upstream: ComponentId::from_index(0),
            downstream: ComponentId::from_index(1),
            dimension: QosDimension::Jitter,
        };
        assert!(b.to_string().contains("jitter buffer"));
    }
}
