//! The QoS degradation ladder: discrete quality levels a session walks
//! down before the runtime gives up on placing it.
//!
//! The paper treats placement as pass/fail — a session that no longer
//! fits after a §3.3 event is dropped. Multimedia applications can
//! usually do better: stream at a lower rate instead of dying. The
//! ladder makes that negotiation explicit and *discrete* (deterministic
//! and cheap to search): each rung is a factor in `(0, 1]` applied to
//! both the user's requirement vector (weakened monotonically under
//! Eq. 1 via [`ubiqos_model::weaken_requirement`]) and the abstract
//! graph's estimated stream throughputs (a lower level streams
//! proportionally less data).

use serde::{Deserialize, Serialize};
use ubiqos_graph::AbstractServiceGraph;
use ubiqos_model::{weaken_requirement, QosVector};

/// One rung of the ladder: the requirement vector and abstract graph to
/// attempt configuration with at this quality level.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationStep {
    /// The quality factor of this rung (1.0 = full quality).
    pub factor: f64,
    /// The user's requirement vector, weakened for this rung.
    pub user_qos: QosVector,
    /// The abstract graph with stream throughputs scaled for this rung.
    pub abstract_graph: AbstractServiceGraph,
}

/// A descending sequence of quality factors, starting at full quality.
///
/// The default ladder is `[1.0, 0.75, 0.5, 0.25]` — full quality plus
/// three degradation rungs. A *strict* ladder (`[1.0]` only) reproduces
/// the paper's pass/fail behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationLadder {
    levels: Vec<f64>,
}

impl Default for DegradationLadder {
    fn default() -> Self {
        DegradationLadder::new(vec![1.0, 0.75, 0.5, 0.25])
    }
}

impl DegradationLadder {
    /// Builds a ladder from descending factors in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when the levels are empty, do not start at 1.0, are not
    /// strictly descending, or leave `(0, 1]` — ladder construction is a
    /// configuration-time error.
    pub fn new(levels: Vec<f64>) -> Self {
        assert!(!levels.is_empty(), "a ladder needs at least one level");
        assert!(
            (levels[0] - 1.0).abs() < 1e-12,
            "ladders start at full quality (1.0), got {}",
            levels[0]
        );
        for pair in levels.windows(2) {
            assert!(
                pair[1] < pair[0],
                "ladder levels must strictly descend: {} then {}",
                pair[0],
                pair[1]
            );
        }
        assert!(
            levels.iter().all(|&f| f > 0.0 && f <= 1.0),
            "ladder levels must lie in (0, 1]: {levels:?}"
        );
        DegradationLadder { levels }
    }

    /// The strict single-rung ladder: full quality or nothing (the
    /// paper's original drop-on-fault behaviour).
    pub fn strict() -> Self {
        DegradationLadder::new(vec![1.0])
    }

    /// The quality factors, descending.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// The number of rungs.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the ladder has no degradation rungs (strict mode).
    pub fn is_empty(&self) -> bool {
        self.levels.len() <= 1
    }

    /// Materializes the rungs for one session: each step carries the
    /// weakened requirement vector and the throughput-scaled abstract
    /// graph to attempt configuration with, best quality first.
    pub fn steps(
        &self,
        user_qos: &QosVector,
        abstract_graph: &AbstractServiceGraph,
    ) -> Vec<DegradationStep> {
        self.levels
            .iter()
            .map(|&factor| DegradationStep {
                factor,
                user_qos: weaken_requirement(user_qos, factor),
                abstract_graph: abstract_graph.scale_throughput(factor),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_graph::AbstractComponentSpec;
    use ubiqos_model::{QosDimension, QosValue};

    fn little_graph() -> AbstractServiceGraph {
        let mut g = AbstractServiceGraph::new();
        let a = g.add_spec(AbstractComponentSpec::new("src"));
        let b = g.add_spec(AbstractComponentSpec::new("sink"));
        g.add_edge(a, b, 2.0).unwrap();
        g
    }

    #[test]
    fn default_ladder_shape() {
        let ladder = DegradationLadder::default();
        assert_eq!(ladder.levels(), &[1.0, 0.75, 0.5, 0.25]);
        assert_eq!(ladder.len(), 4);
        assert!(!ladder.is_empty());
        assert!(DegradationLadder::strict().is_empty());
    }

    #[test]
    fn steps_scale_qos_and_throughput_together() {
        let qos = QosVector::new().with(QosDimension::FrameRate, QosValue::exact(30.0));
        let steps = DegradationLadder::default().steps(&qos, &little_graph());
        assert_eq!(steps.len(), 4);
        assert_eq!(steps[0].factor, 1.0);
        // Full-quality rung: requirement weakened by 1.0 still admits the
        // original exact value; throughput untouched.
        assert!(QosVector::new()
            .with(QosDimension::FrameRate, QosValue::exact(30.0))
            .satisfies(&steps[0].user_qos));
        let (_, _, tp) = steps[0].abstract_graph.edges().next().unwrap();
        assert_eq!(tp, 2.0);
        // Half-quality rung: half the throughput, weaker requirement.
        let half = &steps[2];
        assert_eq!(half.factor, 0.5);
        let (_, _, tp) = half.abstract_graph.edges().next().unwrap();
        assert_eq!(tp, 1.0);
        assert!(QosVector::new()
            .with(QosDimension::FrameRate, QosValue::exact(16.0))
            .satisfies(&half.user_qos));
    }

    #[test]
    fn every_rung_is_weaker_than_the_previous() {
        let qos = QosVector::new().with(QosDimension::FrameRate, QosValue::range(20.0, 30.0));
        let steps = DegradationLadder::default().steps(&qos, &little_graph());
        for pair in steps.windows(2) {
            // Anything satisfying the stronger rung satisfies the weaker.
            let stronger = pair[0].user_qos.clone();
            let weaker = &pair[1].user_qos;
            for probe in [20.0, 25.0, 30.0] {
                let out = QosVector::new().with(QosDimension::FrameRate, QosValue::exact(probe));
                if out.satisfies(&stronger) {
                    assert!(out.satisfies(weaker));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly descend")]
    fn non_descending_ladders_are_rejected() {
        let _ = DegradationLadder::new(vec![1.0, 0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "start at full quality")]
    fn ladders_must_start_at_one() {
        let _ = DegradationLadder::new(vec![0.9, 0.5]);
    }
}
