//! Errors for the composition tier.

use std::error::Error;
use std::fmt;
use ubiqos_graph::GraphError;
use ubiqos_model::Mismatch;

/// Errors produced by the service composer and the OC algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum CompositionError {
    /// A mandatory service could not be discovered, and recursive
    /// composition (within the depth limit) could not synthesize it
    /// either. The user must download an instance or quit (Section 3.2).
    MissingService {
        /// The abstract service type that could not be satisfied.
        service_type: String,
        /// The recursion depth at which composition gave up.
        depth: usize,
    },
    /// A QoS inconsistency that no enabled correction could repair.
    Uncorrectable {
        /// Name of the upstream component.
        upstream: String,
        /// Name of the downstream component.
        downstream: String,
        /// The surviving mismatches.
        mismatches: Vec<Mismatch>,
    },
    /// The instantiated graph was structurally invalid.
    Graph(GraphError),
}

impl fmt::Display for CompositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompositionError::MissingService {
                service_type,
                depth,
            } => write!(
                f,
                "no instance of mandatory service '{service_type}' (recursion depth {depth})"
            ),
            CompositionError::Uncorrectable {
                upstream,
                downstream,
                mismatches,
            } => {
                write!(
                    f,
                    "uncorrectable QoS inconsistency between '{upstream}' and '{downstream}':"
                )?;
                for m in mismatches {
                    write!(f, " [{m}]")?;
                }
                Ok(())
            }
            CompositionError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for CompositionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompositionError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CompositionError {
    fn from(e: GraphError) -> Self {
        CompositionError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_model::{MismatchKind, QosDimension, QosValue};

    #[test]
    fn display_variants() {
        let missing = CompositionError::MissingService {
            service_type: "lipsync".into(),
            depth: 2,
        };
        assert!(missing.to_string().contains("lipsync"));
        assert!(missing.to_string().contains('2'));

        let uncorrectable = CompositionError::Uncorrectable {
            upstream: "server".into(),
            downstream: "player".into(),
            mismatches: vec![Mismatch {
                dimension: QosDimension::Format,
                kind: MismatchKind::TokenMismatch,
                offered: Some(QosValue::token("MPEG")),
                required: QosValue::token("WAV"),
            }],
        };
        let s = uncorrectable.to_string();
        assert!(s.contains("server"));
        assert!(s.contains("player"));
        assert!(s.contains("MPEG"));
        assert!(uncorrectable.source().is_none());

        let g = CompositionError::from(GraphError::CycleDetected);
        assert!(g.source().is_some());
    }
}
