//! # ubiqos-composition
//!
//! The **service composition tier** of the *ubiqos* reproduction of Gu &
//! Nahrstedt, ICDCS 2002 (Section 3.2). The [`ServiceComposer`] carries
//! out the paper's four protocol steps:
//!
//! 1. acquire the developer's *abstract service graph*;
//! 2. discover concrete service instances in the current environment
//!    (via [`ubiqos_discovery`]);
//! 3. check QoS consistency between interacting instances and
//!    automatically correct inconsistencies — the **Ordered Coordination
//!    (OC)** algorithm in [`oc`]: topologically sort the instantiated
//!    graph, check the "satisfy" relation in reverse topological order
//!    (preserving the client-side / user-facing QoS), and fix mismatches
//!    by retuning adjustable outputs (with upstream cascade through
//!    passthrough dimensions), inserting transcoders for format
//!    mismatches, or inserting buffers for jitter mismatches;
//! 4. emit the QoS-consistent [`ubiqos_graph::ServiceGraph`] for the
//!    distribution tier.
//!
//! Missing *optional* services are bypassed; missing *mandatory* services
//! trigger recursive composition against an [`ExpansionLibrary`] with the
//! paper's recursion depth limit of 2 (footnote 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod composer;
pub mod consistency;
pub mod correction;
pub mod degrade;
pub mod error;
pub mod library;
pub mod oc;
pub mod transcoder;

pub use composer::{ComposeRequest, ComposedApplication, InstanceUse, ServiceComposer};
pub use consistency::{diagnose, ConsistencyReport, PairDiagnosis};
pub use correction::{Correction, CorrectionPolicy};
pub use degrade::{DegradationLadder, DegradationStep};
pub use error::CompositionError;
pub use library::{ExpansionLibrary, ExpansionRule};
pub use oc::{coordination_with_order, ordered_coordination, CoordinationOrder, OcReport};
pub use transcoder::{TranscoderCatalog, TranscoderSpec};

/// The paper's recursion depth limit for composing missing services
/// (footnote 1: "we limit the depth of recursion to 2").
pub const RECURSION_LIMIT: usize = 2;
