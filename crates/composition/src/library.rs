//! Expansion rules for recursive composition.
//!
//! When a mandatory service cannot be discovered, "the service composer
//! tries to find the service graph that can perform the same task as the
//! missing service does" (Section 3.2). The [`ExpansionLibrary`] holds
//! those task-equivalence rules: a missing service type expands into a
//! chain of (still abstract) services, which are themselves resolved —
//! recursively, down to the depth limit of 2.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use ubiqos_graph::AbstractComponentSpec;

/// One task-equivalence rule: `service_type` can be realized by the
/// `chain` of services connected in sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpansionRule {
    /// The specs realizing the task, upstream to downstream.
    pub chain: Vec<AbstractComponentSpec>,
    /// Stream throughput (Mbps) on the chain's internal edges.
    pub internal_throughput: f64,
}

impl ExpansionRule {
    /// Creates a rule.
    ///
    /// # Panics
    ///
    /// Panics when `chain` is empty — an empty expansion cannot perform
    /// any task.
    pub fn new(chain: Vec<AbstractComponentSpec>, internal_throughput: f64) -> Self {
        assert!(!chain.is_empty(), "expansion chain must be non-empty");
        ExpansionRule {
            chain,
            internal_throughput,
        }
    }
}

/// The library of task-equivalence rules known to the composer.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExpansionLibrary {
    rules: BTreeMap<String, ExpansionRule>,
}

impl ExpansionLibrary {
    /// An empty library (missing mandatory services always fail).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the rule for a service type.
    pub fn add(&mut self, service_type: impl Into<String>, rule: ExpansionRule) {
        self.rules.insert(service_type.into(), rule);
    }

    /// Looks up the rule for a service type.
    pub fn rule(&self, service_type: &str) -> Option<&ExpansionRule> {
        self.rules.get(service_type)
    }

    /// The number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the library has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_lookup_replace() {
        let mut lib = ExpansionLibrary::new();
        assert!(lib.is_empty());
        lib.add(
            "media-player",
            ExpansionRule::new(
                vec![
                    AbstractComponentSpec::new("decoder"),
                    AbstractComponentSpec::new("renderer"),
                ],
                4.0,
            ),
        );
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.rule("media-player").unwrap().chain.len(), 2);
        assert!(lib.rule("other").is_none());
        lib.add(
            "media-player",
            ExpansionRule::new(vec![AbstractComponentSpec::new("all-in-one")], 1.0),
        );
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.rule("media-player").unwrap().chain.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_chain_panics() {
        let _ = ExpansionRule::new(vec![], 1.0);
    }
}
