//! The Ordered Coordination (OC) algorithm (Section 3.2, Figure 1).
//!
//! 1. topologically sort the instantiated service graph;
//! 2. check the "satisfy" relation between each node and its
//!    predecessors, in *reverse* topological order — the first nodes
//!    examined are the client-side services whose output corresponds to
//!    the user's QoS requirements, so their QoS is preserved while
//!    upstream components are adjusted;
//! 3. correct inconsistencies automatically: retune adjustable
//!    predecessor outputs (cascading upstream through passthrough
//!    dimensions), insert transcoders for type mismatches, insert buffers
//!    for performance mismatches.
//!
//! A pure adjustment pass is a single reverse sweep — O(V + E), the
//! complexity the paper claims. Structural corrections (transcoder or
//! buffer insertion) change the graph, so the sweep restarts; each
//! insertion permanently fixes one format/jitter mismatch, so the number
//! of sweeps is bounded by the number of such mismatches and the whole
//! algorithm stays polynomial.

use crate::correction::{Correction, CorrectionPolicy};
use crate::error::CompositionError;
use crate::transcoder::{TranscoderCatalog, TranscoderSpec};
use serde::{Deserialize, Serialize};
use ubiqos_graph::{topo, ComponentId, ComponentRole, ServiceComponent, ServiceGraph};
use ubiqos_model::{MediaFormat, Mismatch, Preference, QosDimension, QosValue, ResourceVector};

/// The outcome of a successful OC run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OcReport {
    /// Corrections applied, in application order.
    pub corrections: Vec<Correction>,
    /// Number of (predecessor, node) consistency checks performed.
    pub checks: usize,
    /// Number of reverse sweeps (1 unless components were inserted).
    pub passes: usize,
}

impl OcReport {
    /// Whether the graph was already fully consistent.
    pub fn was_consistent(&self) -> bool {
        self.corrections.is_empty()
    }
}

/// The order in which nodes are examined during coordination.
///
/// The paper's choice is [`CoordinationOrder::Reverse`]; `Forward` exists
/// as an ablation demonstrating *why*: checking downstream-first lets a
/// constraint discovered at the client cascade through the whole upstream
/// path within a single O(V+E) sweep, whereas the forward order keeps
/// re-breaking pairs it already checked and needs up to depth-many sweeps
/// to converge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoordinationOrder {
    /// Reverse topological order (the paper's Ordered Coordination):
    /// client-side nodes first, preserving the user's QoS.
    Reverse,
    /// Topological order (sources first) — the ablation.
    Forward,
}

/// Runs Ordered Coordination on `graph`, mutating it into a QoS-consistent
/// graph.
///
/// # Errors
///
/// Returns [`CompositionError::Uncorrectable`] when a mismatch survives
/// every correction the `policy` allows, and propagates graph errors from
/// structurally invalid inputs (e.g. cycles in a hand-patched graph).
pub fn ordered_coordination(
    graph: &mut ServiceGraph,
    catalog: &TranscoderCatalog,
    policy: CorrectionPolicy,
) -> Result<OcReport, CompositionError> {
    coordination_with_order(graph, catalog, policy, CoordinationOrder::Reverse)
}

/// Runs coordination with an explicit examination order (see
/// [`CoordinationOrder`]). The `Reverse` variant is the paper's
/// algorithm; `Forward` iterates sweeps to a fixpoint and reports how
/// many it needed in [`OcReport::passes`].
///
/// # Errors
///
/// As [`ordered_coordination`].
pub fn coordination_with_order(
    graph: &mut ServiceGraph,
    catalog: &TranscoderCatalog,
    policy: CorrectionPolicy,
    order: CoordinationOrder,
) -> Result<OcReport, CompositionError> {
    let mut report = OcReport::default();
    // Each structural insertion fixes one mismatch for good, and each
    // forward sweep pushes constraints at least one level upstream; this
    // bound is generous enough that only a logic bug could exceed it.
    let max_passes = 2 * (graph.component_count() + graph.edge_count()) + 4;

    'sweeps: loop {
        report.passes += 1;
        if report.passes > max_passes {
            return Err(CompositionError::Uncorrectable {
                upstream: "<internal>".into(),
                downstream: "<internal>".into(),
                mismatches: Vec::new(),
            });
        }
        let node_order = match order {
            CoordinationOrder::Reverse => topo::reverse_topological_sort(graph)?,
            CoordinationOrder::Forward => topo::topological_sort(graph)?,
        };
        let corrections_before = report.corrections.len();
        for node in node_order {
            let preds: Vec<ComponentId> = graph.predecessors(node).to_vec();
            for pred in preds {
                report.checks += 1;
                let structural = reconcile_pair(graph, catalog, policy, pred, node, &mut report)?;
                if structural {
                    // The graph changed shape; restart the sweep so the
                    // new component is itself checked.
                    continue 'sweeps;
                }
            }
        }
        match order {
            // The reverse order converges in a single adjustment sweep —
            // downstream constraints have already cascaded by the time a
            // node's own inputs are examined.
            CoordinationOrder::Reverse => return Ok(report),
            // The forward order may have broken pairs it checked earlier;
            // sweep again until a sweep applies no corrections.
            CoordinationOrder::Forward => {
                if report.corrections.len() == corrections_before {
                    return Ok(report);
                }
            }
        }
    }
}

/// Checks one (pred → node) interaction and corrects it in place.
///
/// Returns `true` when a component was inserted (sweep must restart).
fn reconcile_pair(
    graph: &mut ServiceGraph,
    catalog: &TranscoderCatalog,
    policy: CorrectionPolicy,
    pred: ComponentId,
    node: ComponentId,
    report: &mut OcReport,
) -> Result<bool, CompositionError> {
    loop {
        let required = graph.component(node)?.qos_in().clone();
        let offered = graph.component(pred)?.qos_out().clone();
        let mismatches = offered.mismatches(&required);
        let Some(m) = mismatches.first().cloned() else {
            return Ok(false);
        };

        // Correction 1: retune the predecessor's adjustable output. The
        // value must satisfy *every* successor of `pred` that constrains
        // this dimension (a node checked earlier in the reverse order must
        // not be broken by a later adjustment).
        if policy.allow_adjustment {
            if let Some(value) = admissible_adjustment(graph, pred, &m.dimension)? {
                let cascaded = graph.component(pred)?.passthrough().contains(&m.dimension);
                graph
                    .component_mut(pred)?
                    .adjust_output(&m.dimension, value.clone())
                    .expect("value chosen inside capability");
                report.corrections.push(Correction::AdjustedOutput {
                    component: pred,
                    dimension: m.dimension.clone(),
                    value,
                    cascaded,
                });
                // Re-examine the pair: other dimensions may still mismatch.
                continue;
            }
        }

        // Correction 2: transcoder insertion for format mismatches.
        if policy.allow_transcoders && m.dimension == QosDimension::Format {
            if let Some(inserted) = insert_transcoder(graph, catalog, pred, node, &m)? {
                report.corrections.push(inserted);
                return Ok(true);
            }
        }

        // Correction 3: buffer insertion for jitter/latency performance
        // mismatches (the offered delay/jitter exceeds the requirement).
        if policy.allow_buffers
            && matches!(m.dimension, QosDimension::Jitter | QosDimension::Latency)
            && m.required.is_numeric()
        {
            let inserted = insert_buffer(graph, pred, node, &m)?;
            report.corrections.push(inserted);
            return Ok(true);
        }

        return Err(CompositionError::Uncorrectable {
            upstream: graph.component(pred)?.name().to_owned(),
            downstream: graph.component(node)?.name().to_owned(),
            mismatches,
        });
    }
}

/// The best value `pred` can set its `dim` output to such that every
/// downstream requirement on `dim` is satisfied, or `None` when `pred`
/// isn't adjustable on `dim` or no common value exists.
fn admissible_adjustment(
    graph: &ServiceGraph,
    pred: ComponentId,
    dim: &QosDimension,
) -> Result<Option<QosValue>, CompositionError> {
    let component = graph.component(pred)?;
    let Some(capability) = component.capabilities().get(dim) else {
        return Ok(None);
    };
    let mut admissible = capability.clone();
    for &succ in graph.successors(pred) {
        if let Some(req) = graph.component(succ)?.qos_in().get(dim) {
            match admissible.intersect(req) {
                Some(narrowed) => admissible = narrowed,
                None => return Ok(None),
            }
        }
    }
    let pref = if dim.higher_is_better() {
        Preference::Highest
    } else {
        Preference::Lowest
    };
    Ok(admissible.pick(pref))
}

/// Splices a transcoder into `pred -> node` when the catalog has a
/// conversion from an offered format to a required format.
fn insert_transcoder(
    graph: &mut ServiceGraph,
    catalog: &TranscoderCatalog,
    pred: ComponentId,
    node: ComponentId,
    mismatch: &Mismatch,
) -> Result<Option<Correction>, CompositionError> {
    let offered_formats: Vec<MediaFormat> = match &mismatch.offered {
        Some(QosValue::Token(t)) => vec![t.parse().expect("infallible")],
        Some(QosValue::TokenSet(set)) => {
            set.iter().map(|t| t.parse().expect("infallible")).collect()
        }
        _ => return Ok(None),
    };
    let target_formats: Vec<MediaFormat> = match &mismatch.required {
        QosValue::Token(t) => vec![t.parse().expect("infallible")],
        QosValue::TokenSet(set) => set.iter().map(|t| t.parse().expect("infallible")).collect(),
        _ => return Ok(None),
    };
    // Prefer a direct converter; fall back to the shortest chain (e.g.
    // H261 → JPEG might go via an intermediate format).
    let chain: Vec<TranscoderSpec> = match target_formats
        .iter()
        .find_map(|to| catalog.find_any(&offered_formats, to))
    {
        Some(direct) => vec![direct.clone()],
        None => {
            let Some(chain) = target_formats
                .iter()
                .find_map(|to| catalog.find_path(&offered_formats, to))
            else {
                return Ok(None);
            };
            if chain.is_empty() {
                return Ok(None);
            }
            chain.into_iter().cloned().collect()
        }
    };

    let mut upstream = pred;
    let mut upstream_out = graph.component(pred)?.qos_out().clone();
    let mut throughput = graph
        .edge_throughput(pred, node)
        .expect("reconciling an existing edge");
    let mut first_name = String::new();
    let mut first_mid = None;
    for spec in &chain {
        let component = spec.instantiate(&upstream_out);
        if first_mid.is_none() {
            first_name = component.name().to_owned();
        }
        let out_throughput = throughput * spec.bandwidth_factor;
        let mid = graph.split_edge(upstream, node, component, throughput, out_throughput)?;
        if first_mid.is_none() {
            first_mid = Some(mid);
        }
        upstream_out = graph.component(mid)?.qos_out().clone();
        throughput = out_throughput;
        upstream = mid;
    }
    Ok(Some(Correction::InsertedTranscoder {
        component: first_mid.expect("chain is non-empty"),
        upstream: pred,
        downstream: node,
        name: if chain.len() == 1 {
            first_name
        } else {
            format!("{first_name} (+{} more)", chain.len() - 1)
        },
    }))
}

/// Splices a smoothing buffer into `pred -> node` for a jitter/latency
/// mismatch. The buffer's memory footprint scales with the stream
/// throughput it must absorb.
fn insert_buffer(
    graph: &mut ServiceGraph,
    pred: ComponentId,
    node: ComponentId,
    mismatch: &Mismatch,
) -> Result<Correction, CompositionError> {
    let throughput = graph
        .edge_throughput(pred, node)
        .expect("reconciling an existing edge");
    let achieved = mismatch
        .required
        .pick(Preference::Lowest)
        .expect("numeric requirement always picks");

    let upstream_out = graph.component(pred)?.qos_out().clone();
    let mut qos_out = upstream_out.clone();
    qos_out.set(mismatch.dimension.clone(), achieved);
    let mut builder = ServiceComponent::builder(format!("{} buffer", mismatch.dimension))
        .role(ComponentRole::Processor)
        // One second of stream at `throughput` Mbps is throughput/8 MB;
        // add a small fixed overhead.
        .resources(ResourceVector::mem_cpu(1.0 + throughput / 8.0, 2.0))
        .qos_out(qos_out);
    for (dim, value) in upstream_out.iter() {
        if dim != &mismatch.dimension && !value.is_token() {
            builder = builder
                .capability(dim.clone(), QosValue::range(0.0, 1e9))
                .passthrough(dim.clone());
        }
    }
    let mid = graph.split_edge(pred, node, builder.build(), throughput, throughput)?;
    Ok(Correction::InsertedBuffer {
        component: mid,
        upstream: pred,
        downstream: node,
        dimension: mismatch.dimension.clone(),
    })
}

/// Verifies that every edge of `graph` satisfies the "satisfy" relation —
/// the postcondition of a successful OC run.
pub fn is_consistent(graph: &ServiceGraph) -> bool {
    graph.edges().all(|e| {
        let out = graph.component(e.from).expect("edge endpoints exist");
        let inp = graph.component(e.to).expect("edge endpoints exist");
        out.qos_out().satisfies(inp.qos_in())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_model::QosDimension as D;
    use ubiqos_model::QosVector;

    fn source(fmt: &str, fps: f64, cap: (f64, f64)) -> ServiceComponent {
        ServiceComponent::builder("server")
            .role(ComponentRole::Source)
            .qos_out(
                QosVector::new()
                    .with(D::Format, QosValue::token(fmt))
                    .with(D::FrameRate, QosValue::exact(fps)),
            )
            .capability(D::FrameRate, QosValue::range(cap.0, cap.1))
            .resources(ResourceVector::mem_cpu(32.0, 20.0))
            .build()
    }

    fn sink(fmt: &str, fps: (f64, f64)) -> ServiceComponent {
        ServiceComponent::builder("player")
            .role(ComponentRole::Sink)
            .qos_in(
                QosVector::new()
                    .with(D::Format, QosValue::token(fmt))
                    .with(D::FrameRate, QosValue::range(fps.0, fps.1)),
            )
            .resources(ResourceVector::mem_cpu(8.0, 10.0))
            .build()
    }

    #[test]
    fn consistent_graph_needs_no_corrections() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(source("WAV", 20.0, (5.0, 40.0)));
        let b = g.add_component(sink("WAV", (10.0, 30.0)));
        g.add_edge(a, b, 1.0).unwrap();
        let report = ordered_coordination(
            &mut g,
            &TranscoderCatalog::standard(),
            CorrectionPolicy::all(),
        )
        .unwrap();
        assert!(report.was_consistent());
        assert_eq!(report.passes, 1);
        assert!(report.checks >= 1);
        assert!(is_consistent(&g));
    }

    #[test]
    fn adjusts_rate_mismatch() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(source("WAV", 50.0, (5.0, 60.0))); // too fast
        let b = g.add_component(sink("WAV", (10.0, 30.0)));
        g.add_edge(a, b, 1.0).unwrap();
        let report = ordered_coordination(
            &mut g,
            &TranscoderCatalog::standard(),
            CorrectionPolicy::all(),
        )
        .unwrap();
        assert_eq!(report.corrections.len(), 1);
        assert!(matches!(
            &report.corrections[0],
            Correction::AdjustedOutput { dimension: D::FrameRate, value, .. }
                if *value == QosValue::exact(30.0)
        ));
        assert!(is_consistent(&g));
        // The best admissible value was chosen (range max for frame rate).
        assert_eq!(
            g.component(a).unwrap().qos_out().get(&D::FrameRate),
            Some(&QosValue::exact(30.0))
        );
    }

    #[test]
    fn inserts_mpeg2wav_transcoder_like_figure3() {
        // The paper's PDA handoff: MPEG server feeding a WAV-only player.
        let mut g = ServiceGraph::new();
        let a = g.add_component(source("MPEG", 40.0, (5.0, 40.0)));
        let b = g.add_component(sink("WAV", (10.0, 40.0)));
        g.add_edge(a, b, 1.4).unwrap();
        let report = ordered_coordination(
            &mut g,
            &TranscoderCatalog::standard(),
            CorrectionPolicy::all(),
        )
        .unwrap();
        assert_eq!(g.component_count(), 3);
        let t = report
            .corrections
            .iter()
            .find_map(|c| match c {
                Correction::InsertedTranscoder {
                    component, name, ..
                } => Some((*component, name.clone())),
                _ => None,
            })
            .expect("a transcoder was inserted");
        assert_eq!(t.1, "MPEG2WAV transcoder");
        assert!(is_consistent(&g));
        // Decoded WAV stream is wider than the MPEG input.
        assert!(g.edge_throughput(t.0, b).unwrap() > g.edge_throughput(a, t.0).unwrap());
        assert!(report.passes >= 2, "insertion restarts the sweep");
    }

    #[test]
    fn cascades_adjustment_upstream_through_passthrough() {
        // gateway forwards whatever rate it is asked to produce; the
        // player only takes <= 25 fps, so the server (checked later in
        // reverse order) must also slow to 25.
        let mut g = ServiceGraph::new();
        let server = g.add_component(source("WAV", 40.0, (5.0, 60.0)));
        let gateway = g.add_component(
            ServiceComponent::builder("gateway")
                .qos_in(
                    QosVector::new()
                        .with(D::Format, QosValue::token("WAV"))
                        .with(D::FrameRate, QosValue::exact(40.0)),
                )
                .qos_out(
                    QosVector::new()
                        .with(D::Format, QosValue::token("WAV"))
                        .with(D::FrameRate, QosValue::exact(40.0)),
                )
                .capability(D::FrameRate, QosValue::range(0.0, 100.0))
                .passthrough(D::FrameRate)
                .resources(ResourceVector::mem_cpu(4.0, 5.0))
                .build(),
        );
        let player = g.add_component(sink("WAV", (10.0, 25.0)));
        g.add_edge(server, gateway, 1.0).unwrap();
        g.add_edge(gateway, player, 1.0).unwrap();
        let report = ordered_coordination(
            &mut g,
            &TranscoderCatalog::standard(),
            CorrectionPolicy::all(),
        )
        .unwrap();
        assert!(is_consistent(&g));
        // Gateway retuned to 25 (cascaded), then server retuned to 25.
        assert_eq!(
            g.component(gateway).unwrap().qos_out().get(&D::FrameRate),
            Some(&QosValue::exact(25.0))
        );
        assert_eq!(
            g.component(server).unwrap().qos_out().get(&D::FrameRate),
            Some(&QosValue::exact(25.0))
        );
        let cascaded = report
            .corrections
            .iter()
            .any(|c| matches!(c, Correction::AdjustedOutput { cascaded: true, .. }));
        assert!(cascaded);
        assert_eq!(report.passes, 1, "pure adjustments need a single sweep");
    }

    #[test]
    fn adjustment_respects_all_successors() {
        // One producer feeding two players with overlapping ranges: the
        // chosen rate must satisfy both.
        let mut g = ServiceGraph::new();
        let srv = g.add_component(source("WAV", 50.0, (0.0, 100.0)));
        let p1 = g.add_component(sink("WAV", (10.0, 30.0)));
        let p2 = g.add_component(sink("WAV", (20.0, 45.0)));
        g.add_edge(srv, p1, 1.0).unwrap();
        g.add_edge(srv, p2, 1.0).unwrap();
        ordered_coordination(
            &mut g,
            &TranscoderCatalog::standard(),
            CorrectionPolicy::all(),
        )
        .unwrap();
        assert!(is_consistent(&g));
        assert_eq!(
            g.component(srv).unwrap().qos_out().get(&D::FrameRate),
            Some(&QosValue::exact(30.0)),
            "30 is the highest rate satisfying both [10,30] and [20,45]"
        );
    }

    #[test]
    fn conflicting_successors_are_uncorrectable() {
        let mut g = ServiceGraph::new();
        let srv = g.add_component(source("WAV", 50.0, (0.0, 100.0)));
        let p1 = g.add_component(sink("WAV", (10.0, 20.0)));
        let p2 = g.add_component(sink("WAV", (30.0, 45.0)));
        g.add_edge(srv, p1, 1.0).unwrap();
        g.add_edge(srv, p2, 1.0).unwrap();
        let err = ordered_coordination(
            &mut g,
            &TranscoderCatalog::standard(),
            CorrectionPolicy::all(),
        )
        .unwrap_err();
        assert!(matches!(err, CompositionError::Uncorrectable { .. }));
    }

    #[test]
    fn inserts_jitter_buffer() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(
            ServiceComponent::builder("wan-source")
                .qos_out(
                    QosVector::new()
                        .with(D::Format, QosValue::token("WAV"))
                        .with(D::Jitter, QosValue::exact(80.0)),
                )
                .resources(ResourceVector::mem_cpu(8.0, 5.0))
                .build(),
        );
        let b = g.add_component(
            ServiceComponent::builder("player")
                .qos_in(
                    QosVector::new()
                        .with(D::Format, QosValue::token("WAV"))
                        .with(D::Jitter, QosValue::range(0.0, 20.0)),
                )
                .resources(ResourceVector::mem_cpu(8.0, 5.0))
                .build(),
        );
        g.add_edge(a, b, 8.0).unwrap();
        let report = ordered_coordination(
            &mut g,
            &TranscoderCatalog::standard(),
            CorrectionPolicy::all(),
        )
        .unwrap();
        assert!(is_consistent(&g));
        let buf = report
            .corrections
            .iter()
            .find_map(|c| match c {
                Correction::InsertedBuffer {
                    component,
                    dimension,
                    ..
                } => Some((*component, dimension.clone())),
                _ => None,
            })
            .expect("buffer inserted");
        assert_eq!(buf.1, D::Jitter);
        let buffer = g.component(buf.0).unwrap();
        assert!(buffer.name().contains("buffer"));
        // Memory scales with the 8 Mbps stream: 1 + 8/8 = 2 MB.
        assert_eq!(buffer.resources().amounts()[0], 2.0);
        // Buffer smooths to the best (lowest) admissible jitter.
        assert_eq!(
            buffer.qos_out().get(&D::Jitter),
            Some(&QosValue::exact(0.0))
        );
    }

    #[test]
    fn check_only_policy_reports_without_mutating() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(source("MPEG", 40.0, (5.0, 40.0)));
        let b = g.add_component(sink("WAV", (10.0, 40.0)));
        g.add_edge(a, b, 1.4).unwrap();
        let before = g.clone();
        let err = ordered_coordination(
            &mut g,
            &TranscoderCatalog::standard(),
            CorrectionPolicy::check_only(),
        )
        .unwrap_err();
        assert!(matches!(err, CompositionError::Uncorrectable { .. }));
        assert_eq!(g, before, "check-only never mutates");
    }

    #[test]
    fn unconvertible_format_is_uncorrectable() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(source("H261", 25.0, (5.0, 30.0)));
        let b = g.add_component(sink("WAV", (10.0, 30.0)));
        g.add_edge(a, b, 1.0).unwrap();
        let err = ordered_coordination(
            &mut g,
            &TranscoderCatalog::standard(),
            CorrectionPolicy::all(),
        )
        .unwrap_err();
        match err {
            CompositionError::Uncorrectable { mismatches, .. } => {
                assert!(mismatches.iter().any(|m| m.dimension == D::Format));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn inserts_a_transcoder_chain_when_no_direct_converter_exists() {
        // Catalog: MP3 -> WAV and WAV -> MPEG, but no MP3 -> MPEG.
        let mut catalog = TranscoderCatalog::new();
        catalog.add(crate::transcoder::TranscoderSpec::new(
            ubiqos_model::MediaFormat::Mp3,
            ubiqos_model::MediaFormat::Wav,
            ResourceVector::mem_cpu(2.0, 4.0),
            5.0,
        ));
        catalog.add(crate::transcoder::TranscoderSpec::new(
            ubiqos_model::MediaFormat::Wav,
            ubiqos_model::MediaFormat::Mpeg,
            ResourceVector::mem_cpu(3.0, 6.0),
            0.25,
        ));
        let mut g = ServiceGraph::new();
        let a = g.add_component(source("MP3", 30.0, (5.0, 40.0)));
        let b = g.add_component(sink("MPEG", (10.0, 40.0)));
        g.add_edge(a, b, 0.4).unwrap();
        let report = ordered_coordination(&mut g, &catalog, CorrectionPolicy::all()).unwrap();
        assert!(is_consistent(&g));
        assert_eq!(g.component_count(), 4, "two transcoders spliced in");
        let t = report
            .corrections
            .iter()
            .find_map(|c| match c {
                Correction::InsertedTranscoder { name, .. } => Some(name.clone()),
                _ => None,
            })
            .unwrap();
        assert!(t.contains("+1 more"), "chain reported: {t}");
        // Bandwidth compounds along the chain: 0.4 * 5.0 * 0.25 = 0.5 at
        // the sink edge.
        let sink_pred = g.predecessors(b)[0];
        assert!((g.edge_throughput(sink_pred, b).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn transcoder_then_adjustment_compose() {
        // MPEG at 50fps feeding a WAV player limited to 30fps: needs both
        // a transcoder and a rate adjustment cascading through it.
        let mut g = ServiceGraph::new();
        let a = g.add_component(source("MPEG", 50.0, (5.0, 60.0)));
        let b = g.add_component(sink("WAV", (10.0, 30.0)));
        g.add_edge(a, b, 1.4).unwrap();
        let report = ordered_coordination(
            &mut g,
            &TranscoderCatalog::standard(),
            CorrectionPolicy::all(),
        )
        .unwrap();
        assert!(is_consistent(&g));
        assert!(report.corrections.len() >= 2);
        assert_eq!(
            g.component(a).unwrap().qos_out().get(&D::FrameRate),
            Some(&QosValue::exact(30.0)),
            "rate constraint reached the source through the transcoder"
        );
    }

    /// Builds a pure-adjustment chain of `depth` forwarding components
    /// whose sink narrows the rate, for order-ablation comparisons.
    fn cascading_chain(depth: usize) -> ServiceGraph {
        let mut g = ServiceGraph::new();
        let mk = |i: usize| {
            ServiceComponent::builder(format!("hop{i}"))
                .qos_in(
                    QosVector::new()
                        .with(D::Format, QosValue::token("WAV"))
                        .with(D::FrameRate, QosValue::range(1.0, 100.0)),
                )
                .qos_out(
                    QosVector::new()
                        .with(D::Format, QosValue::token("WAV"))
                        .with(D::FrameRate, QosValue::exact(90.0)),
                )
                .capability(D::FrameRate, QosValue::range(1.0, 100.0))
                .passthrough(D::FrameRate)
                .build()
        };
        let ids: Vec<ComponentId> = (0..depth).map(|i| g.add_component(mk(i))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1.0).unwrap();
        }
        g.component_mut(ids[depth - 1]).unwrap().set_qos_in(
            QosVector::new()
                .with(D::Format, QosValue::token("WAV"))
                .with(D::FrameRate, QosValue::range(1.0, 30.0)),
        );
        g
    }

    #[test]
    fn reverse_order_converges_in_one_pass_forward_needs_depth() {
        let depth = 12;
        let catalog = TranscoderCatalog::standard();

        let mut reverse_graph = cascading_chain(depth);
        let reverse = coordination_with_order(
            &mut reverse_graph,
            &catalog,
            CorrectionPolicy::all(),
            CoordinationOrder::Reverse,
        )
        .unwrap();
        assert!(is_consistent(&reverse_graph));
        assert_eq!(reverse.passes, 1, "the paper's order: one sweep");

        let mut forward_graph = cascading_chain(depth);
        let forward = coordination_with_order(
            &mut forward_graph,
            &catalog,
            CorrectionPolicy::all(),
            CoordinationOrder::Forward,
        )
        .unwrap();
        assert!(is_consistent(&forward_graph), "forward still converges");
        assert!(
            forward.passes > reverse.passes,
            "forward needed {} sweeps vs reverse {}",
            forward.passes,
            reverse.passes
        );
        assert!(
            forward.checks > reverse.checks,
            "forward re-examined pairs it had already fixed"
        );
        // Both end at the sink-driven 30 fps operating point.
        for g in [&reverse_graph, &forward_graph] {
            let source = g.component_ids().next().unwrap();
            assert_eq!(
                g.component(source).unwrap().qos_out().get(&D::FrameRate),
                Some(&QosValue::exact(30.0))
            );
        }
    }

    #[test]
    fn figure1_structure_composes() {
        // A 9-node non-linear graph in the spirit of Figure 1, all WAV,
        // with assorted adjustable rates.
        let mut g = ServiceGraph::new();
        let mk = |i: usize, lo: f64, hi: f64, out: f64| {
            ServiceComponent::builder(format!("n{i}"))
                .qos_in(
                    QosVector::new()
                        .with(D::Format, QosValue::token("WAV"))
                        .with(D::FrameRate, QosValue::range(lo, hi)),
                )
                .qos_out(
                    QosVector::new()
                        .with(D::Format, QosValue::token("WAV"))
                        .with(D::FrameRate, QosValue::exact(out)),
                )
                .capability(D::FrameRate, QosValue::range(1.0, 100.0))
                .passthrough(D::FrameRate)
                .resources(ResourceVector::mem_cpu(4.0, 4.0))
                .build()
        };
        let n: Vec<ComponentId> = (1..=9)
            .map(|i| g.add_component(mk(i, 5.0, 60.0 - i as f64, 50.0)))
            .collect();
        let idx = |i: usize| n[i - 1];
        for (u, v) in [
            (3, 1),
            (1, 2),
            (1, 8),
            (9, 4),
            (4, 5),
            (5, 2),
            (5, 8),
            (5, 7),
            (9, 8),
            (2, 7),
            (8, 7),
            (8, 6),
        ] {
            g.add_edge(idx(u), idx(v), 1.0).unwrap();
        }
        let report = ordered_coordination(
            &mut g,
            &TranscoderCatalog::standard(),
            CorrectionPolicy::all(),
        )
        .unwrap();
        assert!(is_consistent(&g));
        assert_eq!(report.passes, 1, "adjustments only: one sweep");
    }
}
