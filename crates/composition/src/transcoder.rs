//! Transcoder catalog — the components the OC algorithm can insert "in
//! the middle to solve the type mismatches".

use serde::{Deserialize, Serialize};
use ubiqos_graph::{ComponentRole, ServiceComponent};
use ubiqos_model::{MediaFormat, QosDimension, QosValue, ResourceVector};

/// One available transcoder kind: converts streams of `from` format into
/// `to` format at a resource cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TranscoderSpec {
    /// Input format.
    pub from: MediaFormat,
    /// Output format.
    pub to: MediaFormat,
    /// End-system resources the transcoder needs (benchmark units).
    pub resources: ResourceVector,
    /// Output bandwidth as a multiple of input bandwidth (e.g. an
    /// MPEG→WAV decoder expands the stream, factor > 1; an encoder
    /// compresses, factor < 1).
    pub bandwidth_factor: f64,
}

impl TranscoderSpec {
    /// Creates a spec.
    pub fn new(
        from: MediaFormat,
        to: MediaFormat,
        resources: ResourceVector,
        bandwidth_factor: f64,
    ) -> Self {
        TranscoderSpec {
            from,
            to,
            resources,
            bandwidth_factor,
        }
    }

    /// The component name used for inserted instances, e.g. `"MPEG2WAV
    /// transcoder"` (the name the paper's Figure 3 uses for the
    /// MPEG-to-WAV correction).
    pub fn component_name(&self) -> String {
        format!("{}2{} transcoder", self.from, self.to)
    }

    /// Instantiates a graph component for this transcoder.
    ///
    /// The component requires `from` on input, emits `to` on output, and
    /// passes every *other* dimension through: its non-format output QoS
    /// mirrors `upstream_out`, with broad capabilities plus passthrough
    /// declared so later OC adjustments cascade straight through it.
    pub fn instantiate(&self, upstream_out: &ubiqos_model::QosVector) -> ServiceComponent {
        let mut builder = ServiceComponent::builder(self.component_name())
            .role(ComponentRole::Processor)
            .resources(self.resources.clone());
        let mut qos_in = ubiqos_model::QosVector::new();
        let mut qos_out = ubiqos_model::QosVector::new();
        qos_in.set(QosDimension::Format, QosValue::token(self.from.as_token()));
        qos_out.set(QosDimension::Format, QosValue::token(self.to.as_token()));
        for (dim, value) in upstream_out.iter() {
            if *dim == QosDimension::Format {
                continue;
            }
            qos_out.set(dim.clone(), value.clone());
            if !value.is_token() {
                // Numeric dimensions are forwarded 1:1 and freely tunable.
                builder = builder
                    .capability(dim.clone(), QosValue::range(0.0, 1e9))
                    .passthrough(dim.clone());
            }
        }
        builder.qos_in(qos_in).qos_out(qos_out).build()
    }
}

/// The set of transcoders available in the current environment.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TranscoderCatalog {
    specs: Vec<TranscoderSpec>,
}

impl TranscoderCatalog {
    /// An empty catalog (no type-mismatch corrections possible).
    pub fn new() -> Self {
        Self::default()
    }

    /// A catalog with the conversions the paper's scenarios need:
    /// MPEG↔WAV audio, MPEG→JPEG video, MP3→WAV and PCM→WAV audio.
    pub fn standard() -> Self {
        use MediaFormat::*;
        let mut c = TranscoderCatalog::new();
        // Decoders expand bandwidth; encoders compress.
        c.add(TranscoderSpec::new(
            Mpeg,
            Wav,
            ResourceVector::mem_cpu(6.0, 15.0),
            4.0,
        ));
        c.add(TranscoderSpec::new(
            Wav,
            Mpeg,
            ResourceVector::mem_cpu(8.0, 25.0),
            0.25,
        ));
        c.add(TranscoderSpec::new(
            Mpeg,
            Jpeg,
            ResourceVector::mem_cpu(10.0, 20.0),
            2.0,
        ));
        c.add(TranscoderSpec::new(
            Mp3,
            Wav,
            ResourceVector::mem_cpu(4.0, 10.0),
            5.0,
        ));
        c.add(TranscoderSpec::new(
            Pcm,
            Wav,
            ResourceVector::mem_cpu(2.0, 3.0),
            1.0,
        ));
        c
    }

    /// Registers a transcoder kind. Later registrations win conflicts.
    pub fn add(&mut self, spec: TranscoderSpec) {
        self.specs
            .retain(|s| !(s.from == spec.from && s.to == spec.to));
        self.specs.push(spec);
    }

    /// Finds a direct conversion, if one is available.
    pub fn find(&self, from: &MediaFormat, to: &MediaFormat) -> Option<&TranscoderSpec> {
        self.specs.iter().find(|s| &s.from == from && &s.to == to)
    }

    /// Finds a conversion from any of `from_options` to `to` — used when
    /// the upstream component offers a token *set*.
    pub fn find_any(
        &self,
        from_options: &[MediaFormat],
        to: &MediaFormat,
    ) -> Option<&TranscoderSpec> {
        from_options.iter().find_map(|f| self.find(f, to))
    }

    /// Finds the *shortest chain* of transcoders converting any of
    /// `from_options` into `to`, for format pairs with no direct
    /// converter (e.g. MP3 → MPEG via WAV). Breadth-first over the
    /// format-conversion graph; returns the specs in pipeline order, or
    /// `None` when no chain exists.
    pub fn find_path(
        &self,
        from_options: &[MediaFormat],
        to: &MediaFormat,
    ) -> Option<Vec<&TranscoderSpec>> {
        use std::collections::{BTreeMap, VecDeque};
        if from_options.contains(to) {
            return Some(Vec::new());
        }
        // BFS frontier of formats, remembering the spec that reached each.
        let mut reached: BTreeMap<&MediaFormat, Option<&TranscoderSpec>> = BTreeMap::new();
        let mut queue: VecDeque<&MediaFormat> = VecDeque::new();
        for f in from_options {
            reached.entry(f).or_insert(None);
            queue.push_back(f);
        }
        while let Some(current) = queue.pop_front() {
            for spec in self.specs.iter().filter(|s| &s.from == current) {
                if !reached.contains_key(&spec.to) {
                    reached.insert(&spec.to, Some(spec));
                    if &spec.to == to {
                        // Walk back to a starting format.
                        let mut chain = Vec::new();
                        let mut cursor = &spec.to;
                        while let Some(Some(step)) = reached.get(cursor) {
                            chain.push(*step);
                            cursor = &step.from;
                        }
                        chain.reverse();
                        return Some(chain);
                    }
                    queue.push_back(&spec.to);
                }
            }
        }
        None
    }

    /// The number of registered kinds.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_model::QosVector;

    #[test]
    fn standard_catalog_has_the_paper_conversion() {
        let c = TranscoderCatalog::standard();
        let t = c.find(&MediaFormat::Mpeg, &MediaFormat::Wav).unwrap();
        assert_eq!(t.component_name(), "MPEG2WAV transcoder");
        assert!(t.bandwidth_factor > 1.0, "decoding expands the stream");
        assert!(c.find(&MediaFormat::Wav, &MediaFormat::Jpeg).is_none());
    }

    #[test]
    fn add_replaces_existing_pair() {
        let mut c = TranscoderCatalog::new();
        assert!(c.is_empty());
        c.add(TranscoderSpec::new(
            MediaFormat::Mpeg,
            MediaFormat::Wav,
            ResourceVector::mem_cpu(1.0, 1.0),
            2.0,
        ));
        c.add(TranscoderSpec::new(
            MediaFormat::Mpeg,
            MediaFormat::Wav,
            ResourceVector::mem_cpu(9.0, 9.0),
            3.0,
        ));
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.find(&MediaFormat::Mpeg, &MediaFormat::Wav)
                .unwrap()
                .bandwidth_factor,
            3.0
        );
    }

    #[test]
    fn find_path_direct_and_chained() {
        let mut c = TranscoderCatalog::new();
        c.add(TranscoderSpec::new(
            MediaFormat::Mp3,
            MediaFormat::Wav,
            ResourceVector::mem_cpu(1.0, 1.0),
            5.0,
        ));
        c.add(TranscoderSpec::new(
            MediaFormat::Wav,
            MediaFormat::Mpeg,
            ResourceVector::mem_cpu(1.0, 1.0),
            0.25,
        ));
        // Direct hop.
        let p = c.find_path(&[MediaFormat::Mp3], &MediaFormat::Wav).unwrap();
        assert_eq!(p.len(), 1);
        // Two hops: MP3 -> WAV -> MPEG.
        let p = c
            .find_path(&[MediaFormat::Mp3], &MediaFormat::Mpeg)
            .unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].to, MediaFormat::Wav);
        assert_eq!(p[1].to, MediaFormat::Mpeg);
        // Unreachable.
        assert!(c
            .find_path(&[MediaFormat::Jpeg], &MediaFormat::Wav)
            .is_none());
        // Already acceptable: empty chain.
        assert_eq!(
            c.find_path(&[MediaFormat::Wav], &MediaFormat::Wav)
                .unwrap()
                .len(),
            0
        );
        // Token-set start: any offered format may begin the chain.
        let p = c
            .find_path(&[MediaFormat::Jpeg, MediaFormat::Wav], &MediaFormat::Mpeg)
            .unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn find_path_picks_shortest() {
        let mut c = TranscoderCatalog::new();
        // Direct MP3->MPEG exists alongside the 2-hop route.
        c.add(TranscoderSpec::new(
            MediaFormat::Mp3,
            MediaFormat::Wav,
            ResourceVector::mem_cpu(1.0, 1.0),
            5.0,
        ));
        c.add(TranscoderSpec::new(
            MediaFormat::Wav,
            MediaFormat::Mpeg,
            ResourceVector::mem_cpu(1.0, 1.0),
            0.25,
        ));
        c.add(TranscoderSpec::new(
            MediaFormat::Mp3,
            MediaFormat::Mpeg,
            ResourceVector::mem_cpu(1.0, 1.0),
            1.0,
        ));
        let p = c
            .find_path(&[MediaFormat::Mp3], &MediaFormat::Mpeg)
            .unwrap();
        assert_eq!(p.len(), 1, "BFS finds the direct hop");
    }

    #[test]
    fn find_any_scans_options() {
        let c = TranscoderCatalog::standard();
        let t = c
            .find_any(&[MediaFormat::H261, MediaFormat::Mp3], &MediaFormat::Wav)
            .unwrap();
        assert_eq!(t.from, MediaFormat::Mp3);
        assert!(c
            .find_any(&[MediaFormat::H261], &MediaFormat::Wav)
            .is_none());
    }

    #[test]
    fn instantiate_passes_non_format_dimensions_through() {
        let c = TranscoderCatalog::standard();
        let spec = c.find(&MediaFormat::Mpeg, &MediaFormat::Wav).unwrap();
        let upstream = QosVector::new()
            .with(QosDimension::Format, QosValue::token("MPEG"))
            .with(QosDimension::FrameRate, QosValue::exact(40.0));
        let t = spec.instantiate(&upstream);
        assert_eq!(
            t.qos_in().get(&QosDimension::Format),
            Some(&QosValue::token("MPEG"))
        );
        assert_eq!(
            t.qos_out().get(&QosDimension::Format),
            Some(&QosValue::token("WAV"))
        );
        assert_eq!(
            t.qos_out().get(&QosDimension::FrameRate),
            Some(&QosValue::exact(40.0))
        );
        assert!(t.is_adjustable(&QosDimension::FrameRate));
        assert!(t.passthrough().contains(&QosDimension::FrameRate));
        assert_eq!(t.role(), ComponentRole::Processor);
    }
}
