//! Property-based tests for the Ordered Coordination algorithm.

use proptest::prelude::*;
use ubiqos_composition::{
    coordination_with_order, oc, CoordinationOrder, CorrectionPolicy, TranscoderCatalog,
};
use ubiqos_graph::{ComponentId, ComponentRole, ServiceComponent, ServiceGraph};
use ubiqos_model::{QosDimension as D, QosValue, QosVector};

/// A random multi-stage pipeline: every hop forwards WAV at an
/// adjustable rate; each downstream hop narrows the acceptable range.
/// Always correctable (ranges are nested around a common point).
fn pipeline(
    depth: usize,
    fanout_at: Option<usize>,
    rates: &[(f64, f64)],
    initial_out: f64,
) -> ServiceGraph {
    let mut g = ServiceGraph::new();
    let mk = |i: usize, lo: f64, hi: f64| {
        ServiceComponent::builder(format!("hop{i}"))
            .role(if i == 0 {
                ComponentRole::Source
            } else {
                ComponentRole::Processor
            })
            .qos_in(
                QosVector::new()
                    .with(D::Format, QosValue::token("WAV"))
                    .with(D::FrameRate, QosValue::range(lo, hi)),
            )
            .qos_out(
                QosVector::new()
                    .with(D::Format, QosValue::token("WAV"))
                    .with(D::FrameRate, QosValue::exact(initial_out)),
            )
            .capability(D::FrameRate, QosValue::range(0.0, 1000.0))
            .passthrough(D::FrameRate)
            .build()
    };
    let ids: Vec<ComponentId> = (0..depth)
        .map(|i| {
            let (lo, hi) = rates[i % rates.len()];
            g.add_component(mk(i, lo, hi))
        })
        .collect();
    for w in ids.windows(2) {
        g.add_edge(w[0], w[1], 1.0).unwrap();
    }
    if let Some(at) = fanout_at {
        if at + 1 < depth {
            // Extra fan-out edge to exercise multi-successor adjustment.
            let (lo, hi) = rates[(at + 1) % rates.len()];
            let extra = g.add_component(mk(depth, lo, hi));
            g.add_edge(ids[at], extra, 0.5).unwrap();
        }
    }
    g
}

/// Nested rate windows around 20 fps so an admissible point always
/// exists.
fn arb_rates() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.0f64..15.0, 25.0f64..200.0), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// OC repairs every *linear* pipeline in one sweep. With fan-out, the
    /// greedy cascade may pin a value for one branch that a sibling
    /// branch cannot accept (the paper's algorithm does no global
    /// constraint propagation) — in that case OC must fail cleanly with
    /// `Uncorrectable`, never return an inconsistent graph.
    #[test]
    fn oc_repairs_linear_pipelines_and_fails_fanout_cleanly(
        depth in 2usize..14,
        fanout in proptest::option::of(0usize..6),
        rates in arb_rates(),
        initial in 1.0f64..500.0,
    ) {
        let mut g = pipeline(depth, fanout, &rates, initial);
        let result = oc::ordered_coordination(
            &mut g,
            &TranscoderCatalog::standard(),
            CorrectionPolicy::all(),
        );
        match result {
            Ok(report) => {
                prop_assert!(oc::is_consistent(&g));
                prop_assert_eq!(report.passes, 1, "pure adjustments need one sweep");
            }
            Err(e) => {
                prop_assert!(fanout.is_some(), "linear chains are always correctable: {e}");
                let is_uncorrectable = matches!(
                    e,
                    ubiqos_composition::CompositionError::Uncorrectable { .. }
                );
                prop_assert!(is_uncorrectable, "unexpected error kind: {e}");
            }
        }
    }

    /// Forward-order coordination converges to a consistent graph too —
    /// it just pays more sweeps; and both orders agree on the final
    /// source rate.
    #[test]
    fn forward_order_agrees_on_the_fixpoint(
        depth in 2usize..10,
        rates in arb_rates(),
        initial in 1.0f64..500.0,
    ) {
        let catalog = TranscoderCatalog::standard();
        let mut rev = pipeline(depth, None, &rates, initial);
        let mut fwd = rev.clone();
        coordination_with_order(&mut rev, &catalog, CorrectionPolicy::all(), CoordinationOrder::Reverse)
            .expect("correctable");
        coordination_with_order(&mut fwd, &catalog, CorrectionPolicy::all(), CoordinationOrder::Forward)
            .expect("correctable");
        prop_assert!(oc::is_consistent(&rev));
        prop_assert!(oc::is_consistent(&fwd));
        let src = ComponentId::from_index(0);
        prop_assert_eq!(
            rev.component(src).unwrap().qos_out().get(&D::FrameRate),
            fwd.component(src).unwrap().qos_out().get(&D::FrameRate)
        );
    }

    /// OC never mutates a sink's *input requirement* unless the sink has
    /// declared the dimension passthrough — the user-facing QoS is
    /// preserved (the whole point of the reverse order).
    #[test]
    fn sink_requirements_are_preserved(
        depth in 2usize..12,
        rates in arb_rates(),
        initial in 1.0f64..500.0,
    ) {
        let mut g = pipeline(depth, None, &rates, initial);
        let sink = g.component_ids().last().unwrap();
        let before = g.component(sink).unwrap().qos_in().clone();
        // Strip the sink's passthrough by rebuilding its requirement: the
        // generated sink *does* declare passthrough, so instead assert on
        // the range bounds, which adjustment must stay within.
        oc::ordered_coordination(&mut g, &TranscoderCatalog::standard(), CorrectionPolicy::all())
            .expect("correctable");
        let after = g.component(sink).unwrap().qos_in().clone();
        if let (Some(b), Some(a)) = (before.get(&D::FrameRate), after.get(&D::FrameRate)) {
            prop_assert!(a.satisfies(b), "sink requirement narrowed only within itself: {a:?} ⊆ {b:?}");
        }
    }

    /// check-only policy never mutates any graph, correctable or not.
    #[test]
    fn check_only_is_readonly(
        depth in 2usize..10,
        rates in arb_rates(),
        initial in 1.0f64..500.0,
    ) {
        let mut g = pipeline(depth, None, &rates, initial);
        let snapshot = g.clone();
        let _ = oc::ordered_coordination(
            &mut g,
            &TranscoderCatalog::standard(),
            CorrectionPolicy::check_only(),
        );
        prop_assert_eq!(snapshot, g);
    }

    /// The diagnosis API agrees with OC: after a successful run, diagnose
    /// reports zero mismatches.
    #[test]
    fn diagnosis_matches_oc_outcome(
        depth in 2usize..10,
        rates in arb_rates(),
        initial in 1.0f64..500.0,
    ) {
        let mut g = pipeline(depth, None, &rates, initial);
        let before = ubiqos_composition::diagnose(&g);
        prop_assert_eq!(before.examined, g.edge_count());
        oc::ordered_coordination(&mut g, &TranscoderCatalog::standard(), CorrectionPolicy::all())
            .expect("correctable");
        let after = ubiqos_composition::diagnose(&g);
        prop_assert!(after.is_consistent(), "{after}");
    }
}
