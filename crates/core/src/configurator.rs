//! The integrated two-tier configurator.

use crate::error::ConfigureError;
use serde::{Deserialize, Serialize};
use ubiqos_composition::{
    ComposeRequest, ComposedApplication, CorrectionPolicy, ExpansionLibrary, ServiceComposer,
    TranscoderCatalog,
};
use ubiqos_discovery::{DeviceProperties, DomainId, ServiceRegistry};
use ubiqos_distribution::{Environment, GreedyHeuristic, OsdProblem, ServiceDistributor};
use ubiqos_graph::{AbstractServiceGraph, Cut, DeviceId};
use ubiqos_model::{QosVector, Weights};

/// Everything one configuration request needs.
#[derive(Debug, Clone)]
pub struct ConfigureRequest<'a> {
    /// The developer's abstract application description.
    pub abstract_graph: &'a AbstractServiceGraph,
    /// The user's QoS requirements (attached to client-pinned services).
    pub user_qos: QosVector,
    /// The user's portal device in `env`.
    pub client_device: DeviceId,
    /// The portal device's properties, for discovery filtering.
    pub client_props: DeviceProperties,
    /// Domain to discover in.
    pub domain: Option<DomainId>,
    /// The current device environment (with *residual* availabilities).
    pub env: &'a Environment,
}

/// A complete configuration: the composed graph plus its placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    /// Output of the composition tier.
    pub app: ComposedApplication,
    /// Output of the distribution tier: the k-cut placement.
    pub cut: Cut,
    /// The placement's cost aggregation (Definition 3.5).
    pub cost: f64,
}

/// The integrated QoS-aware service configuration model: composition tier
/// followed by distribution tier.
///
/// Owns the composition knowledge (transcoder catalog, expansion library,
/// correction policy) and the placement algorithm (the paper's greedy
/// heuristic by default); borrows the smart space's [`ServiceRegistry`].
pub struct ServiceConfigurator<'r> {
    registry: &'r ServiceRegistry,
    catalog: TranscoderCatalog,
    library: ExpansionLibrary,
    policy: CorrectionPolicy,
    weights: Weights,
    distributor: Box<dyn ServiceDistributor + Send>,
}

impl std::fmt::Debug for ServiceConfigurator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceConfigurator")
            .field("catalog", &self.catalog)
            .field("library", &self.library)
            .field("policy", &self.policy)
            .field("weights", &self.weights)
            .field("distributor", &self.distributor.name())
            .finish()
    }
}

impl<'r> ServiceConfigurator<'r> {
    /// Creates a configurator with the standard transcoder catalog,
    /// uniform weights, and the paper's greedy heuristic distributor.
    pub fn new(registry: &'r ServiceRegistry) -> Self {
        ServiceConfigurator {
            registry,
            catalog: TranscoderCatalog::standard(),
            library: ExpansionLibrary::new(),
            policy: CorrectionPolicy::all(),
            weights: Weights::default(),
            distributor: Box::new(GreedyHeuristic::paper()),
        }
    }

    /// Replaces the transcoder catalog.
    #[must_use]
    pub fn with_catalog(mut self, catalog: TranscoderCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Replaces the expansion library for recursive composition.
    #[must_use]
    pub fn with_library(mut self, library: ExpansionLibrary) -> Self {
        self.library = library;
        self
    }

    /// Replaces the correction policy.
    #[must_use]
    pub fn with_policy(mut self, policy: CorrectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the cost weights.
    #[must_use]
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Replaces the distribution algorithm.
    #[must_use]
    pub fn with_distributor(mut self, distributor: Box<dyn ServiceDistributor + Send>) -> Self {
        self.distributor = distributor;
        self
    }

    /// The weights in use.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Runs the full two-tier pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigureError::Composition`] when no QoS-consistent
    /// graph can be composed, and [`ConfigureError::Distribution`] when
    /// the composed graph does not fit the current devices.
    pub fn configure(
        &mut self,
        request: &ConfigureRequest<'_>,
    ) -> Result<Configuration, ConfigureError> {
        let app = self.compose_only(request)?;
        self.distribute_only(app, request.env)
    }

    /// Runs the composition tier alone (for runtimes that want to
    /// interleave state handoff between the tiers).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigureError::Composition`] on composer failure.
    pub fn compose_only(
        &self,
        request: &ConfigureRequest<'_>,
    ) -> Result<ComposedApplication, ConfigureError> {
        let composer = ServiceComposer::new(self.registry)
            .with_catalog(self.catalog.clone())
            .with_library(self.library.clone())
            .with_policy(self.policy);
        Ok(composer.compose(&ComposeRequest {
            abstract_graph: request.abstract_graph,
            user_qos: request.user_qos.clone(),
            client_device: request.client_device,
            client_props: request.client_props,
            domain: request.domain,
        })?)
    }

    /// Reconfigures an existing configuration in response to a runtime
    /// trigger, re-running only the tier(s) the trigger invalidates:
    /// location/portal/crash triggers recompose from scratch; pure
    /// resource events keep the composed graph and only re-place it
    /// ("the user can continue his or her tasks with minimum QoS
    /// degradations").
    ///
    /// # Errors
    ///
    /// As [`ServiceConfigurator::configure`]. On error the previous
    /// configuration remains valid — nothing is mutated.
    pub fn reconfigure(
        &mut self,
        trigger: &crate::trigger::ReconfigureTrigger,
        previous: &Configuration,
        request: &ConfigureRequest<'_>,
    ) -> Result<Configuration, ConfigureError> {
        if trigger.requires_recomposition() {
            self.configure(request)
        } else {
            self.distribute_only(previous.app.clone(), request.env)
        }
    }

    /// Runs the distribution tier on an already composed application.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigureError::Distribution`] when no fitting cut is
    /// found.
    pub fn distribute_only(
        &mut self,
        app: ComposedApplication,
        env: &Environment,
    ) -> Result<Configuration, ConfigureError> {
        let problem = OsdProblem::new(&app.graph, env, &self.weights);
        let cut = self.distributor.distribute(&problem)?;
        let cost = problem.cost(&cut);
        Ok(Configuration { app, cut, cost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_discovery::ServiceDescriptor;
    use ubiqos_distribution::Device;
    use ubiqos_graph::{AbstractComponentSpec, ComponentRole, PinHint, ServiceComponent};
    use ubiqos_model::{QosDimension as D, QosValue, ResourceVector};

    fn registry() -> ServiceRegistry {
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescriptor::new(
            "server@desktop",
            "audio-server",
            ServiceComponent::builder("audio-server")
                .role(ComponentRole::Source)
                .qos_out(
                    QosVector::new()
                        .with(D::Format, QosValue::token("MPEG"))
                        .with(D::FrameRate, QosValue::exact(40.0)),
                )
                .capability(D::FrameRate, QosValue::range(5.0, 40.0))
                .resources(ResourceVector::mem_cpu(64.0, 40.0))
                .build(),
        ));
        r.register(ServiceDescriptor::new(
            "player@pda",
            "audio-player",
            ServiceComponent::builder("audio-player")
                .role(ComponentRole::Sink)
                .qos_in(
                    QosVector::new()
                        .with(D::Format, QosValue::token("WAV"))
                        .with(D::FrameRate, QosValue::range(10.0, 40.0)),
                )
                .resources(ResourceVector::mem_cpu(8.0, 15.0))
                .build(),
        ));
        r
    }

    fn env() -> Environment {
        Environment::builder()
            .device(Device::new(
                "desktop",
                ResourceVector::mem_cpu(256.0, 300.0),
            ))
            .device(Device::new("pda", ResourceVector::mem_cpu(32.0, 40.0)))
            .default_bandwidth_mbps(10.0)
            .build()
    }

    fn app() -> AbstractServiceGraph {
        let mut g = AbstractServiceGraph::new();
        let s = g.add_spec(AbstractComponentSpec::new("audio-server"));
        let p =
            g.add_spec(AbstractComponentSpec::new("audio-player").with_pin(PinHint::ClientDevice));
        g.add_edge(s, p, 1.4).unwrap();
        g
    }

    #[test]
    fn end_to_end_configuration() {
        let r = registry();
        let e = env();
        let a = app();
        let mut configurator = ServiceConfigurator::new(&r);
        let config = configurator
            .configure(&ConfigureRequest {
                abstract_graph: &a,
                user_qos: QosVector::new(),
                client_device: DeviceId::from_index(1),
                client_props: DeviceProperties::unconstrained(),
                domain: None,
                env: &e,
            })
            .unwrap();
        // Composed: server + transcoder + player; placed on 2 devices.
        assert_eq!(config.app.graph.component_count(), 3);
        assert_eq!(config.cut.parts(), 2);
        assert!(config.cost.is_finite());
        // The player sits on the PDA (pinned).
        let player = config
            .app
            .instances
            .iter()
            .find(|i| i.instance_id == "player@pda")
            .unwrap();
        assert_eq!(config.cut.part_of(player.component), Some(1));
        // The problem considers this placement feasible.
        let w = configurator.weights().clone();
        let p = OsdProblem::new(&config.app.graph, &e, &w);
        assert!(p.fits(&config.cut));
    }

    #[test]
    fn composition_failure_propagates() {
        let r = ServiceRegistry::new();
        let e = env();
        let a = app();
        let mut configurator = ServiceConfigurator::new(&r);
        let err = configurator
            .configure(&ConfigureRequest {
                abstract_graph: &a,
                user_qos: QosVector::new(),
                client_device: DeviceId::from_index(1),
                client_props: DeviceProperties::unconstrained(),
                domain: None,
                env: &e,
            })
            .unwrap_err();
        assert!(matches!(err, ConfigureError::Composition(_)));
    }

    #[test]
    fn distribution_failure_propagates() {
        let r = registry();
        // A starved environment no graph fits into.
        let e = Environment::builder()
            .device(Device::new("tiny", ResourceVector::mem_cpu(1.0, 1.0)))
            .device(Device::new("tiny2", ResourceVector::mem_cpu(1.0, 1.0)))
            .build();
        let a = app();
        let mut configurator = ServiceConfigurator::new(&r);
        let err = configurator
            .configure(&ConfigureRequest {
                abstract_graph: &a,
                user_qos: QosVector::new(),
                client_device: DeviceId::from_index(1),
                client_props: DeviceProperties::unconstrained(),
                domain: None,
                env: &e,
            })
            .unwrap_err();
        assert!(matches!(err, ConfigureError::Distribution(_)));
    }

    #[test]
    fn custom_distributor_is_used() {
        use ubiqos_distribution::RandomDistributor;
        let r = registry();
        let e = env();
        let a = app();
        let mut configurator = ServiceConfigurator::new(&r)
            .with_distributor(Box::new(RandomDistributor::seeded(11).with_attempts(64)));
        let config = configurator
            .configure(&ConfigureRequest {
                abstract_graph: &a,
                user_qos: QosVector::new(),
                client_device: DeviceId::from_index(1),
                client_props: DeviceProperties::unconstrained(),
                domain: None,
                env: &e,
            })
            .unwrap();
        assert_eq!(config.cut.len(), config.app.graph.component_count());
    }

    #[test]
    fn reconfigure_redistributes_without_recomposing_on_fluctuation() {
        use crate::trigger::ReconfigureTrigger;
        let r = registry();
        let mut e = env();
        let a = app();
        let mut configurator = ServiceConfigurator::new(&r);
        fn request<'a>(a: &'a AbstractServiceGraph, env: &'a Environment) -> ConfigureRequest<'a> {
            ConfigureRequest {
                abstract_graph: a,
                user_qos: QosVector::new(),
                client_device: DeviceId::from_index(1),
                client_props: DeviceProperties::unconstrained(),
                domain: None,
                env,
            }
        }
        let initial = configurator.configure(&request(&a, &e)).unwrap();

        // Resource fluctuation: same composed graph, fresh placement.
        e.device_mut(0)
            .unwrap()
            .set_availability(ResourceVector::mem_cpu(256.0, 200.0));
        let fluct = configurator
            .reconfigure(
                &ReconfigureTrigger::ResourceFluctuation(DeviceId::from_index(0)),
                &initial,
                &request(&a, &e),
            )
            .unwrap();
        assert_eq!(fluct.app.graph, initial.app.graph, "no recomposition");
        assert_eq!(fluct.app.instances, initial.app.instances);

        // Portal switch: a full recomposition happens (fresh OcReport).
        let switched = configurator
            .reconfigure(
                &ReconfigureTrigger::DeviceSwitched {
                    from: DeviceId::from_index(1),
                    to: DeviceId::from_index(1),
                },
                &initial,
                &request(&a, &e),
            )
            .unwrap();
        assert_eq!(
            switched.app.graph.component_count(),
            initial.app.graph.component_count()
        );
    }

    #[test]
    fn split_pipeline_matches_one_shot_configure() {
        let r = registry();
        let e = env();
        let a = app();
        let mut one_shot = ServiceConfigurator::new(&r);
        let full = one_shot
            .configure(&ConfigureRequest {
                abstract_graph: &a,
                user_qos: QosVector::new(),
                client_device: DeviceId::from_index(1),
                client_props: DeviceProperties::unconstrained(),
                domain: None,
                env: &e,
            })
            .unwrap();

        let mut split = ServiceConfigurator::new(&r);
        let composed = split
            .compose_only(&ConfigureRequest {
                abstract_graph: &a,
                user_qos: QosVector::new(),
                client_device: DeviceId::from_index(1),
                client_props: DeviceProperties::unconstrained(),
                domain: None,
                env: &e,
            })
            .unwrap();
        let staged = split.distribute_only(composed, &e).unwrap();
        assert_eq!(full.cut, staged.cut);
        assert_eq!(full.cost.to_bits(), staged.cost.to_bits());
        assert_eq!(full.app.graph, staged.app.graph);
    }

    #[test]
    fn exhaustive_distributor_yields_no_worse_cost() {
        let r = registry();
        let e = env();
        let a = app();
        let request = ConfigureRequest {
            abstract_graph: &a,
            user_qos: QosVector::new(),
            client_device: DeviceId::from_index(1),
            client_props: DeviceProperties::unconstrained(),
            domain: None,
            env: &e,
        };
        let heuristic_cost = ServiceConfigurator::new(&r)
            .configure(&request)
            .unwrap()
            .cost;
        let optimal_cost = ServiceConfigurator::new(&r)
            .with_distributor(Box::new(ubiqos_distribution::ExhaustiveOptimal::new()))
            .configure(&request)
            .unwrap()
            .cost;
        assert!(optimal_cost <= heuristic_cost + 1e-9);
    }

    #[test]
    fn debug_impl_names_the_distributor() {
        let r = registry();
        let configurator = ServiceConfigurator::new(&r);
        let s = format!("{configurator:?}");
        assert!(s.contains("heuristic"));
    }
}
