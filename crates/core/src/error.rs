//! Errors for the integrated configurator.

use std::error::Error;
use std::fmt;
use ubiqos_composition::CompositionError;
use ubiqos_distribution::DistributionError;

/// Errors from the two-tier configuration pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigureError {
    /// The composition tier failed (missing service, uncorrectable QoS).
    Composition(CompositionError),
    /// The distribution tier failed (graph does not fit the devices).
    Distribution(DistributionError),
    /// The configuration was computed against a stale view of the
    /// environment: placement landed a component on a device that is
    /// unreachable (crashed or partitioned) but not yet suspected by the
    /// failure detector, and the download/activation step failed. The
    /// witnessed device index lets recovery reconcile detector state
    /// with ground truth.
    StaleView {
        /// Index of the unreachable device the placement chose.
        device: usize,
    },
}

impl fmt::Display for ConfigureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigureError::Composition(e) => write!(f, "composition failed: {e}"),
            ConfigureError::Distribution(e) => write!(f, "distribution failed: {e}"),
            ConfigureError::StaleView { device } => {
                write!(f, "stale view: activation on unreachable device d{device}")
            }
        }
    }
}

impl Error for ConfigureError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigureError::Composition(e) => Some(e),
            ConfigureError::Distribution(e) => Some(e),
            ConfigureError::StaleView { .. } => None,
        }
    }
}

impl From<CompositionError> for ConfigureError {
    fn from(e: CompositionError) -> Self {
        ConfigureError::Composition(e)
    }
}

impl From<DistributionError> for ConfigureError {
    fn from(e: DistributionError) -> Self {
        ConfigureError::Distribution(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let c = ConfigureError::from(CompositionError::MissingService {
            service_type: "x".into(),
            depth: 0,
        });
        assert!(c.to_string().contains("composition failed"));
        assert!(c.source().is_some());

        let d = ConfigureError::from(DistributionError::NoDevices);
        assert!(d.to_string().contains("distribution failed"));
        assert!(d.source().is_some());

        let s = ConfigureError::StaleView { device: 3 };
        assert_eq!(
            s.to_string(),
            "stale view: activation on unreachable device d3"
        );
        assert!(s.source().is_none());
    }
}
