//! Summary of a fault-injection campaign against the runtime.
//!
//! The paper's §3.3 triggers — device crash, resource fluctuation,
//! portal switch, user mobility, application start/stop — are injected
//! by `ubiqos_runtime::faults` from a seeded schedule. The campaign
//! distils what happened into this report: how many events of each kind
//! fired, how sessions fared (admitted, denied, dropped, re-placed),
//! and a digest of the event log so two runs can be compared for
//! determinism with a single integer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Schema version stamped into every `BENCH_*.json` artifact. Bump it
/// whenever a field is added, renamed, or its meaning changes; the
/// nightly drift gate refuses to compare artifacts across versions
/// instead of silently misreading renamed fields.
pub const BENCH_SCHEMA_VERSION: u32 = 7;

/// Aggregated outcome of one fault-injection campaign.
///
/// Every counter is exact and deterministic for a given campaign seed:
/// two runs of the same campaign must produce byte-identical reports
/// (and byte-identical event logs — compare [`FaultReport::log_digest`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Artifact schema version (see [`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The campaign's master seed.
    pub seed: u64,
    /// Total events applied (workload + faults).
    pub events: u32,

    /// Injected device crashes.
    pub crashes: u32,
    /// Correlated crash groups (one scope event taking several devices
    /// down together; each member also counts in `crashes`).
    pub correlated_crashes: u32,
    /// Injected device recoveries.
    pub device_recoveries: u32,
    /// Injected per-device resource fluctuations.
    pub fluctuations: u32,
    /// Injected link-bandwidth degradations/restorations.
    pub link_fluctuations: u32,
    /// Injected portal switches (attempted).
    pub switches: u32,
    /// Portal switches the configurator could not satisfy (the old
    /// configuration stayed live).
    pub switch_failures: u32,
    /// Injected user moves (attempted).
    pub moves: u32,
    /// User moves the configurator could not satisfy.
    pub move_failures: u32,
    /// Injected partition events (device groups cut off from the domain
    /// server while still running).
    pub partitions: u32,
    /// Injected heal events (partitioned groups rejoining).
    pub heals: u32,
    /// Injected heartbeat-jam windows (detector signal lost while the
    /// device stays healthy and reachable).
    pub heartbeat_jams: u32,

    /// Devices the failure detector suspected (registry lease expired
    /// after the grace window; zero in perfect-detection mode, where
    /// every fault is observed instantly).
    pub suspicions: u32,
    /// Suspicions of devices that were actually healthy at suspicion
    /// time (partitioned or jammed, not crashed) — spurious parks the
    /// detector must cleanly undo on heal.
    pub false_suspected: u32,
    /// Suspected devices whose lease was renewed again (heal or
    /// recovery observed through a heartbeat) and that were restored.
    pub reinstatements: u32,
    /// Witnessed stale-view failures: a placement chose a
    /// dead-but-not-yet-suspected device and the download/activation
    /// step failed with `ConfigureError::StaleView`.
    pub stale_views: u32,

    /// Application arrivals from the workload.
    pub arrivals: u32,
    /// Arrivals admitted (a session was configured and started).
    pub admitted: u32,
    /// Arrivals denied admission (no QoS-consistent, fitting
    /// configuration existed at arrival time).
    pub denied: u32,
    /// Sessions that ran to their scheduled departure.
    pub completed: u32,
    /// Sessions dropped after exhausting the whole staged-recovery
    /// pipeline (every ladder level failed and the retry budget ran out);
    /// each drop carries a recorded [`crate::ConfigureError`] witnessing
    /// that the session was genuinely unplaceable when it was dropped.
    pub dropped: u32,
    /// Successful session re-placements across all recovery passes
    /// (one session surviving three recovery passes counts three times;
    /// degraded re-placements count here too).
    pub replacements: u32,
    /// Re-placements that only succeeded at a reduced QoS level (a rung
    /// below full quality on the degradation ladder).
    pub degraded: u32,
    /// Park events: a session released its resources and entered the
    /// retry queue (the same session may park more than once).
    pub parked: u32,
    /// Re-admissions of parked sessions from the retry queue.
    pub readmitted: u32,
    /// Sessions still live when the campaign ended.
    pub live_at_end: u32,
    /// Sessions still parked (awaiting retry) when the campaign ended.
    pub parked_at_end: u32,
    /// Recovery passes run (one per fault that touched capacity).
    pub recovery_passes: u32,
    /// Live sessions at the times recovery passes ran, summed — the
    /// re-placement work a full O(sessions) pass would have done.
    pub recovery_considered: u32,
    /// Sessions the incremental recovery passes actually re-examined
    /// (touched the changed device/link), summed — the O(affected) work
    /// actually done.
    pub recovery_affected: u32,

    /// Payload retransmissions this node's reliable transport sublayer
    /// issued (sender side; zero on a perfect transport and in every
    /// serial campaign).
    #[serde(default)]
    pub retransmissions: u32,
    /// Duplicate payload copies the reliable sublayer absorbed and
    /// dropped before they could reach a handler (receiver side).
    #[serde(default)]
    pub duplicate_drops: u32,
    /// Deepest the receiver-side in-order release buffer ever grew —
    /// how far ahead of a missing payload the network delivered.
    #[serde(default)]
    pub reorder_depth_max: u32,

    /// Whole-shard (domain-server process) crashes this node survived
    /// by rebuilding from its snapshot + write-ahead log (zero in every
    /// serial campaign and in crash-free federated runs).
    #[serde(default)]
    pub shard_crashes: u32,
    /// Write-ahead-log records replayed across all of this node's
    /// crash recoveries (the log tail past the last checkpoint).
    #[serde(default)]
    pub wal_replayed: u32,
    /// Snapshot restores performed (one per crash recovery).
    #[serde(default)]
    pub snapshot_restores: u32,

    /// Invariant checkpoints passed (one full sweep after every event).
    pub invariant_checks: u32,
    /// FNV-1a hash of the rendered event log, for cheap determinism
    /// comparisons across runs, hosts, and `UBIQOS_THREADS` settings.
    pub log_digest: u64,
}

impl Default for FaultReport {
    fn default() -> Self {
        FaultReport {
            schema_version: BENCH_SCHEMA_VERSION,
            seed: 0,
            events: 0,
            crashes: 0,
            correlated_crashes: 0,
            device_recoveries: 0,
            fluctuations: 0,
            link_fluctuations: 0,
            switches: 0,
            switch_failures: 0,
            moves: 0,
            move_failures: 0,
            partitions: 0,
            heals: 0,
            heartbeat_jams: 0,
            suspicions: 0,
            false_suspected: 0,
            reinstatements: 0,
            stale_views: 0,
            arrivals: 0,
            admitted: 0,
            denied: 0,
            completed: 0,
            dropped: 0,
            replacements: 0,
            degraded: 0,
            parked: 0,
            readmitted: 0,
            live_at_end: 0,
            parked_at_end: 0,
            recovery_passes: 0,
            recovery_considered: 0,
            recovery_affected: 0,
            retransmissions: 0,
            duplicate_drops: 0,
            reorder_depth_max: 0,
            shard_crashes: 0,
            wal_replayed: 0,
            snapshot_restores: 0,
            invariant_checks: 0,
            log_digest: 0,
        }
    }
}

impl FaultReport {
    /// Renders the report as an aligned, human-readable block.
    pub fn render(&self) -> String {
        format!(
            "campaign seed      : {:#018x}\n\
             events applied     : {}\n\
             faults             : {} crash ({} correlated groups) / {} recover / {} fluctuate / {} link / {} switch ({} failed) / {} move ({} failed)\n\
             detector faults    : {} partitions / {} heals / {} heartbeat jams\n\
             failure detection  : {} suspicions ({} false), {} reinstated, {} stale views witnessed\n\
             workload           : {} arrivals = {} admitted + {} denied\n\
             session fates      : {} completed, {} dropped, {} live at end, {} parked at end\n\
             staged recovery    : {} degraded, {} parked, {} readmitted\n\
             re-placements      : {} across {} passes ({} affected of {} considered)\n\
             transport          : {} retransmissions, {} duplicate drops, reorder depth {}\n\
             durability         : {} shard crashes survived, {} WAL records replayed, {} snapshot restores\n\
             invariant checks   : {}\n\
             event log digest   : {:#018x}\n",
            self.seed,
            self.events,
            self.crashes,
            self.correlated_crashes,
            self.device_recoveries,
            self.fluctuations,
            self.link_fluctuations,
            self.switches,
            self.switch_failures,
            self.moves,
            self.move_failures,
            self.partitions,
            self.heals,
            self.heartbeat_jams,
            self.suspicions,
            self.false_suspected,
            self.reinstatements,
            self.stale_views,
            self.arrivals,
            self.admitted,
            self.denied,
            self.completed,
            self.dropped,
            self.live_at_end,
            self.parked_at_end,
            self.degraded,
            self.parked,
            self.readmitted,
            self.replacements,
            self.recovery_passes,
            self.recovery_affected,
            self.recovery_considered,
            self.retransmissions,
            self.duplicate_drops,
            self.reorder_depth_max,
            self.shard_crashes,
            self.wal_replayed,
            self.snapshot_restores,
            self.invariant_checks,
            self.log_digest,
        )
    }

    /// Session-fate conservation: every admitted session either ran to
    /// completion, exhausted the staged-recovery pipeline and was
    /// dropped, is still live, or is parked awaiting retry.
    pub fn session_fates_balance(&self) -> bool {
        self.arrivals == self.admitted + self.denied
            && self.admitted
                == self.completed + self.dropped + self.live_at_end + self.parked_at_end
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// FNV-1a over a byte slice — the digest used for event-log comparison.
///
/// Chosen for stability (no dependency, no platform variance), not for
/// collision resistance; determinism checks always compare the full log
/// too when it is available.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_mentions_every_counter_group() {
        let report = FaultReport {
            seed: 7,
            events: 10,
            crashes: 1,
            admitted: 3,
            arrivals: 4,
            denied: 1,
            completed: 2,
            live_at_end: 1,
            ..FaultReport::default()
        };
        let s = report.render();
        assert!(s.contains("campaign seed"));
        assert!(s.contains("3 admitted + 1 denied"));
        assert!(s.contains("staged recovery"));
        assert!(s.contains("parked at end"));
        assert!(s.contains("failure detection"));
        assert!(s.contains("transport"));
        assert!(s.contains("invariant checks"));
        assert_eq!(report.to_string(), s);
    }

    #[test]
    fn default_report_carries_the_current_schema_version() {
        assert_eq!(FaultReport::default().schema_version, BENCH_SCHEMA_VERSION);
    }

    #[test]
    fn fate_balance_detects_leaks() {
        let mut report = FaultReport {
            arrivals: 4,
            admitted: 3,
            denied: 1,
            completed: 2,
            dropped: 0,
            live_at_end: 1,
            ..FaultReport::default()
        };
        assert!(report.session_fates_balance());
        report.live_at_end = 2;
        assert!(!report.session_fates_balance());
    }

    #[test]
    fn fate_balance_counts_parked_sessions() {
        let report = FaultReport {
            arrivals: 5,
            admitted: 4,
            denied: 1,
            completed: 2,
            dropped: 0,
            live_at_end: 1,
            parked_at_end: 1,
            parked: 2,
            readmitted: 1,
            ..FaultReport::default()
        };
        assert!(report.session_fates_balance());
    }

    #[test]
    fn fnv1a_is_stable_and_input_sensitive() {
        // Reference value for the empty input (FNV-1a offset basis).
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"ubiqos"), fnv1a(b"ubiqos"));
    }

    #[test]
    fn serde_roundtrip() {
        let report = FaultReport {
            seed: 42,
            events: 5,
            log_digest: 99,
            ..FaultReport::default()
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: FaultReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
