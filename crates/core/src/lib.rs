//! # ubiqos
//!
//! An open-source Rust reproduction of Gu & Nahrstedt, **"Dynamic
//! QoS-Aware Multimedia Service Configuration in Ubiquitous Computing
//! Environments"** (ICDCS 2002).
//!
//! Ubiquitous computing environments are highly dynamic: devices and
//! services come and go, users roam between rooms and switch portals from
//! PC to PDA mid-session. The paper's answer is an integrated, two-tier
//! **service configuration model**:
//!
//! * the **service composition tier** ([`ubiqos_composition`]) turns an
//!   abstract application description into a concrete, QoS-consistent
//!   service graph using discovery plus the Ordered Coordination
//!   correction algorithm;
//! * the **service distribution tier** ([`ubiqos_distribution`]) finds a
//!   minimum-cost k-cut of that graph onto the currently available
//!   devices (an NP-hard problem, approximated by the paper's greedy
//!   heuristic).
//!
//! This crate glues the tiers into a single [`ServiceConfigurator`], plus
//! the [`ReconfigureTrigger`] vocabulary the runtime uses to decide when
//! to re-run which tier.
//!
//! ## Quick start
//!
//! ```
//! use ubiqos::prelude::*;
//!
//! // 1. The environment: devices, bandwidth, registered services.
//! let env = Environment::builder()
//!     .device(Device::new("desktop", ResourceVector::mem_cpu(256.0, 300.0)))
//!     .device(Device::new("pda", ResourceVector::mem_cpu(32.0, 50.0)))
//!     .default_bandwidth_mbps(5.0)
//!     .build();
//! let mut registry = ServiceRegistry::new();
//! registry.register(ServiceDescriptor::new(
//!     "server@desktop",
//!     "audio-server",
//!     ServiceComponent::builder("audio-server")
//!         .resources(ResourceVector::mem_cpu(64.0, 40.0))
//!         .build(),
//! ));
//!
//! // 2. The abstract application.
//! let mut app = AbstractServiceGraph::new();
//! app.add_spec(AbstractComponentSpec::new("audio-server"));
//!
//! // 3. Configure: compose, then distribute.
//! let mut configurator = ServiceConfigurator::new(&registry);
//! let configuration = configurator.configure(&ConfigureRequest {
//!     abstract_graph: &app,
//!     user_qos: QosVector::new(),
//!     client_device: DeviceId::from_index(1),
//!     client_props: DeviceProperties::unconstrained(),
//!     domain: None,
//!     env: &env,
//! })?;
//! assert!(configuration.cost.is_finite());
//! # Ok::<(), ubiqos::ConfigureError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod configurator;
pub mod error;
pub mod fault_report;
pub mod trigger;

pub use configurator::{Configuration, ConfigureRequest, ServiceConfigurator};
pub use error::ConfigureError;
pub use fault_report::{FaultReport, BENCH_SCHEMA_VERSION};
pub use trigger::ReconfigureTrigger;

// Re-export the tiers and substrates as a single coherent API surface.
pub use ubiqos_composition as composition;
pub use ubiqos_discovery as discovery;
pub use ubiqos_distribution as distribution;
pub use ubiqos_graph as graph;
pub use ubiqos_model as model;

/// One-stop imports for applications built on ubiqos.
pub mod prelude {
    pub use crate::configurator::{Configuration, ConfigureRequest, ServiceConfigurator};
    pub use crate::error::ConfigureError;
    pub use crate::fault_report::FaultReport;
    pub use crate::trigger::ReconfigureTrigger;
    pub use ubiqos_composition::{
        diagnose, ComposeRequest, ComposedApplication, ConsistencyReport, CoordinationOrder,
        CorrectionPolicy, ExpansionLibrary, ExpansionRule, ServiceComposer, TranscoderCatalog,
        TranscoderSpec,
    };
    pub use ubiqos_discovery::{
        DeviceProperties, DiscoveryQuery, DomainId, ServiceDescriptor, ServiceRegistry,
    };
    pub use ubiqos_distribution::{
        BandwidthMatrix, Device, DeviceClass, Environment, ExhaustiveOptimal, GreedyHeuristic,
        OsdProblem, PlacementReport, RandomDistributor, ServiceDistributor,
    };
    pub use ubiqos_graph::{
        AbstractComponentSpec, AbstractServiceGraph, ComponentId, ComponentRole, Cut, DeviceId,
        PinHint, ServiceComponent, ServiceGraph, SpecId,
    };
    pub use ubiqos_model::{
        MediaFormat, QosDimension, QosValue, QosVector, ResourceVector, Weights,
    };
}
