//! Reconfiguration triggers.
//!
//! "The service composer is activated whenever some significant changes
//! are detected during runtime … the service distributor is invoked
//! whenever some significant resource fluctuations or device changes
//! happen" (Sections 3.2-3.3). This module gives the runtime a shared
//! vocabulary for those events and the policy of *which tier* each one
//! re-runs.

use serde::{Deserialize, Serialize};
use std::fmt;
use ubiqos_graph::DeviceId;

/// A runtime event that may invalidate the current configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReconfigureTrigger {
    /// The user moved to a new location; previously used services may no
    /// longer be reachable. Requires recomposition.
    UserMoved {
        /// Name of the new location/domain.
        to_location: String,
    },
    /// The user switched portal devices (e.g. PC → PDA); the previous
    /// service graph may no longer be supportable. Requires
    /// recomposition (a different client player may be needed) and state
    /// handoff.
    DeviceSwitched {
        /// The previous portal device.
        from: DeviceId,
        /// The new portal device.
        to: DeviceId,
    },
    /// A device crashed or departed; components on it must be replaced.
    DeviceCrashed(DeviceId),
    /// A previously crashed device came back; its capacity is available
    /// again and live sessions may be re-placed onto it.
    DeviceRecovered(DeviceId),
    /// Resource availability changed significantly on some device.
    ResourceFluctuation(DeviceId),
    /// The bandwidth of one device pair's link changed significantly
    /// (e.g. a wireless channel degrading under interference).
    LinkFluctuation {
        /// One endpoint of the link.
        a: DeviceId,
        /// The other endpoint.
        b: DeviceId,
    },
    /// Another application started, consuming shared resources.
    ApplicationStarted,
    /// An application stopped, releasing shared resources.
    ApplicationStopped,
    /// A session was re-placed at a reduced QoS level instead of being
    /// dropped (one rung down its degradation ladder).
    SessionDegraded {
        /// The quality factor the session ran at before the event.
        from: f64,
        /// The quality factor it was re-placed at.
        to: f64,
    },
    /// A session could not be placed at any ladder level and was parked
    /// in the retry queue (its resources are released while it waits).
    SessionParked,
    /// A previously parked session was re-admitted from the retry queue.
    SessionReadmitted,
    /// The failure detector suspects a device: its registry lease
    /// expired after the grace window without a heartbeat renewal. The
    /// suspicion may be *false* (a healthy device behind a partition or
    /// jammed heartbeats), so components on it are parked, not dropped.
    DeviceSuspected(DeviceId),
    /// A suspected device renewed its lease (heal or recovery observed
    /// through a heartbeat): the suspicion is withdrawn and the device's
    /// capacity and hosted instances are restored.
    DeviceReinstated(DeviceId),
}

impl ReconfigureTrigger {
    /// Whether this trigger invalidates the *composition* (the set and
    /// wiring of service instances), not just their placement.
    ///
    /// Location and portal changes can make discovered instances
    /// unreachable or unsuitable, so the composer re-runs; pure resource
    /// events only re-run the distributor ("the user can continue his or
    /// her tasks with minimum QoS degradations").
    pub fn requires_recomposition(&self) -> bool {
        matches!(
            self,
            ReconfigureTrigger::UserMoved { .. }
                | ReconfigureTrigger::DeviceSwitched { .. }
                | ReconfigureTrigger::DeviceCrashed(_)
                | ReconfigureTrigger::DeviceSuspected(_)
        )
    }

    /// Whether this trigger requires re-running the distribution tier.
    /// Every environment trigger does — even recompositions end with a
    /// fresh placement. The exception is parking: a parked session holds
    /// no placement at all until its retry fires.
    pub fn requires_redistribution(&self) -> bool {
        !matches!(self, ReconfigureTrigger::SessionParked)
    }

    /// Whether application state must be carried over to the new
    /// configuration (the paper's state handoff: "music continues from
    /// the interruption point").
    pub fn requires_state_handoff(&self) -> bool {
        matches!(
            self,
            ReconfigureTrigger::DeviceSwitched { .. }
                | ReconfigureTrigger::DeviceCrashed(_)
                | ReconfigureTrigger::DeviceSuspected(_)
        )
    }
}

impl fmt::Display for ReconfigureTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigureTrigger::UserMoved { to_location } => {
                write!(f, "user moved to {to_location}")
            }
            ReconfigureTrigger::DeviceSwitched { from, to } => {
                write!(f, "portal switched {from} -> {to}")
            }
            ReconfigureTrigger::DeviceCrashed(d) => write!(f, "device {d} crashed"),
            ReconfigureTrigger::DeviceRecovered(d) => write!(f, "device {d} recovered"),
            ReconfigureTrigger::ResourceFluctuation(d) => {
                write!(f, "resource fluctuation on {d}")
            }
            ReconfigureTrigger::LinkFluctuation { a, b } => {
                write!(f, "link fluctuation on {a}-{b}")
            }
            ReconfigureTrigger::ApplicationStarted => f.write_str("application started"),
            ReconfigureTrigger::ApplicationStopped => f.write_str("application stopped"),
            ReconfigureTrigger::SessionDegraded { from, to } => {
                write!(f, "session degraded x{from:.2} -> x{to:.2}")
            }
            ReconfigureTrigger::SessionParked => f.write_str("session parked for retry"),
            ReconfigureTrigger::SessionReadmitted => f.write_str("session re-admitted from park"),
            ReconfigureTrigger::DeviceSuspected(d) => {
                write!(f, "device {d} suspected (lease expired)")
            }
            ReconfigureTrigger::DeviceReinstated(d) => {
                write!(f, "device {d} reinstated (lease renewed)")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recomposition_policy() {
        let d0 = DeviceId::from_index(0);
        let d1 = DeviceId::from_index(1);
        assert!(ReconfigureTrigger::UserMoved {
            to_location: "office".into()
        }
        .requires_recomposition());
        assert!(ReconfigureTrigger::DeviceSwitched { from: d0, to: d1 }.requires_recomposition());
        assert!(ReconfigureTrigger::DeviceCrashed(d0).requires_recomposition());
        assert!(!ReconfigureTrigger::DeviceRecovered(d0).requires_recomposition());
        assert!(!ReconfigureTrigger::ResourceFluctuation(d0).requires_recomposition());
        assert!(!ReconfigureTrigger::LinkFluctuation { a: d0, b: d1 }.requires_recomposition());
        assert!(!ReconfigureTrigger::ApplicationStarted.requires_recomposition());
        assert!(!ReconfigureTrigger::ApplicationStopped.requires_recomposition());
        assert!(
            !ReconfigureTrigger::SessionDegraded { from: 1.0, to: 0.5 }.requires_recomposition()
        );
        assert!(!ReconfigureTrigger::SessionParked.requires_recomposition());
        assert!(!ReconfigureTrigger::SessionReadmitted.requires_recomposition());
        // A suspected device is treated like a crashed one by both tiers
        // (its instances must be replaced even if the suspicion turns
        // out to be false); a reinstatement is like a recovery.
        assert!(ReconfigureTrigger::DeviceSuspected(d0).requires_recomposition());
        assert!(ReconfigureTrigger::DeviceSuspected(d0).requires_state_handoff());
        assert!(!ReconfigureTrigger::DeviceReinstated(d0).requires_recomposition());
        assert!(!ReconfigureTrigger::DeviceReinstated(d0).requires_state_handoff());
    }

    #[test]
    fn every_placement_trigger_redistributes() {
        for t in [
            ReconfigureTrigger::ApplicationStarted,
            ReconfigureTrigger::DeviceCrashed(DeviceId::from_index(0)),
            ReconfigureTrigger::SessionDegraded { from: 1.0, to: 0.5 },
            ReconfigureTrigger::SessionReadmitted,
        ] {
            assert!(t.requires_redistribution());
        }
        // Parking releases the placement instead of computing one.
        assert!(!ReconfigureTrigger::SessionParked.requires_redistribution());
    }

    #[test]
    fn handoff_policy() {
        let d0 = DeviceId::from_index(0);
        let d1 = DeviceId::from_index(1);
        assert!(ReconfigureTrigger::DeviceSwitched { from: d0, to: d1 }.requires_state_handoff());
        assert!(!ReconfigureTrigger::ApplicationStarted.requires_state_handoff());
        assert!(!ReconfigureTrigger::DeviceRecovered(d0).requires_state_handoff());
        assert!(!ReconfigureTrigger::LinkFluctuation { a: d0, b: d1 }.requires_state_handoff());
    }

    #[test]
    fn display_is_informative() {
        let t = ReconfigureTrigger::DeviceSwitched {
            from: DeviceId::from_index(0),
            to: DeviceId::from_index(1),
        };
        assert_eq!(t.to_string(), "portal switched d0 -> d1");
    }
}
