//! Concrete service instance descriptors.

use crate::domain::DomainId;
use serde::{Deserialize, Serialize};
use ubiqos_graph::ServiceComponent;

/// Properties of a (client) device relevant to discovery filtering.
///
/// The discovery service "takes into account the user's QoS requirements
/// and properties of the client device (e.g., screen size, computing
/// capability)" — an instance whose minimum requirements exceed the client
/// device is not returned for client-pinned roles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProperties {
    /// Total screen pixels (e.g. `1600 * 1200` for a desktop display).
    pub screen_pixels: f64,
    /// Relative computing capability, normalized to the benchmark machine
    /// (1.0 = benchmark laptop; a PDA is ~0.4, a fast PC ~5.0).
    pub compute_factor: f64,
}

impl DeviceProperties {
    /// A generous default standing for "any capable device".
    pub fn unconstrained() -> Self {
        DeviceProperties {
            screen_pixels: f64::MAX,
            compute_factor: f64::MAX,
        }
    }

    /// Whether a device with these properties meets `minimum`.
    pub fn meets(&self, minimum: &DeviceProperties) -> bool {
        self.screen_pixels >= minimum.screen_pixels && self.compute_factor >= minimum.compute_factor
    }
}

impl Default for DeviceProperties {
    /// No requirement at all (zero minimums).
    fn default() -> Self {
        DeviceProperties {
            screen_pixels: 0.0,
            compute_factor: 0.0,
        }
    }
}

/// A registered concrete service instance.
///
/// Wraps the prototype [`ServiceComponent`] this instance would contribute
/// to a composed graph — discovered components "include more detailed and
/// specific information than their abstract descriptions (e.g.
/// resource/platform requirements)" — plus discovery metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceDescriptor {
    /// Unique instance id within the registry (e.g. `"audio-server@d1"`).
    pub instance_id: String,
    /// The abstract service type this instance implements.
    pub service_type: String,
    /// Prototype component: QoS in/out, capabilities, resources, role.
    pub prototype: ServiceComponent,
    /// Domain the instance lives in (`None` = globally visible).
    pub domain: Option<DomainId>,
    /// Minimum device properties for the hosting device (matters for
    /// client-pinned sinks such as players/displays).
    pub min_device: DeviceProperties,
    /// Size of the component's code bundle in MB, for dynamic-download
    /// cost accounting (Figure 4).
    pub code_size_mb: f64,
}

impl ServiceDescriptor {
    /// Creates a descriptor with no domain, no device constraints, and a
    /// nominal 1 MB code bundle.
    pub fn new(
        instance_id: impl Into<String>,
        service_type: impl Into<String>,
        prototype: ServiceComponent,
    ) -> Self {
        ServiceDescriptor {
            instance_id: instance_id.into(),
            service_type: service_type.into(),
            prototype,
            domain: None,
            min_device: DeviceProperties::default(),
            code_size_mb: 1.0,
        }
    }

    /// Scopes the instance to a domain.
    #[must_use]
    pub fn in_domain(mut self, domain: DomainId) -> Self {
        self.domain = Some(domain);
        self
    }

    /// Sets minimum hosting-device properties.
    #[must_use]
    pub fn with_min_device(mut self, min: DeviceProperties) -> Self {
        self.min_device = min;
        self
    }

    /// Sets the code bundle size in MB.
    #[must_use]
    pub fn with_code_size_mb(mut self, mb: f64) -> Self {
        self.code_size_mb = mb;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_properties_meets() {
        let pda = DeviceProperties {
            screen_pixels: 320.0 * 240.0,
            compute_factor: 0.4,
        };
        let needs_big_screen = DeviceProperties {
            screen_pixels: 1024.0 * 768.0,
            compute_factor: 0.0,
        };
        assert!(!pda.meets(&needs_big_screen));
        assert!(pda.meets(&DeviceProperties::default()));
        assert!(DeviceProperties::unconstrained().meets(&needs_big_screen));
    }

    #[test]
    fn descriptor_builder_chain() {
        let d = ServiceDescriptor::new(
            "p1",
            "audio-player",
            ServiceComponent::builder("audio-player").build(),
        )
        .in_domain(DomainId::from_index(2))
        .with_code_size_mb(3.5)
        .with_min_device(DeviceProperties {
            screen_pixels: 100.0,
            compute_factor: 0.2,
        });
        assert_eq!(d.instance_id, "p1");
        assert_eq!(d.domain, Some(DomainId::from_index(2)));
        assert_eq!(d.code_size_mb, 3.5);
        assert_eq!(d.min_device.compute_factor, 0.2);
    }
}
