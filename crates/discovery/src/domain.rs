//! Hierarchical domains of the smart space.
//!
//! "Due to the scalability requirement, we structure the smart spaces
//! hierarchically by grouping devices into different domains. Each domain
//! contains one domain server, which provides the key infrastructure
//! services for the entire domain space." (Section 1.)

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a domain within one registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DomainId(pub(crate) u32);

impl DomainId {
    /// The dense index of this domain.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs an id from a dense index.
    pub fn from_index(index: usize) -> Self {
        DomainId(index as u32)
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// One domain of the smart-space hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Domain {
    /// Human-readable domain name (e.g. `"office-3214"`).
    pub name: String,
    /// Parent domain, `None` for the hierarchy root.
    pub parent: Option<DomainId>,
}

impl Domain {
    /// Creates a domain.
    pub fn new(name: impl Into<String>, parent: Option<DomainId>) -> Self {
        Domain {
            name: name.into(),
            parent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_id_roundtrip_and_display() {
        let id = DomainId::from_index(5);
        assert_eq!(id.index(), 5);
        assert_eq!(id.to_string(), "dom5");
    }

    #[test]
    fn domain_construction() {
        let root = Domain::new("campus", None);
        assert_eq!(root.name, "campus");
        assert_eq!(root.parent, None);
        let child = Domain::new("office", Some(DomainId::from_index(0)));
        assert_eq!(child.parent, Some(DomainId::from_index(0)));
    }
}
