//! # ubiqos-discovery
//!
//! The service discovery substrate assumed by Section 3.1 of the paper
//! ("we assume that a service discovery service is available to find the
//! service instances that are closest to the abstract service
//! descriptions"; cf. the secure discovery service of Czerwinski et al.
//! and the QoS-aware discovery of Xu et al. cited there).
//!
//! Smart spaces are structured hierarchically into [`Domain`]s, each with a
//! domain server holding a [`ServiceRegistry`]. Concrete service instances
//! are registered as [`ServiceDescriptor`]s — prototypes of the
//! [`ubiqos_graph::ServiceComponent`] they instantiate, plus discovery
//! metadata (domain, code size for dynamic downloading, client-device
//! constraints).
//!
//! Discovery is *closest-match*: a [`DiscoveryQuery`] names an abstract
//! service type plus the desired QoS and the client device's properties;
//! [`ServiceRegistry::discover`] returns the instance with the highest
//! [`matching`] score. The returned component "may not be exactly the same
//! as the abstract description" (e.g. a JPEG player when an MPEG player
//! was requested) — resolving that is the composition tier's job.
//!
//! # Example
//!
//! ```
//! use ubiqos_discovery::{DeviceProperties, DiscoveryQuery, ServiceDescriptor, ServiceRegistry};
//! use ubiqos_graph::ServiceComponent;
//!
//! let mut registry = ServiceRegistry::new();
//! let root = registry.add_domain("building", None);
//! registry.register(
//!     ServiceDescriptor::new("as-1", "audio-server", ServiceComponent::builder("audio-server").build())
//!         .in_domain(root),
//! );
//! let hit = registry.discover(&DiscoveryQuery::new("audio-server").in_domain(root));
//! assert!(hit.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod descriptor;
pub mod domain;
pub mod matching;
pub mod query;
pub mod registry;

pub use descriptor::{DeviceProperties, ServiceDescriptor};
pub use domain::{Domain, DomainId};
pub use matching::{score, Discovered};
pub use query::DiscoveryQuery;
pub use registry::{DiscoveryStats, ServiceRegistry};
