//! Closest-match scoring between queries and registered instances.

use crate::descriptor::ServiceDescriptor;
use crate::query::DiscoveryQuery;
use serde::{Deserialize, Serialize};
use ubiqos_model::Weights;

/// A discovery hit: the descriptor together with its match score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discovered {
    /// The matched instance.
    pub descriptor: ServiceDescriptor,
    /// Closeness to the query in `[0, 1]`; 1.0 is a perfect QoS match.
    pub score: f64,
}

/// Scores how closely `descriptor` matches `query`.
///
/// Returns `None` when the instance is *ineligible*: wrong service type,
/// or it cannot run on the client device although the query requires it.
/// Otherwise returns a score in `[0, 1]`:
///
/// * the **QoS fraction** — the fraction of the query's desired QoS
///   dimensions the instance can handle, where "handle" means any of:
///   the configured output satisfies the desire, the declared capability
///   intersects it (the composition tier can retune within capabilities),
///   or the instance's *input* accepts the desired value (a sink "close
///   to" an MPEG-player description is one that can consume MPEG). An
///   instance with no desired dimensions scores 1.0 here: the query is
///   unconstrained;
/// * minus a small **footprint penalty** proportional to the instance's
///   weighted resource requirement, breaking ties toward lighter
///   instances (better for the distribution tier downstream).
///
/// The discovery service returns "the one closest to the service's
/// abstract descriptions" — even a partially matching instance is
/// returned, because the composer may still be able to correct the
/// mismatch (e.g. with a transcoder).
pub fn score(descriptor: &ServiceDescriptor, query: &DiscoveryQuery) -> Option<f64> {
    if descriptor.service_type != query.service_type {
        return None;
    }
    if query.must_fit_client && !query.client.meets(&descriptor.min_device) {
        return None;
    }

    let desired: Vec<_> = query.desired_qos.iter().collect();
    let qos_fraction = if desired.is_empty() {
        1.0
    } else {
        let satisfied = desired
            .iter()
            .filter(|(dim, want)| {
                let configured_ok = descriptor
                    .prototype
                    .qos_out()
                    .get(dim)
                    .is_some_and(|have| have.satisfies(want));
                let tunable_ok = descriptor
                    .prototype
                    .capabilities()
                    .get(dim)
                    .is_some_and(|cap| cap.intersect(want).is_some());
                let input_ok = descriptor
                    .prototype
                    .qos_in()
                    .get(dim)
                    .is_some_and(|accepts| want.satisfies(accepts));
                configured_ok || tunable_ok || input_ok
            })
            .count();
        satisfied as f64 / desired.len() as f64
    };

    // Footprint penalty: up to 5% of the score, saturating for very heavy
    // components. Uses uniform weights purely as a tie-breaker scale.
    let w = Weights::uniform(descriptor.prototype.resources().dim().max(1));
    let footprint = descriptor.prototype.resources().weighted_sum(w.resource());
    let penalty = 0.05 * (footprint / (footprint + 100.0));

    Some((qos_fraction - penalty).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_graph::ServiceComponent;
    use ubiqos_model::{QosDimension as D, QosValue, QosVector, ResourceVector};

    fn player(formats: &[&str], fps_cap: (f64, f64), mem: f64) -> ServiceDescriptor {
        ServiceDescriptor::new(
            format!("p-{}", formats.join("-")),
            "audio-player",
            ServiceComponent::builder("audio-player")
                .qos_out(
                    QosVector::new()
                        .with(D::Format, QosValue::token_set(formats.iter().copied()))
                        .with(D::FrameRate, QosValue::exact(fps_cap.1)),
                )
                .capability(D::FrameRate, QosValue::range(fps_cap.0, fps_cap.1))
                .resources(ResourceVector::mem_cpu(mem, 10.0))
                .build(),
        )
    }

    #[test]
    fn wrong_type_is_ineligible() {
        let d = player(&["WAV"], (10.0, 40.0), 8.0);
        let q = DiscoveryQuery::new("video-player");
        assert_eq!(score(&d, &q), None);
    }

    #[test]
    fn client_constraint_filters() {
        use crate::descriptor::DeviceProperties;
        let d = player(&["WAV"], (10.0, 40.0), 8.0).with_min_device(DeviceProperties {
            screen_pixels: 1e6,
            compute_factor: 1.0,
        });
        let pda = DeviceProperties {
            screen_pixels: 320.0 * 240.0,
            compute_factor: 0.4,
        };
        let q = DiscoveryQuery::new("audio-player").on_client(pda);
        assert_eq!(score(&d, &q), None);
        // Without the client requirement the same instance is eligible.
        let q2 = DiscoveryQuery::new("audio-player");
        assert!(score(&d, &q2).is_some());
    }

    #[test]
    fn full_qos_match_scores_near_one() {
        let d = player(&["WAV"], (10.0, 40.0), 8.0);
        let q = DiscoveryQuery::new("audio-player")
            .with_desired_qos(QosVector::new().with(D::FrameRate, QosValue::exact(30.0)));
        let s = score(&d, &q).unwrap();
        assert!(s > 0.9, "tunable capability covers the desire: {s}");
    }

    #[test]
    fn partial_match_scores_fractionally() {
        // Player can do the frame rate but not the desired format.
        let d = player(&["JPEG"], (10.0, 40.0), 8.0);
        let q = DiscoveryQuery::new("audio-player").with_desired_qos(
            QosVector::new()
                .with(D::Format, QosValue::token("MPEG"))
                .with(D::FrameRate, QosValue::exact(30.0)),
        );
        let s = score(&d, &q).unwrap();
        assert!(s > 0.4 && s < 0.6, "half the desired dims match: {s}");
    }

    #[test]
    fn lighter_instance_wins_ties() {
        let light = player(&["WAV"], (10.0, 40.0), 4.0);
        let heavy = player(&["WAV"], (10.0, 40.0), 400.0);
        let q = DiscoveryQuery::new("audio-player");
        assert!(score(&light, &q).unwrap() > score(&heavy, &q).unwrap());
    }

    #[test]
    fn unconstrained_query_scores_high_for_any_eligible() {
        let d = player(&["JPEG"], (1.0, 2.0), 1.0);
        let q = DiscoveryQuery::new("audio-player");
        assert!(score(&d, &q).unwrap() > 0.9);
    }
}
