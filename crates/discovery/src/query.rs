//! Discovery queries.

use crate::descriptor::DeviceProperties;
use crate::domain::DomainId;
use serde::{Deserialize, Serialize};
use ubiqos_model::QosVector;

/// A query against the [`crate::ServiceRegistry`].
///
/// Carries the abstract service type, the desired output QoS (derived from
/// the abstract spec plus the user's QoS requirements), the client
/// device's properties, and an optional domain scope. Matching semantics
/// live in [`crate::matching`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryQuery {
    /// The abstract service type requested, e.g. `"audio-player"`.
    pub service_type: String,
    /// QoS the instance's output should be able to provide.
    pub desired_qos: QosVector,
    /// Properties of the device the service would run on (used when the
    /// service is constrained to the client device).
    pub client: DeviceProperties,
    /// Whether the instance must be able to run on `client` (true for
    /// client-pinned specs such as players and displays).
    pub must_fit_client: bool,
    /// Domain to search; `None` searches globally.
    pub domain: Option<DomainId>,
}

impl DiscoveryQuery {
    /// Creates a query for a service type with no QoS or device
    /// constraints, searched globally.
    pub fn new(service_type: impl Into<String>) -> Self {
        DiscoveryQuery {
            service_type: service_type.into(),
            desired_qos: QosVector::new(),
            client: DeviceProperties::unconstrained(),
            must_fit_client: false,
            domain: None,
        }
    }

    /// Sets the desired output QoS.
    #[must_use]
    pub fn with_desired_qos(mut self, qos: QosVector) -> Self {
        self.desired_qos = qos;
        self
    }

    /// Requires the instance to fit the given client device.
    #[must_use]
    pub fn on_client(mut self, client: DeviceProperties) -> Self {
        self.client = client;
        self.must_fit_client = true;
        self
    }

    /// Scopes the search to a domain (and, during registry lookup, its
    /// ancestors).
    #[must_use]
    pub fn in_domain(mut self, domain: DomainId) -> Self {
        self.domain = Some(domain);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_model::{QosDimension, QosValue};

    #[test]
    fn builder_chain() {
        let q = DiscoveryQuery::new("video-player")
            .with_desired_qos(
                QosVector::new().with(QosDimension::FrameRate, QosValue::range(10.0, 30.0)),
            )
            .on_client(DeviceProperties {
                screen_pixels: 320.0 * 240.0,
                compute_factor: 0.4,
            })
            .in_domain(DomainId::from_index(1));
        assert_eq!(q.service_type, "video-player");
        assert!(q.must_fit_client);
        assert_eq!(q.domain, Some(DomainId::from_index(1)));
        assert_eq!(q.desired_qos.dim(), 1);
    }

    #[test]
    fn default_query_is_unconstrained() {
        let q = DiscoveryQuery::new("x");
        assert!(!q.must_fit_client);
        assert_eq!(q.domain, None);
        assert!(q.desired_qos.is_empty());
    }
}
