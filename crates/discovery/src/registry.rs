//! The per-smart-space service registry.

use crate::descriptor::ServiceDescriptor;
use crate::domain::{Domain, DomainId};
use crate::matching::{score, Discovered};
use crate::query::DiscoveryQuery;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Mutex;
use std::time::Instant;
use ubiqos_model::{QosDimension, QosValue};

/// Entries kept in the bounded changed-type changelog before older
/// history is forgotten (callers older than the window revalidate fully).
const CHANGELOG_CAP: usize = 1024;

/// Memoized query results kept before stale entries are evicted.
const MEMO_CAP: usize = 256;

/// Aggregate discovery counters: how many queries ran, how many were
/// answered from the epoch-keyed memo without scanning a type bucket,
/// and the wall-clock spent inside [`ServiceRegistry::discover_all`].
///
/// Wall-clock never feeds any deterministic log — it exists purely for
/// the per-stage profiling of `BENCH_configure.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiscoveryStats {
    /// Total `discover_all` calls.
    pub queries: u64,
    /// Calls answered from the memo (no bucket scan, no re-scoring).
    pub memo_hits: u64,
    /// Total wall-clock nanoseconds spent discovering.
    pub wall_nanos: u128,
}

/// The epoch-keyed memo of `discover_all` results plus its counters.
#[derive(Debug, Clone)]
struct QueryMemo {
    enabled: bool,
    /// Rendered query → (registry epoch at fill time, results).
    entries: BTreeMap<String, (u64, Vec<Discovered>)>,
    stats: DiscoveryStats,
}

impl Default for QueryMemo {
    fn default() -> Self {
        QueryMemo {
            enabled: true,
            entries: BTreeMap::new(),
            stats: DiscoveryStats::default(),
        }
    }
}

/// Registry of domains and service instances for one smart space.
///
/// Lookup is domain-aware: a query scoped to a domain sees instances
/// registered in that domain *or any of its ancestors* (an office inherits
/// the building's services), plus globally registered instances. This
/// models the hierarchical smart-space structure of Section 1.
///
/// Registration is dynamic — "many devices and services coming and going
/// frequently" — so instances can be [`ServiceRegistry::unregister`]ed at
/// any time, which is what triggers recomposition in the runtime.
///
/// # Epochs, indexes, and the query memo
///
/// Every mutation (register / unregister / domain-wide unregister) bumps
/// a monotonically increasing [`ServiceRegistry::epoch`] and records the
/// affected service types in a bounded changelog
/// ([`ServiceRegistry::changed_types_since`]), so higher layers can key
/// caches by epoch and revalidate them precisely instead of flushing on
/// every churn event.
///
/// Secondary indexes removed the remaining full scans: instance id →
/// type (O(log) unregister instead of scanning every bucket), hosting
/// device → instances ([`ServiceRegistry::hosted_on`], the crash path),
/// and media-format token → instances
/// ([`ServiceRegistry::instances_with_format`]). Repeat queries stop
/// scanning type buckets entirely: `discover_all` memoizes its (already
/// deterministic) result per query at the current epoch, so the steady
/// state of a workload that asks the same questions over and over is a
/// single map lookup. A memo hit returns a clone of the exact vector a
/// fresh scan would produce — observable behaviour is identical with the
/// memo on or off.
#[derive(Debug, Default)]
pub struct ServiceRegistry {
    domains: Vec<Domain>,
    /// Instances bucketed by service type for O(bucket) discovery.
    by_type: BTreeMap<String, Vec<ServiceDescriptor>>,
    /// Monotonic mutation counter; bumped by every register/unregister.
    epoch: u64,
    /// instance id → service type (O(log) unregister). Derived state —
    /// not serialized, rebuilt lazily after deserialization.
    by_id: BTreeMap<String, String>,
    /// hosting device index → instance ids pinned to it.
    by_host: BTreeMap<usize, BTreeSet<String>>,
    /// media-format token (from the prototype's in/out QoS) → instance
    /// ids carrying it.
    by_format: BTreeMap<String, BTreeSet<String>>,
    /// (epoch after the change, service type changed), oldest first.
    changelog: VecDeque<(u64, String)>,
    /// The epoch every retained changelog entry is newer than: questions
    /// about older epochs cannot be answered precisely.
    changelog_base: u64,
    /// Epoch-keyed memo of `discover_all` results (interior mutability:
    /// discovery is `&self`).
    memo: Mutex<QueryMemo>,
    /// Host device index → virtual-time lease expiry (ms). Registrations
    /// on a device are *leased*: a failure detector renews the lease on
    /// every heartbeat and treats an expired lease as suspicion. Runtime
    /// state — not serialized (a restarted registry starts with no
    /// leases, exactly like a restarted detector).
    leases: BTreeMap<usize, u64>,
}

/// Only the authoritative state (domains, instances, epoch) is
/// serialized; indexes, changelog, and memo are derived and rebuilt on
/// demand after deserialization.
impl Serialize for ServiceRegistry {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("domains".to_owned(), self.domains.to_value()),
            ("by_type".to_owned(), self.by_type.to_value()),
            ("epoch".to_owned(), self.epoch.to_value()),
        ])
    }
}

impl Deserialize for ServiceRegistry {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let domains = match value.get("domains") {
            Some(v) => Vec::<Domain>::from_value(v)?,
            None => return Err(serde::Error::custom("missing field `domains`")),
        };
        let by_type = match value.get("by_type") {
            Some(v) => BTreeMap::<String, Vec<ServiceDescriptor>>::from_value(v)?,
            None => return Err(serde::Error::custom("missing field `by_type`")),
        };
        // Snapshots predating the epoch field deserialize at epoch 0.
        let epoch = match value.get("epoch") {
            Some(v) => u64::from_value(v)?,
            None => 0,
        };
        Ok(ServiceRegistry {
            domains,
            by_type,
            epoch,
            // History before the snapshot is unknown: older epochs must
            // revalidate fully.
            changelog_base: epoch,
            ..Default::default()
        })
    }
}

impl Clone for ServiceRegistry {
    fn clone(&self) -> Self {
        ServiceRegistry {
            domains: self.domains.clone(),
            by_type: self.by_type.clone(),
            epoch: self.epoch,
            by_id: self.by_id.clone(),
            by_host: self.by_host.clone(),
            by_format: self.by_format.clone(),
            changelog: self.changelog.clone(),
            changelog_base: self.changelog_base,
            memo: Mutex::new(self.memo.lock().unwrap_or_else(|e| e.into_inner()).clone()),
            leases: self.leases.clone(),
        }
    }
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a domain to the hierarchy, returning its id.
    pub fn add_domain(&mut self, name: impl Into<String>, parent: Option<DomainId>) -> DomainId {
        let id = DomainId::from_index(self.domains.len());
        self.domains.push(Domain::new(name, parent));
        id
    }

    /// Borrows a domain.
    pub fn domain(&self, id: DomainId) -> Option<&Domain> {
        self.domains.get(id.index())
    }

    /// The number of registered domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// The direct children of `id`, in id order.
    pub fn children(&self, id: DomainId) -> Vec<DomainId> {
        (0..self.domains.len())
            .map(DomainId::from_index)
            .filter(|&c| self.domains[c.index()].parent == Some(id))
            .collect()
    }

    /// `id`'s ancestor chain, nearest parent first (empty for a root).
    pub fn ancestors(&self, id: DomainId) -> Vec<DomainId> {
        let mut chain = Vec::new();
        let mut cur = id;
        while let Some(parent) = self.domains.get(cur.index()).and_then(|d| d.parent) {
            chain.push(parent);
            cur = parent;
        }
        chain
    }

    /// The deterministic order a federated resolver consults domains in
    /// when a query cannot be satisfied inside `id`: the domain itself,
    /// then its ancestors nearest-first, then its siblings (other
    /// children of its parent) in id order, then every remaining domain
    /// in id order. Each domain appears exactly once.
    pub fn resolution_order(&self, id: DomainId) -> Vec<DomainId> {
        let mut order = vec![id];
        order.extend(self.ancestors(id));
        if let Some(parent) = self.domains.get(id.index()).and_then(|d| d.parent) {
            order.extend(self.children(parent).into_iter().filter(|&s| s != id));
        }
        for i in 0..self.domains.len() {
            let d = DomainId::from_index(i);
            if !order.contains(&d) {
                order.push(d);
            }
        }
        order
    }

    /// The registry's current epoch: a monotonic counter bumped by every
    /// mutation. Two equal epochs guarantee identical discovery results
    /// for identical queries, which is what lets higher layers memoize
    /// compositions keyed by `(request, epoch)`.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current lease table (host device index → virtual-time lease
    /// expiry, ms). Read-only: the durability layer folds it into the
    /// durable-state fingerprint so a crash-recovered registry proves
    /// it restored exactly the leases the original held.
    pub fn lease_table(&self) -> &BTreeMap<usize, u64> {
        &self.leases
    }

    /// The service types changed (registered into or unregistered from)
    /// strictly after `since_epoch`, or `None` when `since_epoch` is
    /// older than the bounded changelog remembers (callers must then
    /// treat *every* type as potentially changed).
    pub fn changed_types_since(&self, since_epoch: u64) -> Option<BTreeSet<&str>> {
        if since_epoch < self.changelog_base {
            return None;
        }
        Some(
            self.changelog
                .iter()
                .filter(|(e, _)| *e > since_epoch)
                .map(|(_, ty)| ty.as_str())
                .collect(),
        )
    }

    /// Bumps the epoch and records `types` as changed at the new epoch.
    fn bump_epoch<'t>(&mut self, types: impl IntoIterator<Item = &'t str>) {
        self.epoch += 1;
        for ty in types {
            self.changelog.push_back((self.epoch, ty.to_owned()));
        }
        while self.changelog.len() > CHANGELOG_CAP {
            let (e, _) = self.changelog.pop_front().expect("len checked");
            self.changelog_base = self.changelog_base.max(e);
        }
    }

    /// Grants or renews the registration lease for host device `device`
    /// until virtual time `expiry_ms`. Heartbeat-driven: the domain
    /// server calls this whenever a heartbeat from the device arrives.
    /// Renewals never bump the epoch — a lease says nothing about which
    /// instances exist, only about how fresh the registry's view of the
    /// device is.
    pub fn renew_lease(&mut self, device: usize, expiry_ms: u64) {
        self.leases.insert(device, expiry_ms);
    }

    /// The lease expiry for `device` (virtual ms), if one was granted.
    pub fn lease_expiry(&self, device: usize) -> Option<u64> {
        self.leases.get(&device).copied()
    }

    /// Revokes `device`'s lease — called when the detector acts on the
    /// expiry (suspicion) so the same expiry is not acted on twice.
    pub fn revoke_lease(&mut self, device: usize) {
        self.leases.remove(&device);
    }

    /// Devices whose lease has expired at `now_ms` (ascending index
    /// order, so expiry processing is deterministic).
    pub fn expired_leases(&self, now_ms: u64) -> Vec<usize> {
        self.leases
            .iter()
            .filter(|(_, &expiry)| expiry <= now_ms)
            .map(|(&d, _)| d)
            .collect()
    }

    /// Whether the secondary indexes cover the current instance set. A
    /// deserialized registry arrives with empty indexes (they are derived
    /// state and not serialized); mutations rebuild them on first touch
    /// and read accessors fall back to a scan until then.
    fn indexes_fresh(&self) -> bool {
        self.by_id.len() == self.instance_count()
    }

    /// Rebuilds every secondary index from `by_type` (post-deserialize).
    fn rebuild_indexes(&mut self) {
        self.by_id.clear();
        self.by_host.clear();
        self.by_format.clear();
        let descriptors: Vec<ServiceDescriptor> = self
            .by_type
            .values()
            .flat_map(|bucket| bucket.iter().cloned())
            .collect();
        for d in &descriptors {
            self.index_insert(d);
        }
        // History before the rebuild is unknown; callers with older
        // epochs must revalidate fully.
        self.changelog.clear();
        self.changelog_base = self.epoch;
    }

    /// The media-format tokens a descriptor's prototype carries on its
    /// input or output QoS (what the by-format index is keyed on).
    fn format_tokens(descriptor: &ServiceDescriptor) -> BTreeSet<String> {
        let mut tokens = BTreeSet::new();
        for qos in [
            descriptor.prototype.qos_in(),
            descriptor.prototype.qos_out(),
        ] {
            match qos.get(&QosDimension::Format) {
                Some(QosValue::Token(t)) => {
                    tokens.insert(t.clone());
                }
                Some(QosValue::TokenSet(set)) => {
                    tokens.extend(set.iter().cloned());
                }
                _ => {}
            }
        }
        tokens
    }

    fn index_insert(&mut self, descriptor: &ServiceDescriptor) {
        self.by_id.insert(
            descriptor.instance_id.clone(),
            descriptor.service_type.clone(),
        );
        if let Some(host) = descriptor.prototype.pinned_to() {
            self.by_host
                .entry(host.index())
                .or_default()
                .insert(descriptor.instance_id.clone());
        }
        for token in Self::format_tokens(descriptor) {
            self.by_format
                .entry(token)
                .or_default()
                .insert(descriptor.instance_id.clone());
        }
    }

    fn index_remove(&mut self, descriptor: &ServiceDescriptor) {
        self.by_id.remove(&descriptor.instance_id);
        if let Some(host) = descriptor.prototype.pinned_to() {
            if let Some(set) = self.by_host.get_mut(&host.index()) {
                set.remove(&descriptor.instance_id);
                if set.is_empty() {
                    self.by_host.remove(&host.index());
                }
            }
        }
        for token in Self::format_tokens(descriptor) {
            if let Some(set) = self.by_format.get_mut(&token) {
                set.remove(&descriptor.instance_id);
                if set.is_empty() {
                    self.by_format.remove(&token);
                }
            }
        }
    }

    /// Registers a service instance. Re-registering the same
    /// `instance_id` replaces the previous descriptor.
    pub fn register(&mut self, descriptor: ServiceDescriptor) {
        if !self.indexes_fresh() {
            self.rebuild_indexes();
        }
        // The same id may currently live under a *different* type.
        if let Some(old_type) = self.by_id.get(&descriptor.instance_id).cloned() {
            if old_type != descriptor.service_type {
                self.unregister(&descriptor.instance_id);
            }
        }
        let ty = descriptor.service_type.clone();
        let bucket = self.by_type.entry(ty.clone()).or_default();
        if let Some(pos) = bucket
            .iter()
            .position(|d| d.instance_id == descriptor.instance_id)
        {
            let old = bucket.remove(pos);
            self.index_remove(&old);
        }
        self.by_type
            .get_mut(&ty)
            .expect("bucket created above")
            .push(descriptor.clone());
        self.index_insert(&descriptor);
        self.bump_epoch([ty.as_str()]);
    }

    /// Removes an instance by id, returning it if it was registered.
    /// O(log) via the id index instead of scanning every type bucket.
    pub fn unregister(&mut self, instance_id: &str) -> Option<ServiceDescriptor> {
        if !self.indexes_fresh() {
            self.rebuild_indexes();
        }
        let ty = self.by_id.get(instance_id)?.clone();
        let bucket = self.by_type.get_mut(&ty)?;
        let pos = bucket.iter().position(|d| d.instance_id == instance_id)?;
        let removed = bucket.remove(pos);
        if bucket.is_empty() {
            self.by_type.remove(&ty);
        }
        self.index_remove(&removed);
        self.bump_epoch([ty.as_str()]);
        Some(removed)
    }

    /// Removes every instance registered in `domain` (e.g. the user left
    /// the room and its devices went out of scope). Returns how many were
    /// removed.
    pub fn unregister_domain(&mut self, domain: DomainId) -> usize {
        if !self.indexes_fresh() {
            self.rebuild_indexes();
        }
        let mut removed = 0;
        let mut changed_types: Vec<String> = Vec::new();
        let mut dropped: Vec<ServiceDescriptor> = Vec::new();
        for (ty, bucket) in &mut self.by_type {
            let before = bucket.len();
            bucket.retain(|d| {
                let keep = d.domain != Some(domain);
                if !keep {
                    dropped.push(d.clone());
                }
                keep
            });
            if bucket.len() != before {
                removed += before - bucket.len();
                changed_types.push(ty.clone());
            }
        }
        self.by_type.retain(|_, bucket| !bucket.is_empty());
        for d in &dropped {
            self.index_remove(d);
        }
        if removed > 0 {
            self.bump_epoch(changed_types.iter().map(String::as_str));
        }
        removed
    }

    /// The instances hosted on (prototype pinned to) device `device` —
    /// what a crash must unregister — via the hosting index instead of a
    /// full instance scan. Ids are returned in ascending order.
    pub fn hosted_on(&self, device: usize) -> Vec<&ServiceDescriptor> {
        if self.indexes_fresh() {
            let Some(ids) = self.by_host.get(&device) else {
                return Vec::new();
            };
            ids.iter().filter_map(|id| self.lookup(id)).collect()
        } else {
            // Deserialized registry, indexes not rebuilt yet: scan.
            self.instances()
                .filter(|d| d.prototype.pinned_to().is_some_and(|h| h.index() == device))
                .collect()
        }
    }

    /// The instances whose prototype carries media-format `token` on its
    /// input or output QoS, in ascending instance-id order.
    pub fn instances_with_format(&self, token: &str) -> Vec<&ServiceDescriptor> {
        if self.indexes_fresh() {
            let Some(ids) = self.by_format.get(token) else {
                return Vec::new();
            };
            ids.iter().filter_map(|id| self.lookup(id)).collect()
        } else {
            let mut hits: Vec<&ServiceDescriptor> = self
                .instances()
                .filter(|d| Self::format_tokens(d).contains(token))
                .collect();
            hits.sort_by(|a, b| a.instance_id.cmp(&b.instance_id));
            hits
        }
    }

    /// Borrows a registered instance by id (via the id index when fresh).
    pub fn lookup(&self, instance_id: &str) -> Option<&ServiceDescriptor> {
        if self.indexes_fresh() {
            let ty = self.by_id.get(instance_id)?;
            self.by_type
                .get(ty)?
                .iter()
                .find(|d| d.instance_id == instance_id)
        } else {
            self.instances().find(|d| d.instance_id == instance_id)
        }
    }

    /// Enables or disables the epoch-keyed `discover_all` memo (on by
    /// default). Disabling also clears it. Results are identical either
    /// way; the toggle exists for the cached-vs-uncached benchmark runs.
    pub fn set_query_memo(&mut self, enabled: bool) {
        let memo = self.memo.get_mut().unwrap_or_else(|e| e.into_inner());
        memo.enabled = enabled;
        if !enabled {
            memo.entries.clear();
        }
    }

    /// Discovery counters (total queries, memo hits, wall-clock). The
    /// wall-clock feeds profiling artifacts only — never deterministic
    /// logs.
    pub fn discovery_stats(&self) -> DiscoveryStats {
        self.memo.lock().unwrap_or_else(|e| e.into_inner()).stats
    }

    /// The number of registered instances.
    pub fn instance_count(&self) -> usize {
        self.by_type.values().map(Vec::len).sum()
    }

    /// Iterates over every registered instance, in service-type order.
    ///
    /// Runtime fault handling uses this to find the instances *hosted*
    /// on a device (their prototype is pinned to it) when that device
    /// crashes, so they can be unregistered until it recovers.
    pub fn instances(&self) -> impl Iterator<Item = &ServiceDescriptor> {
        self.by_type.values().flat_map(|bucket| bucket.iter())
    }

    /// Finds the instance closest to the query, or `None` when nothing
    /// eligible is registered ("it is possible that no discovered
    /// component is returned for a particular service").
    pub fn discover(&self, query: &DiscoveryQuery) -> Option<Discovered> {
        self.discover_all(query).into_iter().next()
    }

    /// All eligible instances, best first (score descending, then
    /// domain-local instances before inherited/global ones — the
    /// "closest" instance in the smart-space hierarchy — then instance id
    /// ascending for determinism).
    ///
    /// Repeat queries at an unchanged epoch are answered from the memo
    /// without scanning the type bucket; the returned vector is a clone
    /// of exactly what the scan produced, so the memo is observationally
    /// transparent.
    pub fn discover_all(&self, query: &DiscoveryQuery) -> Vec<Discovered> {
        let start = Instant::now();
        let mut key: Option<String> = None;
        {
            let mut memo = self.memo.lock().unwrap_or_else(|e| e.into_inner());
            memo.stats.queries += 1;
            if memo.enabled {
                // Debug rendering of the query is deterministic (BTreeMap
                // dimensions, exact float formatting) and cheaper than a
                // serializer round-trip.
                let k = format!("{query:?}");
                let cached = memo
                    .entries
                    .get(&k)
                    .and_then(|(epoch, hits)| (*epoch == self.epoch).then(|| hits.clone()));
                if let Some(out) = cached {
                    memo.stats.memo_hits += 1;
                    memo.stats.wall_nanos += start.elapsed().as_nanos();
                    return out;
                }
                key = Some(k);
            }
        }
        let hits = self.scan_discover(query);
        let mut memo = self.memo.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(k) = key {
            if memo.entries.len() >= MEMO_CAP {
                let epoch = self.epoch;
                memo.entries.retain(|_, (e, _)| *e == epoch);
                if memo.entries.len() >= MEMO_CAP {
                    memo.entries.clear();
                }
            }
            memo.entries.insert(k, (self.epoch, hits.clone()));
        }
        memo.stats.wall_nanos += start.elapsed().as_nanos();
        hits
    }

    /// The uncached bucket scan behind [`ServiceRegistry::discover_all`].
    fn scan_discover(&self, query: &DiscoveryQuery) -> Vec<Discovered> {
        let Some(bucket) = self.by_type.get(&query.service_type) else {
            return Vec::new();
        };
        let mut hits: Vec<Discovered> = bucket
            .iter()
            .filter(|d| self.visible_from(d.domain, query.domain))
            .filter_map(|d| {
                score(d, query).map(|s| Discovered {
                    descriptor: d.clone(),
                    score: s,
                })
            })
            .collect();
        let locality = |d: &ServiceDescriptor| -> u8 {
            u8::from(query.domain.is_some() && d.domain == query.domain)
        };
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| locality(&b.descriptor).cmp(&locality(&a.descriptor)))
                .then_with(|| a.descriptor.instance_id.cmp(&b.descriptor.instance_id))
        });
        hits
    }

    /// Whether an instance in `instance_domain` is visible to a query
    /// scoped to `query_domain`.
    ///
    /// Global instances (`None`) are visible everywhere; a global query
    /// sees everything; otherwise the instance's domain must be the query
    /// domain or one of its ancestors.
    fn visible_from(
        &self,
        instance_domain: Option<DomainId>,
        query_domain: Option<DomainId>,
    ) -> bool {
        match (instance_domain, query_domain) {
            (None, _) | (_, None) => true,
            (Some(inst), Some(query)) => {
                let mut cursor = Some(query);
                while let Some(d) = cursor {
                    if d == inst {
                        return true;
                    }
                    cursor = self.domains.get(d.index()).and_then(|dom| dom.parent);
                }
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_graph::ServiceComponent;
    use ubiqos_model::{QosDimension as D, QosValue, QosVector};

    fn desc(id: &str, ty: &str) -> ServiceDescriptor {
        ServiceDescriptor::new(id, ty, ServiceComponent::builder(ty).build())
    }

    fn registry_with_hierarchy() -> (ServiceRegistry, DomainId, DomainId, DomainId) {
        let mut r = ServiceRegistry::new();
        let campus = r.add_domain("campus", None);
        let building = r.add_domain("building", Some(campus));
        let office = r.add_domain("office", Some(building));
        (r, campus, building, office)
    }

    #[test]
    fn register_discover_unregister() {
        let mut r = ServiceRegistry::new();
        r.register(desc("a1", "audio-server"));
        assert_eq!(r.instance_count(), 1);
        let hit = r.discover(&DiscoveryQuery::new("audio-server")).unwrap();
        assert_eq!(hit.descriptor.instance_id, "a1");
        assert!(r.discover(&DiscoveryQuery::new("video-server")).is_none());
        assert!(r.unregister("a1").is_some());
        assert!(r.unregister("a1").is_none());
        assert_eq!(r.instance_count(), 0);
    }

    #[test]
    fn reregistration_replaces() {
        let mut r = ServiceRegistry::new();
        r.register(desc("a1", "audio-server").with_code_size_mb(1.0));
        r.register(desc("a1", "audio-server").with_code_size_mb(9.0));
        assert_eq!(r.instance_count(), 1);
        let hit = r.discover(&DiscoveryQuery::new("audio-server")).unwrap();
        assert_eq!(hit.descriptor.code_size_mb, 9.0);
    }

    #[test]
    fn hierarchical_visibility() {
        let (mut r, campus, building, office) = registry_with_hierarchy();
        r.register(desc("in-campus", "printer").in_domain(campus));
        r.register(desc("in-office", "printer").in_domain(office));

        // Query from the office sees both (campus is an ancestor).
        let from_office = r.discover_all(&DiscoveryQuery::new("printer").in_domain(office));
        assert_eq!(from_office.len(), 2);

        // Query from the building sees only the campus instance.
        let from_building = r.discover_all(&DiscoveryQuery::new("printer").in_domain(building));
        assert_eq!(from_building.len(), 1);
        assert_eq!(from_building[0].descriptor.instance_id, "in-campus");

        // A global query sees everything.
        let global = r.discover_all(&DiscoveryQuery::new("printer"));
        assert_eq!(global.len(), 2);
    }

    #[test]
    fn unregister_domain_drops_departed_devices() {
        let (mut r, _, _, office) = registry_with_hierarchy();
        r.register(desc("x", "cam").in_domain(office));
        r.register(desc("y", "cam").in_domain(office));
        r.register(desc("z", "cam"));
        assert_eq!(r.unregister_domain(office), 2);
        assert_eq!(r.instance_count(), 1);
    }

    #[test]
    fn best_match_ordering_prefers_qos_over_registration_order() {
        let mut r = ServiceRegistry::new();
        // A JPEG player registered first, a WAV player second.
        r.register(ServiceDescriptor::new(
            "jpeg-player",
            "audio-player",
            ServiceComponent::builder("audio-player")
                .qos_out(QosVector::new().with(D::Format, QosValue::token("JPEG")))
                .build(),
        ));
        r.register(ServiceDescriptor::new(
            "wav-player",
            "audio-player",
            ServiceComponent::builder("audio-player")
                .qos_out(QosVector::new().with(D::Format, QosValue::token("WAV")))
                .build(),
        ));
        let q = DiscoveryQuery::new("audio-player")
            .with_desired_qos(QosVector::new().with(D::Format, QosValue::token("WAV")));
        let hits = r.discover_all(&q);
        assert_eq!(hits[0].descriptor.instance_id, "wav-player");
        assert_eq!(hits.len(), 2, "imperfect matches are still returned");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn domain_local_instances_win_score_ties() {
        let (mut r, campus, _, office) = registry_with_hierarchy();
        // Identical prototypes: a global instance, a campus-wide one, and
        // an office-local one — all tie on score. The office query must
        // get its own room's instance first, regardless of instance ids.
        r.register(desc("a-global", "printer"));
        r.register(desc("b-campus", "printer").in_domain(campus));
        r.register(desc("z-office", "printer").in_domain(office));
        let hits = r.discover_all(&DiscoveryQuery::new("printer").in_domain(office));
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].descriptor.instance_id, "z-office");
        // A global query has no locality; ids break the tie.
        let global = r.discover_all(&DiscoveryQuery::new("printer"));
        assert_eq!(global[0].descriptor.instance_id, "a-global");
    }

    #[test]
    fn deterministic_tie_break_by_instance_id() {
        let mut r = ServiceRegistry::new();
        r.register(desc("b", "x"));
        r.register(desc("a", "x"));
        let hits = r.discover_all(&DiscoveryQuery::new("x"));
        assert_eq!(hits[0].descriptor.instance_id, "a");
    }

    #[test]
    fn epoch_bumps_on_every_mutation_only() {
        let mut r = ServiceRegistry::new();
        assert_eq!(r.epoch(), 0);
        r.register(desc("a1", "audio-server"));
        assert_eq!(r.epoch(), 1);
        r.register(desc("a1", "audio-server")); // replacement still mutates
        assert_eq!(r.epoch(), 2);
        assert!(r.unregister("a1").is_some());
        assert_eq!(r.epoch(), 3);
        assert!(r.unregister("a1").is_none()); // no-op: no bump
        assert_eq!(r.epoch(), 3);
        let _ = r.discover_all(&DiscoveryQuery::new("audio-server")); // reads never bump
        assert_eq!(r.epoch(), 3);
    }

    #[test]
    fn changed_types_are_tracked_per_epoch() {
        let mut r = ServiceRegistry::new();
        r.register(desc("a1", "audio-server"));
        let mark = r.epoch();
        assert_eq!(r.changed_types_since(mark), Some(BTreeSet::new()));
        r.register(desc("v1", "video-server"));
        let changed = r.changed_types_since(mark).unwrap();
        assert_eq!(changed, BTreeSet::from(["video-server"]));
        r.unregister("a1");
        let changed = r.changed_types_since(mark).unwrap();
        assert_eq!(changed, BTreeSet::from(["audio-server", "video-server"]));
        // Prehistoric epochs cannot be answered after a changelog flush.
        let mut long = ServiceRegistry::new();
        for i in 0..(CHANGELOG_CAP + 8) {
            long.register(desc(&format!("i{i}"), "x"));
        }
        assert!(long.changed_types_since(0).is_none());
        assert!(long.changed_types_since(long.epoch()).is_some());
    }

    #[test]
    fn hosted_on_tracks_pins_through_churn() {
        use ubiqos_graph::DeviceId;
        let mut r = ServiceRegistry::new();
        let pinned = |id: &str, dev: usize| {
            ServiceDescriptor::new(
                id,
                "cam",
                ServiceComponent::builder("cam")
                    .pinned_to(DeviceId::from_index(dev))
                    .build(),
            )
        };
        r.register(pinned("c0", 0));
        r.register(pinned("c1", 1));
        r.register(pinned("c2", 0));
        r.register(desc("free", "cam"));
        let on0: Vec<&str> = r
            .hosted_on(0)
            .iter()
            .map(|d| d.instance_id.as_str())
            .collect();
        assert_eq!(on0, vec!["c0", "c2"]);
        assert_eq!(r.hosted_on(2).len(), 0);
        r.unregister("c0");
        assert_eq!(r.hosted_on(0).len(), 1);
        // Re-registering under a different pin moves it between hosts.
        r.register(pinned("c2", 1));
        assert_eq!(r.hosted_on(0).len(), 0);
        assert_eq!(r.hosted_on(1).len(), 2);
    }

    #[test]
    fn leases_expire_renew_and_stay_epoch_neutral() {
        let mut r = ServiceRegistry::new();
        assert_eq!(r.lease_expiry(0), None);
        assert!(r.expired_leases(u64::MAX).is_empty());
        r.renew_lease(0, 1_000);
        r.renew_lease(1, 2_000);
        r.renew_lease(2, 3_000);
        // Renewals are lease-table-only: no epoch bump, no churn.
        assert_eq!(r.epoch(), 0);
        assert_eq!(r.lease_expiry(1), Some(2_000));
        assert_eq!(r.expired_leases(999), Vec::<usize>::new());
        assert_eq!(r.expired_leases(2_000), vec![0, 1]);
        // Renewing pushes the expiry out; revoking removes the lease so
        // the same expiry is never acted on twice.
        r.renew_lease(0, 5_000);
        assert_eq!(r.expired_leases(2_000), vec![1]);
        r.revoke_lease(1);
        assert_eq!(r.expired_leases(u64::MAX), vec![0, 2]);
        // Clones carry the lease table; serialization does not (a fresh
        // detector starts with no leases).
        let cloned = r.clone();
        assert_eq!(cloned.lease_expiry(0), Some(5_000));
        let json = serde_json::to_string(&r).unwrap();
        let restored: ServiceRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.lease_expiry(0), None);
    }

    #[test]
    fn format_index_covers_in_and_out_tokens() {
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescriptor::new(
            "src",
            "source",
            ServiceComponent::builder("source")
                .qos_out(QosVector::new().with(D::Format, QosValue::token("MPEG")))
                .build(),
        ));
        r.register(ServiceDescriptor::new(
            "snk",
            "sink",
            ServiceComponent::builder("sink")
                .qos_in(QosVector::new().with(D::Format, QosValue::token("WAV")))
                .build(),
        ));
        let mpeg: Vec<&str> = r
            .instances_with_format("MPEG")
            .iter()
            .map(|d| d.instance_id.as_str())
            .collect();
        assert_eq!(mpeg, vec!["src"]);
        assert_eq!(r.instances_with_format("WAV").len(), 1);
        assert_eq!(r.instances_with_format("JPEG").len(), 0);
        r.unregister("src");
        assert_eq!(r.instances_with_format("MPEG").len(), 0);
    }

    #[test]
    fn memo_hits_repeat_queries_and_invalidates_on_epoch() {
        let mut r = ServiceRegistry::new();
        r.register(desc("b", "x"));
        r.register(desc("a", "x"));
        let q = DiscoveryQuery::new("x");
        let first = r.discover_all(&q);
        let second = r.discover_all(&q);
        assert_eq!(first, second);
        let stats = r.discovery_stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.memo_hits, 1, "second identical query is a memo hit");
        // A mutation bumps the epoch: the next query re-scans.
        r.register(desc("c", "x"));
        let third = r.discover_all(&q);
        assert_eq!(third.len(), 3);
        assert_eq!(r.discovery_stats().memo_hits, 1);
        // With the memo disabled, results are identical and hits stop.
        let mut plain = r.clone();
        plain.set_query_memo(false);
        assert_eq!(plain.discover_all(&q), r.discover_all(&q));
        assert_eq!(
            plain.discovery_stats().memo_hits,
            r.discovery_stats().memo_hits - 1
        );
    }

    #[test]
    fn deserialized_registry_rebuilds_indexes_lazily() {
        use ubiqos_graph::DeviceId;
        let mut r = ServiceRegistry::new();
        r.register(desc("a1", "audio-server"));
        r.register(ServiceDescriptor::new(
            "h0",
            "cam",
            ServiceComponent::builder("cam")
                .pinned_to(DeviceId::from_index(0))
                .build(),
        ));
        let json = serde_json::to_string(&r).unwrap();
        let mut back: ServiceRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back.epoch(), r.epoch());
        // Read accessors fall back to scans before any mutation...
        assert_eq!(back.hosted_on(0).len(), 1);
        assert_eq!(back.lookup("a1").unwrap().service_type, "audio-server");
        // ...and the first mutation rebuilds the indexes for real.
        assert!(back.unregister("a1").is_some());
        assert_eq!(back.instance_count(), 1);
        assert_eq!(back.hosted_on(0).len(), 1);
        assert!(back.changed_types_since(r.epoch()).is_some());
    }

    #[test]
    fn domain_accessors() {
        let (r, campus, _, office) = registry_with_hierarchy();
        assert_eq!(r.domain_count(), 3);
        assert_eq!(r.domain(campus).unwrap().name, "campus");
        assert!(r.domain(office).unwrap().parent.is_some());
        assert!(r.domain(DomainId::from_index(99)).is_none());
    }

    #[test]
    fn domain_tree_helpers() {
        let (mut r, campus, building, office) = registry_with_hierarchy();
        let lab = r.add_domain("lab", Some(building));
        assert_eq!(r.children(campus), vec![building]);
        assert_eq!(r.children(building), vec![office, lab]);
        assert!(r.children(office).is_empty());
        assert_eq!(r.ancestors(office), vec![building, campus]);
        assert!(r.ancestors(campus).is_empty());
    }

    #[test]
    fn resolution_order_is_self_ancestors_siblings_rest() {
        let (mut r, campus, building, office) = registry_with_hierarchy();
        let lab = r.add_domain("lab", Some(building));
        let annex = r.add_domain("annex", Some(campus));
        // office: itself, parents nearest-first, sibling lab, then the
        // remaining domain (annex) in id order. Each exactly once.
        assert_eq!(
            r.resolution_order(office),
            vec![office, building, campus, lab, annex]
        );
        // A root has no ancestors or siblings; the rest follow in order.
        assert_eq!(
            r.resolution_order(campus),
            vec![campus, building, office, lab, annex]
        );
    }
}
