//! The per-smart-space service registry.

use crate::descriptor::ServiceDescriptor;
use crate::domain::{Domain, DomainId};
use crate::matching::{score, Discovered};
use crate::query::DiscoveryQuery;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Registry of domains and service instances for one smart space.
///
/// Lookup is domain-aware: a query scoped to a domain sees instances
/// registered in that domain *or any of its ancestors* (an office inherits
/// the building's services), plus globally registered instances. This
/// models the hierarchical smart-space structure of Section 1.
///
/// Registration is dynamic — "many devices and services coming and going
/// frequently" — so instances can be [`ServiceRegistry::unregister`]ed at
/// any time, which is what triggers recomposition in the runtime.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServiceRegistry {
    domains: Vec<Domain>,
    /// Instances bucketed by service type for O(bucket) discovery.
    by_type: BTreeMap<String, Vec<ServiceDescriptor>>,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a domain to the hierarchy, returning its id.
    pub fn add_domain(&mut self, name: impl Into<String>, parent: Option<DomainId>) -> DomainId {
        let id = DomainId::from_index(self.domains.len());
        self.domains.push(Domain::new(name, parent));
        id
    }

    /// Borrows a domain.
    pub fn domain(&self, id: DomainId) -> Option<&Domain> {
        self.domains.get(id.index())
    }

    /// The number of registered domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Registers a service instance. Re-registering the same
    /// `instance_id` replaces the previous descriptor.
    pub fn register(&mut self, descriptor: ServiceDescriptor) {
        let bucket = self
            .by_type
            .entry(descriptor.service_type.clone())
            .or_default();
        bucket.retain(|d| d.instance_id != descriptor.instance_id);
        bucket.push(descriptor);
    }

    /// Removes an instance by id, returning it if it was registered.
    pub fn unregister(&mut self, instance_id: &str) -> Option<ServiceDescriptor> {
        for bucket in self.by_type.values_mut() {
            if let Some(pos) = bucket.iter().position(|d| d.instance_id == instance_id) {
                return Some(bucket.remove(pos));
            }
        }
        None
    }

    /// Removes every instance registered in `domain` (e.g. the user left
    /// the room and its devices went out of scope). Returns how many were
    /// removed.
    pub fn unregister_domain(&mut self, domain: DomainId) -> usize {
        let mut removed = 0;
        for bucket in self.by_type.values_mut() {
            let before = bucket.len();
            bucket.retain(|d| d.domain != Some(domain));
            removed += before - bucket.len();
        }
        removed
    }

    /// The number of registered instances.
    pub fn instance_count(&self) -> usize {
        self.by_type.values().map(Vec::len).sum()
    }

    /// Iterates over every registered instance, in service-type order.
    ///
    /// Runtime fault handling uses this to find the instances *hosted*
    /// on a device (their prototype is pinned to it) when that device
    /// crashes, so they can be unregistered until it recovers.
    pub fn instances(&self) -> impl Iterator<Item = &ServiceDescriptor> {
        self.by_type.values().flat_map(|bucket| bucket.iter())
    }

    /// Finds the instance closest to the query, or `None` when nothing
    /// eligible is registered ("it is possible that no discovered
    /// component is returned for a particular service").
    pub fn discover(&self, query: &DiscoveryQuery) -> Option<Discovered> {
        self.discover_all(query).into_iter().next()
    }

    /// All eligible instances, best first (score descending, then
    /// domain-local instances before inherited/global ones — the
    /// "closest" instance in the smart-space hierarchy — then instance id
    /// ascending for determinism).
    pub fn discover_all(&self, query: &DiscoveryQuery) -> Vec<Discovered> {
        let Some(bucket) = self.by_type.get(&query.service_type) else {
            return Vec::new();
        };
        let mut hits: Vec<Discovered> = bucket
            .iter()
            .filter(|d| self.visible_from(d.domain, query.domain))
            .filter_map(|d| {
                score(d, query).map(|s| Discovered {
                    descriptor: d.clone(),
                    score: s,
                })
            })
            .collect();
        let locality = |d: &ServiceDescriptor| -> u8 {
            u8::from(query.domain.is_some() && d.domain == query.domain)
        };
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| locality(&b.descriptor).cmp(&locality(&a.descriptor)))
                .then_with(|| a.descriptor.instance_id.cmp(&b.descriptor.instance_id))
        });
        hits
    }

    /// Whether an instance in `instance_domain` is visible to a query
    /// scoped to `query_domain`.
    ///
    /// Global instances (`None`) are visible everywhere; a global query
    /// sees everything; otherwise the instance's domain must be the query
    /// domain or one of its ancestors.
    fn visible_from(
        &self,
        instance_domain: Option<DomainId>,
        query_domain: Option<DomainId>,
    ) -> bool {
        match (instance_domain, query_domain) {
            (None, _) | (_, None) => true,
            (Some(inst), Some(query)) => {
                let mut cursor = Some(query);
                while let Some(d) = cursor {
                    if d == inst {
                        return true;
                    }
                    cursor = self.domains.get(d.index()).and_then(|dom| dom.parent);
                }
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_graph::ServiceComponent;
    use ubiqos_model::{QosDimension as D, QosValue, QosVector};

    fn desc(id: &str, ty: &str) -> ServiceDescriptor {
        ServiceDescriptor::new(id, ty, ServiceComponent::builder(ty).build())
    }

    fn registry_with_hierarchy() -> (ServiceRegistry, DomainId, DomainId, DomainId) {
        let mut r = ServiceRegistry::new();
        let campus = r.add_domain("campus", None);
        let building = r.add_domain("building", Some(campus));
        let office = r.add_domain("office", Some(building));
        (r, campus, building, office)
    }

    #[test]
    fn register_discover_unregister() {
        let mut r = ServiceRegistry::new();
        r.register(desc("a1", "audio-server"));
        assert_eq!(r.instance_count(), 1);
        let hit = r.discover(&DiscoveryQuery::new("audio-server")).unwrap();
        assert_eq!(hit.descriptor.instance_id, "a1");
        assert!(r.discover(&DiscoveryQuery::new("video-server")).is_none());
        assert!(r.unregister("a1").is_some());
        assert!(r.unregister("a1").is_none());
        assert_eq!(r.instance_count(), 0);
    }

    #[test]
    fn reregistration_replaces() {
        let mut r = ServiceRegistry::new();
        r.register(desc("a1", "audio-server").with_code_size_mb(1.0));
        r.register(desc("a1", "audio-server").with_code_size_mb(9.0));
        assert_eq!(r.instance_count(), 1);
        let hit = r.discover(&DiscoveryQuery::new("audio-server")).unwrap();
        assert_eq!(hit.descriptor.code_size_mb, 9.0);
    }

    #[test]
    fn hierarchical_visibility() {
        let (mut r, campus, building, office) = registry_with_hierarchy();
        r.register(desc("in-campus", "printer").in_domain(campus));
        r.register(desc("in-office", "printer").in_domain(office));

        // Query from the office sees both (campus is an ancestor).
        let from_office = r.discover_all(&DiscoveryQuery::new("printer").in_domain(office));
        assert_eq!(from_office.len(), 2);

        // Query from the building sees only the campus instance.
        let from_building = r.discover_all(&DiscoveryQuery::new("printer").in_domain(building));
        assert_eq!(from_building.len(), 1);
        assert_eq!(from_building[0].descriptor.instance_id, "in-campus");

        // A global query sees everything.
        let global = r.discover_all(&DiscoveryQuery::new("printer"));
        assert_eq!(global.len(), 2);
    }

    #[test]
    fn unregister_domain_drops_departed_devices() {
        let (mut r, _, _, office) = registry_with_hierarchy();
        r.register(desc("x", "cam").in_domain(office));
        r.register(desc("y", "cam").in_domain(office));
        r.register(desc("z", "cam"));
        assert_eq!(r.unregister_domain(office), 2);
        assert_eq!(r.instance_count(), 1);
    }

    #[test]
    fn best_match_ordering_prefers_qos_over_registration_order() {
        let mut r = ServiceRegistry::new();
        // A JPEG player registered first, a WAV player second.
        r.register(ServiceDescriptor::new(
            "jpeg-player",
            "audio-player",
            ServiceComponent::builder("audio-player")
                .qos_out(QosVector::new().with(D::Format, QosValue::token("JPEG")))
                .build(),
        ));
        r.register(ServiceDescriptor::new(
            "wav-player",
            "audio-player",
            ServiceComponent::builder("audio-player")
                .qos_out(QosVector::new().with(D::Format, QosValue::token("WAV")))
                .build(),
        ));
        let q = DiscoveryQuery::new("audio-player")
            .with_desired_qos(QosVector::new().with(D::Format, QosValue::token("WAV")));
        let hits = r.discover_all(&q);
        assert_eq!(hits[0].descriptor.instance_id, "wav-player");
        assert_eq!(hits.len(), 2, "imperfect matches are still returned");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn domain_local_instances_win_score_ties() {
        let (mut r, campus, _, office) = registry_with_hierarchy();
        // Identical prototypes: a global instance, a campus-wide one, and
        // an office-local one — all tie on score. The office query must
        // get its own room's instance first, regardless of instance ids.
        r.register(desc("a-global", "printer"));
        r.register(desc("b-campus", "printer").in_domain(campus));
        r.register(desc("z-office", "printer").in_domain(office));
        let hits = r.discover_all(&DiscoveryQuery::new("printer").in_domain(office));
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].descriptor.instance_id, "z-office");
        // A global query has no locality; ids break the tie.
        let global = r.discover_all(&DiscoveryQuery::new("printer"));
        assert_eq!(global[0].descriptor.instance_id, "a-global");
    }

    #[test]
    fn deterministic_tie_break_by_instance_id() {
        let mut r = ServiceRegistry::new();
        r.register(desc("b", "x"));
        r.register(desc("a", "x"));
        let hits = r.discover_all(&DiscoveryQuery::new("x"));
        assert_eq!(hits[0].descriptor.instance_id, "a");
    }

    #[test]
    fn domain_accessors() {
        let (r, campus, _, office) = registry_with_hierarchy();
        assert_eq!(r.domain_count(), 3);
        assert_eq!(r.domain(campus).unwrap().name, "campus");
        assert!(r.domain(office).unwrap().parent.is_some());
        assert!(r.domain(DomainId::from_index(99)).is_none());
    }
}
