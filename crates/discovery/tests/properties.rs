//! Property-based tests for the discovery registry.

use proptest::prelude::*;
use ubiqos_discovery::{DiscoveryQuery, DomainId, ServiceDescriptor, ServiceRegistry};
use ubiqos_graph::ServiceComponent;
use ubiqos_model::{QosDimension, QosValue, QosVector, ResourceVector};

fn descriptor(id: usize, ty: u8, mem: f64, fmt: &str) -> ServiceDescriptor {
    ServiceDescriptor::new(
        format!("inst-{id}"),
        format!("type-{ty}"),
        ServiceComponent::builder(format!("type-{ty}"))
            .qos_out(QosVector::new().with(QosDimension::Format, QosValue::token(fmt)))
            .resources(ResourceVector::mem_cpu(mem, 10.0))
            .build(),
    )
}

#[derive(Debug, Clone)]
enum Op {
    Register { ty: u8, mem: f64, fmt: bool },
    Unregister(usize),
    UnregisterDomain(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..4, 1.0f64..200.0, prop::bool::ANY)
            .prop_map(|(ty, mem, fmt)| Op::Register { ty, mem, fmt }),
        1 => (0usize..64).prop_map(Op::Unregister),
        1 => (0u8..3).prop_map(Op::UnregisterDomain),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Instance counting stays consistent under arbitrary register /
    /// unregister sequences, and discovery results are always sorted.
    #[test]
    fn registry_bookkeeping_is_consistent(ops in proptest::collection::vec(arb_op(), 1..50)) {
        let mut registry = ServiceRegistry::new();
        let d0 = registry.add_domain("a", None);
        let d1 = registry.add_domain("b", Some(d0));
        let d2 = registry.add_domain("c", Some(d1));
        let domains = [d0, d1, d2];
        let mut next_id = 0usize;
        let mut live: Vec<(usize, u8)> = Vec::new();
        let mut live_domains: Vec<Option<DomainId>> = Vec::new();

        for op in ops {
            match op {
                Op::Register { ty, mem, fmt } => {
                    let id = next_id;
                    next_id += 1;
                    let domain = domains.get(id % 4).copied();
                    let mut d = descriptor(id, ty, mem, if fmt { "MPEG" } else { "WAV" });
                    if let Some(dom) = domain {
                        d = d.in_domain(dom);
                    }
                    registry.register(d);
                    live.push((id, ty));
                    live_domains.push(domain);
                }
                Op::Unregister(pick) => {
                    if !live.is_empty() {
                        let idx = pick % live.len();
                        let (id, _) = live.remove(idx);
                        live_domains.remove(idx);
                        let instance_id = format!("inst-{id}");
                        prop_assert!(registry.unregister(&instance_id).is_some());
                    }
                }
                Op::UnregisterDomain(which) => {
                    let dom = domains[which as usize];
                    let expect = live_domains.iter().filter(|d| **d == Some(dom)).count();
                    let removed = registry.unregister_domain(dom);
                    prop_assert_eq!(removed, expect);
                    let keep: Vec<bool> = live_domains.iter().map(|d| *d != Some(dom)).collect();
                    let mut it = keep.iter();
                    live.retain(|_| *it.next().unwrap());
                    let mut it = keep.iter();
                    live_domains.retain(|_| *it.next().unwrap());
                }
            }
            prop_assert_eq!(registry.instance_count(), live.len());
            // Global discovery per type sees exactly the live instances of
            // that type, best-first.
            for ty in 0u8..4 {
                let hits = registry.discover_all(&DiscoveryQuery::new(format!("type-{ty}")));
                let expected = live.iter().filter(|&&(_, t)| t == ty).count();
                prop_assert_eq!(hits.len(), expected);
                for pair in hits.windows(2) {
                    prop_assert!(pair[0].score >= pair[1].score - 1e-12);
                }
            }
        }
    }

    /// Domain visibility is monotone along the ancestry chain: anything a
    /// parent-scoped query sees, a child-scoped query sees too.
    #[test]
    fn visibility_is_monotone_down_the_hierarchy(
        placements in proptest::collection::vec(0usize..4, 1..20)
    ) {
        let mut registry = ServiceRegistry::new();
        let root = registry.add_domain("root", None);
        let mid = registry.add_domain("mid", Some(root));
        let leaf = registry.add_domain("leaf", Some(mid));
        let domains = [None, Some(root), Some(mid), Some(leaf)];
        for (i, &p) in placements.iter().enumerate() {
            let mut d = descriptor(i, 0, 4.0, "WAV");
            if let Some(dom) = domains[p] {
                d = d.in_domain(dom);
            }
            registry.register(d);
        }
        let count = |domain: Option<DomainId>| {
            let mut q = DiscoveryQuery::new("type-0");
            if let Some(d) = domain {
                q = q.in_domain(d);
            }
            registry.discover_all(&q).len()
        };
        prop_assert!(count(Some(root)) <= count(Some(mid)));
        prop_assert!(count(Some(mid)) <= count(Some(leaf)));
        prop_assert!(count(Some(leaf)) <= count(None), "global sees everything");
        prop_assert_eq!(count(None), placements.len());
    }

    /// The matcher's footprint tie-break is stable: among equally-matching
    /// candidates, discovery prefers lighter instances.
    #[test]
    fn lighter_instances_rank_first_on_ties(mems in proptest::collection::vec(1.0f64..500.0, 2..10)) {
        let mut registry = ServiceRegistry::new();
        for (i, &mem) in mems.iter().enumerate() {
            registry.register(descriptor(i, 0, mem, "WAV"));
        }
        let hits = registry.discover_all(&DiscoveryQuery::new("type-0"));
        let got: Vec<f64> = hits
            .iter()
            .map(|h| h.descriptor.prototype.resources()[0])
            .collect();
        let mut sorted = got.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(got, sorted);
    }
}
