//! The distributor interface shared by all placement algorithms.

use crate::error::DistributionError;
use crate::problem::OsdProblem;
use ubiqos_graph::Cut;

/// A service distribution algorithm: maps an OSD problem instance to a
/// k-cut that fits the environment.
///
/// Implementations take `&mut self` so stochastic algorithms (the random
/// baseline) can own their RNG state; deterministic algorithms simply
/// ignore the mutability. The trait is object-safe: simulation policies
/// hold `Box<dyn ServiceDistributor>`.
pub trait ServiceDistributor {
    /// A short stable name for reports ("heuristic", "random", "optimal").
    fn name(&self) -> &str;

    /// Finds a cut that fits the problem's environment.
    ///
    /// # Errors
    ///
    /// * [`DistributionError::Infeasible`] — the algorithm found no
    ///   fitting cut (for the exhaustive optimal this proves none exists;
    ///   for the heuristic and random baselines it is a best-effort
    ///   answer, counted as a failed configuration request in the
    ///   experiments);
    /// * [`DistributionError::NoDevices`] / [`DistributionError::InvalidPin`]
    ///   — structurally invalid problems.
    fn distribute(&mut self, problem: &OsdProblem<'_>) -> Result<Cut, DistributionError>;
}

/// Shared pre-flight for distributors: validates the problem and places
/// pinned components, returning the initial partial assignment and
/// per-device residual availabilities.
///
/// Returns `(assignment, residuals)` where `assignment[c]` is
/// `Some(device)` for pinned components.
pub(crate) fn seed_with_pins(
    problem: &OsdProblem<'_>,
) -> Result<(Vec<Option<usize>>, Vec<ubiqos_model::ResourceVector>), DistributionError> {
    problem.validate()?;
    let graph = problem.graph();
    let env = problem.env();
    let mut assignment: Vec<Option<usize>> = vec![None; graph.component_count()];
    let mut residual: Vec<ubiqos_model::ResourceVector> = env
        .devices()
        .iter()
        .map(|d| d.availability().clone())
        .collect();
    for (id, c) in graph.components() {
        if let Some(pin) = c.pinned_to() {
            let d = pin.index();
            if !c.resources().fits_within(&residual[d]) {
                return Err(DistributionError::Infeasible {
                    reason: format!(
                        "pinned component {} does not fit device {}",
                        c.name(),
                        env.devices()[d].name()
                    ),
                });
            }
            residual[d] = residual[d].saturating_sub(c.resources())?;
            assignment[id.index()] = Some(d);
        }
    }
    Ok((assignment, residual))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::environment::Environment;
    use ubiqos_graph::{DeviceId, ServiceComponent, ServiceGraph};
    use ubiqos_model::{ResourceVector, Weights};

    #[test]
    fn seed_places_pins_and_charges_residuals() {
        let mut g = ServiceGraph::new();
        g.add_component(ServiceComponent::builder("free").build());
        g.add_component(
            ServiceComponent::builder("display")
                .resources(ResourceVector::mem_cpu(10.0, 20.0))
                .pinned_to(DeviceId::from_index(1))
                .build(),
        );
        let env = Environment::builder()
            .device(Device::new("d0", ResourceVector::mem_cpu(100.0, 100.0)))
            .device(Device::new("d1", ResourceVector::mem_cpu(32.0, 50.0)))
            .build();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let (assignment, residual) = seed_with_pins(&p).unwrap();
        assert_eq!(assignment, vec![None, Some(1)]);
        assert_eq!(residual[1].amounts(), &[22.0, 30.0]);
        assert_eq!(residual[0].amounts(), &[100.0, 100.0]);
    }

    #[test]
    fn seed_rejects_oversized_pin() {
        let mut g = ServiceGraph::new();
        g.add_component(
            ServiceComponent::builder("hog")
                .resources(ResourceVector::mem_cpu(64.0, 10.0))
                .pinned_to(DeviceId::from_index(0))
                .build(),
        );
        let env = Environment::builder()
            .device(Device::new("pda", ResourceVector::mem_cpu(32.0, 50.0)))
            .build();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        assert!(matches!(
            seed_with_pins(&p),
            Err(DistributionError::Infeasible { .. })
        ));
    }
}
