//! Precomputed cost tables and admissible lower bounds for the
//! branch-and-bound OSD solver.
//!
//! [`NodeCostTable`] is built once per `distribute` call and serves two
//! purposes:
//!
//! 1. **Exact end-system deltas.** `end_system(pos, d)` is the cost
//!    increment (Definition 3.5's weighted `r / ra` terms) of placing the
//!    component at visiting-order position `pos` onto device `d`. The
//!    search used to recompute this inner loop at every node; now it is a
//!    table lookup. The summation order matches the old inline loop
//!    exactly, so partial costs along any root-to-leaf path are
//!    bit-identical to what the previous solver accumulated.
//! 2. **Admissible suffix bounds.** `suffix(pos)` underestimates the cost
//!    still to be paid by the components at positions `pos..`: each must
//!    incur at least its cheapest end-system delta over *all* devices
//!    (capacity only removes options, never adds cheaper ones), and every
//!    network term of Definition 3.5 is non-negative. Branches with
//!    `partial + suffix(depth) > incumbent` therefore cannot contain a
//!    strictly better leaf — nor an equal-cost one, since the inequality
//!    is strict — and are safe to cut even under the solver's
//!    lexicographic tie-breaking rule.
//!
//! The suffix sums are scaled down by a one-part-per-billion slack factor
//! before use. Summing the per-position minima rounds each intermediate
//! result, so the raw sum can exceed the true remaining cost by a few
//! ulps; the slack restores a strict underestimate while giving up a
//! vanishing amount of pruning power.

use crate::problem::OsdProblem;
use ubiqos_graph::ComponentId;
use ubiqos_model::EPSILON;

/// Relative slack applied to the suffix sums so floating-point rounding
/// in their accumulation can never turn the lower bound into an
/// overestimate (see module docs).
const SUFFIX_SLACK: f64 = 1.0 - 1e-9;

/// Per-(position, device) end-system cost deltas plus admissible
/// remaining-cost lower bounds, precomputed for one visiting order.
#[derive(Debug, Clone)]
pub struct NodeCostTable {
    /// `end_system[pos][d]`: end-system cost of placing `order[pos]` on
    /// device `d`, or `f64::INFINITY` when the device lacks a resource
    /// the component needs (the "unusable" case).
    end_system: Vec<Vec<f64>>,
    /// `suffix[pos]`: admissible lower bound on the cost still to be
    /// incurred by `order[pos..]`; `suffix[order.len()] == 0`.
    suffix: Vec<f64>,
}

impl NodeCostTable {
    /// Builds the table for `order` (the free components in visiting
    /// order) against the problem's devices and weights.
    pub fn build(problem: &OsdProblem<'_>, order: &[ComponentId]) -> Self {
        let graph = problem.graph();
        let env = problem.env();
        let weights = problem.weights();
        let k = env.device_count();

        let end_system: Vec<Vec<f64>> = order
            .iter()
            .map(|&c| {
                let need = graph.component(c).expect("dense ids").resources();
                (0..k)
                    .map(|d| {
                        let avail = env.devices()[d].availability();
                        let mut delta = 0.0;
                        for (i, &w) in weights.resource().iter().enumerate() {
                            let r = need.get(i).unwrap_or(0.0);
                            if r <= EPSILON {
                                continue;
                            }
                            let ra = avail.get(i).unwrap_or(0.0);
                            if ra <= EPSILON {
                                return f64::INFINITY;
                            }
                            delta += w * r / ra;
                        }
                        delta
                    })
                    .collect()
            })
            .collect();

        let mut suffix = vec![0.0; order.len() + 1];
        for pos in (0..order.len()).rev() {
            let cheapest = end_system[pos]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            suffix[pos] = cheapest + suffix[pos + 1];
        }
        for s in &mut suffix {
            *s *= SUFFIX_SLACK;
        }

        NodeCostTable { end_system, suffix }
    }

    /// End-system cost delta of placing `order[pos]` on device `d`
    /// (`f64::INFINITY` when the device cannot host the component at all).
    #[inline]
    pub fn end_system(&self, pos: usize, d: usize) -> f64 {
        self.end_system[pos][d]
    }

    /// Admissible lower bound on the cost the components at positions
    /// `pos..` must still add to any completed assignment.
    #[inline]
    pub fn suffix(&self, pos: usize) -> f64 {
        self.suffix[pos]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::environment::Environment;
    use ubiqos_graph::{ServiceComponent, ServiceGraph};
    use ubiqos_model::{ResourceVector, Weights};

    fn instance() -> (ServiceGraph, Environment) {
        let mut g = ServiceGraph::new();
        for (name, mem, cpu) in [("a", 40.0, 60.0), ("b", 20.0, 30.0), ("c", 10.0, 20.0)] {
            g.add_component(
                ServiceComponent::builder(name)
                    .resources(ResourceVector::mem_cpu(mem, cpu))
                    .build(),
            );
        }
        let env = Environment::builder()
            .device(Device::new("pc", ResourceVector::mem_cpu(256.0, 300.0)))
            .device(Device::new("pda", ResourceVector::mem_cpu(32.0, 100.0)))
            .default_bandwidth_mbps(10.0)
            .build();
        (g, env)
    }

    #[test]
    fn suffix_is_a_monotone_underestimate_of_summed_minima() {
        let (g, env) = instance();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let order: Vec<_> = g.component_ids().collect();
        let table = NodeCostTable::build(&p, &order);

        assert_eq!(table.suffix(order.len()), 0.0);
        for pos in 0..order.len() {
            // Suffixes shrink as fewer components remain.
            assert!(table.suffix(pos) >= table.suffix(pos + 1));
            // And never exceed the exact sum of per-position minima.
            let exact: f64 = (pos..order.len())
                .map(|q| {
                    (0..env.device_count())
                        .map(|d| table.end_system(q, d))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum();
            assert!(table.suffix(pos) <= exact);
            assert!(table.suffix(pos) > exact * 0.999_999);
        }
    }

    #[test]
    fn unusable_devices_are_infinite() {
        let mut g = ServiceGraph::new();
        g.add_component(
            ServiceComponent::builder("gpu-hungry")
                .resources(ResourceVector::new(vec![10.0, 10.0, 5.0]).unwrap())
                .build(),
        );
        let env = Environment::builder()
            .device(Device::new(
                "full",
                ResourceVector::new(vec![64.0, 64.0, 8.0]).unwrap(),
            ))
            .device(Device::new(
                "flat",
                ResourceVector::new(vec![64.0, 64.0, 0.0]).unwrap(),
            ))
            .default_bandwidth_mbps(10.0)
            .build();
        let w = Weights::uniform(3);
        let p = OsdProblem::new(&g, &env, &w);
        let order: Vec<_> = g.component_ids().collect();
        let table = NodeCostTable::build(&p, &order);
        assert!(table.end_system(0, 0).is_finite());
        assert!(table.end_system(0, 1).is_infinite());
        // The finite device keeps the suffix finite.
        assert!(table.suffix(0).is_finite());
    }
}
