//! Cost aggregation (Definition 3.5).

use crate::environment::Environment;
use ubiqos_graph::{Cut, ServiceGraph};
use ubiqos_model::{Weights, EPSILON};

/// Computes the cost aggregation `CA(Φ)` of a cut (Definition 3.5):
///
/// ```text
/// CA(Φ) = Σ_j Σ_i  w_i · r_i^j / ra_i^j   +   Σ_{i≠j}  w_{m+1} · T_{i,j} / b_{i,j}
/// ```
///
/// where `r_i^j` is part `j`'s summed demand for resource `i`, `ra_i^j`
/// device `j`'s availability, `T_{i,j}` the throughput crossing from part
/// `i` to part `j`, and `b_{i,j}` the available bandwidth. Each normalized
/// term is "the cost the user pays for using a specific type of resource":
/// scarcer (smaller `ra`) and more important (larger `w`) resources cost
/// more.
///
/// Returns `f64::INFINITY` when a part demands a resource its device has
/// none of, or when throughput crosses a zero-bandwidth link — such cuts
/// are unusable at any cost. (Note that a *finite* CA does not imply the
/// cut fits: fit-into is checked separately by
/// [`crate::OsdProblem::fits`].)
///
/// # Panics
///
/// Panics if the cut's part count exceeds the environment's device count
/// or component resource dimensions are inconsistent (construction bugs,
/// not runtime conditions).
pub fn cost_aggregation(
    graph: &ServiceGraph,
    cut: &Cut,
    env: &Environment,
    weights: &Weights,
) -> f64 {
    assert!(
        cut.parts() <= env.device_count(),
        "cut has more parts than the environment has devices"
    );
    let mut total = 0.0;

    // End-system term.
    for part in 0..cut.parts() {
        let used = cut
            .part_resource_sum(graph, part)
            .expect("consistent resource dimensions");
        let avail = env.devices()[part].availability();
        for (i, &w) in weights.resource().iter().enumerate() {
            let r = used.get(i).unwrap_or(0.0);
            if r <= EPSILON {
                continue;
            }
            let ra = avail.get(i).unwrap_or(0.0);
            if ra <= EPSILON {
                return f64::INFINITY;
            }
            total += w * r / ra;
        }
    }

    // Network term, over ordered pairs i != j.
    let t = cut.inter_part_throughput(graph);
    let w_net = weights.network();
    for (i, row) in t.iter().enumerate() {
        for (j, &crossing) in row.iter().enumerate() {
            if i == j || crossing <= EPSILON {
                continue;
            }
            let b = env.bandwidth().get(i, j);
            if b <= EPSILON {
                return f64::INFINITY;
            }
            total += w_net * crossing / b;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use ubiqos_graph::ServiceComponent;
    use ubiqos_model::ResourceVector;

    fn two_node_graph(mem: f64, cpu: f64, tp: f64) -> ServiceGraph {
        let mut g = ServiceGraph::new();
        let a = g.add_component(
            ServiceComponent::builder("a")
                .resources(ResourceVector::mem_cpu(mem, cpu))
                .build(),
        );
        let b = g.add_component(
            ServiceComponent::builder("b")
                .resources(ResourceVector::mem_cpu(mem, cpu))
                .build(),
        );
        g.add_edge(a, b, tp).unwrap();
        g
    }

    fn env(ra0: (f64, f64), ra1: (f64, f64), bw: f64) -> Environment {
        Environment::builder()
            .device(Device::new("d0", ResourceVector::mem_cpu(ra0.0, ra0.1)))
            .device(Device::new("d1", ResourceVector::mem_cpu(ra1.0, ra1.1)))
            .default_bandwidth_mbps(bw)
            .build()
    }

    #[test]
    fn hand_computed_cost() {
        // Each node needs [10, 20]; devices have [100, 100] and [50, 50];
        // edge throughput 5 over a 10 Mbps link; uniform weights 1/3.
        let g = two_node_graph(10.0, 20.0, 5.0);
        let e = env((100.0, 100.0), (50.0, 50.0), 10.0);
        let w = Weights::default();
        let split = Cut::from_assignment(&g, vec![0, 1], 2).unwrap();
        let third = 1.0 / 3.0;
        let expected = third * (10.0 / 100.0) // mem on d0
            + third * (20.0 / 100.0)          // cpu on d0
            + third * (10.0 / 50.0)           // mem on d1
            + third * (20.0 / 50.0)           // cpu on d1
            + third * (5.0 / 10.0); //           network
        let got = cost_aggregation(&g, &split, &e, &w);
        assert!(
            (got - expected).abs() < 1e-12,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn colocated_cut_pays_no_network_cost() {
        let g = two_node_graph(10.0, 20.0, 5.0);
        let e = env((100.0, 100.0), (50.0, 50.0), 10.0);
        let w = Weights::default();
        let together = Cut::from_assignment(&g, vec![0, 0], 2).unwrap();
        let split = Cut::from_assignment(&g, vec![0, 1], 2).unwrap();
        let ca_together = cost_aggregation(&g, &together, &e, &w);
        let ca_split = cost_aggregation(&g, &split, &e, &w);
        // Same total resources on a bigger device, no network term.
        assert!(ca_together < ca_split);
    }

    #[test]
    fn scarcity_raises_cost() {
        let g = two_node_graph(10.0, 10.0, 0.0);
        let rich = env((1000.0, 1000.0), (1000.0, 1000.0), 10.0);
        let poor = env((20.0, 20.0), (20.0, 20.0), 10.0);
        let w = Weights::default();
        let cut = Cut::from_assignment(&g, vec![0, 1], 2).unwrap();
        assert!(
            cost_aggregation(&g, &cut, &poor, &w) > cost_aggregation(&g, &cut, &rich, &w),
            "the scarcer the resource, the larger the cost"
        );
    }

    #[test]
    fn zero_availability_with_demand_is_infinite() {
        let g = two_node_graph(10.0, 10.0, 1.0);
        let e = env((0.0, 100.0), (100.0, 100.0), 10.0);
        let cut = Cut::from_assignment(&g, vec![0, 1], 2).unwrap();
        assert_eq!(
            cost_aggregation(&g, &cut, &e, &Weights::default()),
            f64::INFINITY
        );
    }

    #[test]
    fn zero_bandwidth_with_crossing_is_infinite() {
        let g = two_node_graph(1.0, 1.0, 1.0);
        let e = env((100.0, 100.0), (100.0, 100.0), 0.0);
        let split = Cut::from_assignment(&g, vec![0, 1], 2).unwrap();
        assert_eq!(
            cost_aggregation(&g, &split, &e, &Weights::default()),
            f64::INFINITY
        );
        // But co-located placement over the same dead link is fine.
        let together = Cut::from_assignment(&g, vec![1, 1], 2).unwrap();
        assert!(cost_aggregation(&g, &together, &e, &Weights::default()).is_finite());
    }

    #[test]
    fn zero_demand_costs_zero() {
        let mut g = ServiceGraph::new();
        g.add_component(ServiceComponent::builder("idle").build());
        let e = env((100.0, 100.0), (100.0, 100.0), 10.0);
        let cut = Cut::from_assignment(&g, vec![0], 2).unwrap();
        assert_eq!(cost_aggregation(&g, &cut, &e, &Weights::default()), 0.0);
    }

    #[test]
    fn network_weight_controls_multiway_cut_special_case() {
        // Theorem 1's special case: w_i = 0 for end-system resources,
        // w_{m+1} = 1, all bandwidths 1 => CA equals the directed
        // multiway-cut objective.
        let g = two_node_graph(10.0, 10.0, 7.0);
        let e = env((1e9, 1e9), (1e9, 1e9), 1.0);
        let w = Weights::new(vec![0.0, 0.0], 1.0).unwrap();
        let split = Cut::from_assignment(&g, vec![0, 1], 2).unwrap();
        let got = cost_aggregation(&g, &split, &e, &w);
        assert!(
            (got - 7.0).abs() < 1e-12,
            "CA reduces to the cut weight: {got}"
        );
    }
}
