//! Devices of the ubiquitous environment.

use serde::{Deserialize, Serialize};
use std::fmt;
use ubiqos_model::{ModelError, Normalizer, ResourceVector};

/// Coarse device classes, used for reporting and for the runtime's
/// scenario scripts (the paper's testbed mixes workstations, PCs, laptops,
/// and PDAs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Sun Ultra-60 class workstation / proxy host.
    Workstation,
    /// Desktop PC (the paper's Pentium III 900).
    Desktop,
    /// Laptop — the paper's *benchmark machine* for normalization.
    Laptop,
    /// Handheld (HP Jornada class).
    Pda,
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceClass::Workstation => f.write_str("workstation"),
            DeviceClass::Desktop => f.write_str("desktop"),
            DeviceClass::Laptop => f.write_str("laptop"),
            DeviceClass::Pda => f.write_str("pda"),
        }
    }
}

/// One device with its *normalized* resource availability vector `RA`.
///
/// Availabilities are in benchmark-machine units (Section 3.3); construct
/// from device-local measurements with [`Device::from_local`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    name: String,
    class: DeviceClass,
    availability: ResourceVector,
}

impl Device {
    /// Creates a device from an already-normalized availability vector.
    pub fn new(name: impl Into<String>, availability: ResourceVector) -> Self {
        Device {
            name: name.into(),
            class: DeviceClass::Desktop,
            availability,
        }
    }

    /// Creates a device from *device-local* measurements and its
    /// normalizer, applying the Section 3.3 normalization.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the normalizer.
    pub fn from_local(
        name: impl Into<String>,
        local: &ResourceVector,
        normalizer: &Normalizer,
    ) -> Result<Self, ModelError> {
        Ok(Device {
            name: name.into(),
            class: DeviceClass::Desktop,
            availability: normalizer.normalize_availability(local)?,
        })
    }

    /// Sets the device class (builder style).
    #[must_use]
    pub fn with_class(mut self, class: DeviceClass) -> Self {
        self.class = class;
        self
    }

    /// The device's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The device's class.
    pub fn class(&self) -> DeviceClass {
        self.class
    }

    /// The normalized availability vector `RA`.
    pub fn availability(&self) -> &ResourceVector {
        &self.availability
    }

    /// Replaces the availability vector (resource fluctuation, admission
    /// accounting).
    pub fn set_availability(&mut self, availability: ResourceVector) {
        self.availability = availability;
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, RA={})",
            self.name, self.class, self.availability
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_construction_matches_paper_example() {
        let laptop_benchmark = Normalizer::new(vec![1.0, 0.4]).unwrap();
        let pda = Device::from_local(
            "jornada",
            &ResourceVector::mem_cpu(32.0, 100.0),
            &laptop_benchmark,
        )
        .unwrap()
        .with_class(DeviceClass::Pda);
        assert_eq!(pda.availability().amounts(), &[32.0, 40.0]);
        assert_eq!(pda.class(), DeviceClass::Pda);
        assert_eq!(pda.name(), "jornada");
    }

    #[test]
    fn availability_mutation() {
        let mut d = Device::new("pc", ResourceVector::mem_cpu(256.0, 300.0));
        d.set_availability(ResourceVector::mem_cpu(128.0, 150.0));
        assert_eq!(d.availability().amounts(), &[128.0, 150.0]);
    }

    #[test]
    fn display_includes_name_class_availability() {
        let d = Device::new("pc", ResourceVector::mem_cpu(1.0, 2.0))
            .with_class(DeviceClass::Workstation);
        let s = d.to_string();
        assert!(s.contains("pc"));
        assert!(s.contains("workstation"));
        assert!(s.contains("1.00"));
    }
}
