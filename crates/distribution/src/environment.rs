//! The device environment a service graph is distributed over.

use crate::device::Device;
use crate::network::BandwidthMatrix;
use serde::{Deserialize, Serialize};
use ubiqos_graph::{Cut, ServiceGraph};
use ubiqos_model::ModelError;

/// A snapshot of the `k` currently available devices and the bandwidth
/// between them.
///
/// Availabilities are *current* (residual) capacities: the Figure 5
/// simulation charges each admitted application against the environment
/// with [`Environment::charge_cut`] and refunds it on departure with
/// [`Environment::refund_cut`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    devices: Vec<Device>,
    bandwidth: BandwidthMatrix,
}

impl Environment {
    /// Starts building an environment.
    pub fn builder() -> EnvironmentBuilder {
        EnvironmentBuilder {
            devices: Vec::new(),
            default_bandwidth: 10.0,
            links: Vec::new(),
        }
    }

    /// The number of devices `k`.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Borrows a device by index.
    pub fn device(&self, index: usize) -> Option<&Device> {
        self.devices.get(index)
    }

    /// Mutably borrows a device by index.
    pub fn device_mut(&mut self, index: usize) -> Option<&mut Device> {
        self.devices.get_mut(index)
    }

    /// All devices in index order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The bandwidth matrix.
    pub fn bandwidth(&self) -> &BandwidthMatrix {
        &self.bandwidth
    }

    /// Mutable access to the bandwidth matrix (e.g. link fluctuation).
    pub fn bandwidth_mut(&mut self) -> &mut BandwidthMatrix {
        &mut self.bandwidth
    }

    /// Charges a placed application against the environment: subtracts
    /// every part's resource sum from its device's availability and every
    /// cut edge's throughput from its link's bandwidth (both clamped at
    /// zero).
    ///
    /// Bandwidth is a *shared pool*: an application whose cut crosses the
    /// 5 Mbps wireless link leaves less of it for the next application —
    /// which is precisely why low-cost (low-crossing) placements admit
    /// more concurrent applications in the Figure 5 experiment.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError::DimensionMismatch`] from vector
    /// arithmetic.
    pub fn charge_cut(&mut self, graph: &ServiceGraph, cut: &Cut) -> Result<(), ModelError> {
        for part in 0..cut.parts().min(self.devices.len()) {
            let used = cut.part_resource_sum(graph, part)?;
            let device = &mut self.devices[part];
            let rest = device.availability().saturating_sub(&used)?;
            device.set_availability(rest);
        }
        self.adjust_bandwidth(graph, cut, -1.0);
        Ok(())
    }

    /// Refunds a previously charged application (application departure).
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError::DimensionMismatch`] from vector
    /// arithmetic.
    pub fn refund_cut(&mut self, graph: &ServiceGraph, cut: &Cut) -> Result<(), ModelError> {
        for part in 0..cut.parts().min(self.devices.len()) {
            let used = cut.part_resource_sum(graph, part)?;
            let device = &mut self.devices[part];
            let back = device.availability().checked_add(&used)?;
            device.set_availability(back);
        }
        self.adjust_bandwidth(graph, cut, 1.0);
        Ok(())
    }

    /// Applies `sign * crossing-throughput` to every device pair's
    /// bandwidth, clamping at zero.
    fn adjust_bandwidth(&mut self, graph: &ServiceGraph, cut: &Cut, sign: f64) {
        let t = cut.inter_part_throughput(graph);
        let k = cut.parts().min(self.bandwidth.device_count());
        #[allow(clippy::needless_range_loop)] // t[i][j] + t[j][i]: pair-symmetric indexing
        for i in 0..k {
            for j in (i + 1)..k {
                let used = t[i][j] + t[j][i];
                if used > 0.0 {
                    let current = self.bandwidth.get(i, j);
                    if current.is_finite() {
                        self.bandwidth.set(i, j, (current + sign * used).max(0.0));
                    }
                }
            }
        }
    }
}

/// Builder for [`Environment`] (see [`Environment::builder`]).
#[derive(Debug, Clone)]
pub struct EnvironmentBuilder {
    devices: Vec<Device>,
    default_bandwidth: f64,
    links: Vec<(usize, usize, f64)>,
}

impl EnvironmentBuilder {
    /// Adds a device.
    #[must_use]
    pub fn device(mut self, device: Device) -> Self {
        self.devices.push(device);
        self
    }

    /// Sets the default bandwidth for every pair not configured with
    /// [`EnvironmentBuilder::link_mbps`] (default: 10 Mbps).
    #[must_use]
    pub fn default_bandwidth_mbps(mut self, mbps: f64) -> Self {
        self.default_bandwidth = mbps;
        self
    }

    /// Overrides the bandwidth of one device pair.
    #[must_use]
    pub fn link_mbps(mut self, i: usize, j: usize, mbps: f64) -> Self {
        self.links.push((i, j, mbps));
        self
    }

    /// Builds the environment.
    ///
    /// # Panics
    ///
    /// Panics when a configured link references a device index out of
    /// range (programming error in scenario setup).
    pub fn build(self) -> Environment {
        let mut bandwidth = BandwidthMatrix::uniform(self.devices.len(), self.default_bandwidth);
        for (i, j, mbps) in self.links {
            bandwidth.set(i, j, mbps);
        }
        Environment {
            devices: self.devices,
            bandwidth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_graph::ServiceComponent;
    use ubiqos_model::ResourceVector;

    /// The Figure 5 environment: desktop, laptop, PDA.
    fn fig5_env() -> Environment {
        Environment::builder()
            .device(Device::new(
                "desktop",
                ResourceVector::mem_cpu(256.0, 300.0),
            ))
            .device(Device::new("laptop", ResourceVector::mem_cpu(128.0, 100.0)))
            .device(Device::new("pda", ResourceVector::mem_cpu(32.0, 50.0)))
            .default_bandwidth_mbps(5.0)
            .link_mbps(0, 1, 50.0)
            .build()
    }

    #[test]
    fn builder_constructs_fig5_topology() {
        let env = fig5_env();
        assert_eq!(env.device_count(), 3);
        assert_eq!(env.bandwidth().get(0, 1), 50.0);
        assert_eq!(env.bandwidth().get(0, 2), 5.0);
        assert_eq!(env.bandwidth().get(1, 2), 5.0);
        assert_eq!(env.device(1).unwrap().name(), "laptop");
        assert!(env.device(9).is_none());
    }

    #[test]
    fn charge_and_refund_roundtrip() {
        let mut env = fig5_env();
        let mut g = ServiceGraph::new();
        let a = g.add_component(
            ServiceComponent::builder("a")
                .resources(ResourceVector::mem_cpu(100.0, 100.0))
                .build(),
        );
        let b = g.add_component(
            ServiceComponent::builder("b")
                .resources(ResourceVector::mem_cpu(16.0, 25.0))
                .build(),
        );
        g.add_edge(a, b, 1.0).unwrap();
        let cut = Cut::from_assignment(&g, vec![0, 2], 3).unwrap();

        env.charge_cut(&g, &cut).unwrap();
        assert_eq!(
            env.device(0).unwrap().availability().amounts(),
            &[156.0, 200.0]
        );
        assert_eq!(
            env.device(1).unwrap().availability().amounts(),
            &[128.0, 100.0]
        );
        assert_eq!(
            env.device(2).unwrap().availability().amounts(),
            &[16.0, 25.0]
        );

        env.refund_cut(&g, &cut).unwrap();
        assert_eq!(env, fig5_env());
    }

    #[test]
    fn charge_clamps_at_zero() {
        let mut env = fig5_env();
        let mut g = ServiceGraph::new();
        g.add_component(
            ServiceComponent::builder("huge")
                .resources(ResourceVector::mem_cpu(1000.0, 1000.0))
                .build(),
        );
        let cut = Cut::from_assignment(&g, vec![2], 3).unwrap();
        env.charge_cut(&g, &cut).unwrap();
        assert!(env.device(2).unwrap().availability().is_zero());
    }
}
