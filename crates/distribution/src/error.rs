//! Errors for the distribution tier.

use std::error::Error;
use std::fmt;
use ubiqos_graph::GraphError;
use ubiqos_model::ModelError;

/// Errors produced by service distribution algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum DistributionError {
    /// No k-cut satisfying the fit-into constraints exists (or the
    /// algorithm could not find one) — the configuration request fails.
    Infeasible {
        /// Human-readable reason (which constraint could not be met).
        reason: String,
    },
    /// The environment has no devices.
    NoDevices,
    /// The instance has more free (un-pinned) components than the
    /// exhaustive solver's node limit allows. Unlike
    /// [`DistributionError::Infeasible`] this says nothing about the
    /// instance itself — a solution may well exist — only that the
    /// exact search refuses to attempt it. The solver portfolio
    /// catches this variant and routes the instance to the
    /// hierarchical abstraction-refinement solver instead.
    TooLarge {
        /// Free components in the instance.
        free: usize,
        /// The solver's configured limit.
        limit: usize,
    },
    /// A component is pinned to a device index outside the environment.
    InvalidPin {
        /// The out-of-range device index.
        device_index: usize,
        /// The number of devices in the environment.
        device_count: usize,
    },
    /// Underlying model arithmetic error (dimension mismatches).
    Model(ModelError),
    /// Underlying graph error.
    Graph(GraphError),
}

impl fmt::Display for DistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistributionError::Infeasible { reason } => {
                write!(f, "no feasible distribution: {reason}")
            }
            DistributionError::NoDevices => write!(f, "environment has no devices"),
            DistributionError::TooLarge { free, limit } => write!(
                f,
                "instance has {free} free components, above the exhaustive solver's limit of \
                 {limit} (raise with with_node_limit, or use the hierarchical solver/portfolio)"
            ),
            DistributionError::InvalidPin {
                device_index,
                device_count,
            } => write!(
                f,
                "component pinned to device {device_index} but only {device_count} devices exist"
            ),
            DistributionError::Model(e) => write!(f, "model error: {e}"),
            DistributionError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for DistributionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DistributionError::Model(e) => Some(e),
            DistributionError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for DistributionError {
    fn from(e: ModelError) -> Self {
        DistributionError::Model(e)
    }
}

impl From<GraphError> for DistributionError {
    fn from(e: GraphError) -> Self {
        DistributionError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let infeasible = DistributionError::Infeasible {
            reason: "pda memory exhausted".into(),
        };
        assert!(infeasible.to_string().contains("pda memory exhausted"));
        assert!(infeasible.source().is_none());

        let model = DistributionError::from(ModelError::EmptyWeights);
        assert!(model.source().is_some());
        assert!(model.to_string().contains("model error"));

        let pin = DistributionError::InvalidPin {
            device_index: 5,
            device_count: 2,
        };
        assert!(pin.to_string().contains('5'));
        let too_large = DistributionError::TooLarge {
            free: 40,
            limit: 32,
        };
        assert!(too_large.to_string().contains("40"));
        assert!(too_large.to_string().contains("limit of 32"));
        assert!(too_large.source().is_none());
        assert!(DistributionError::NoDevices
            .to_string()
            .contains("no devices"));
    }
}
