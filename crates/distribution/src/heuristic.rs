//! The paper's polynomial greedy heuristic for the OSD problem
//! (Section 3.3).
//!
//! > "(1) insert those service components, that cannot be instantiated
//! > arbitrarily, into their proper devices; (2) repeat sorting the k
//! > available devices in decreasing order of their resource
//! > availabilities and insert the next chosen service component to the
//! > current head of the sorted device list … If the head device contains
//! > a service component A, then the next chosen component is A's
//! > neighbor, which has the largest resource requirements. … If the head
//! > device is empty, then the next chosen service component is the one
//! > which has the largest resource requirements among all remaining
//! > service components."
//!
//! Both "resource availability" and "resource requirement" are weighted
//! sums over resource types (footnote 3). Clustering a component with its
//! already-placed neighbors keeps heavy edges off the network, and leading
//! with the most-available device balances end-system load — the ablation
//! flags disable each ingredient separately.

use crate::algorithm::{seed_with_pins, ServiceDistributor};
use crate::error::DistributionError;
use crate::problem::OsdProblem;
use ubiqos_graph::{ComponentId, Cut};

/// The greedy clustering heuristic, with ablation switches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreedyHeuristic {
    name: String,
    /// Re-sort devices by residual availability before every placement
    /// (the paper's behaviour). When false, devices are visited in fixed
    /// index order — the `heuristic_unsorted` ablation.
    resort_devices: bool,
    /// Prefer unassigned neighbors of the head device's cluster (the
    /// paper's behaviour). When false, always take the globally heaviest
    /// unassigned component — the `heuristic_nomerge` ablation.
    cluster_adjacency: bool,
}

impl GreedyHeuristic {
    /// The algorithm exactly as the paper describes it.
    pub fn paper() -> Self {
        GreedyHeuristic {
            name: "heuristic".into(),
            resort_devices: true,
            cluster_adjacency: true,
        }
    }

    /// Ablation: never re-sorts the device list.
    pub fn without_device_resort() -> Self {
        GreedyHeuristic {
            name: "heuristic-unsorted".into(),
            resort_devices: false,
            cluster_adjacency: true,
        }
    }

    /// Ablation: ignores cluster adjacency when choosing the next
    /// component.
    pub fn without_cluster_adjacency() -> Self {
        GreedyHeuristic {
            name: "heuristic-nomerge".into(),
            resort_devices: true,
            cluster_adjacency: false,
        }
    }
}

impl Default for GreedyHeuristic {
    fn default() -> Self {
        Self::paper()
    }
}

impl ServiceDistributor for GreedyHeuristic {
    fn name(&self) -> &str {
        &self.name
    }

    fn distribute(&mut self, problem: &OsdProblem<'_>) -> Result<Cut, DistributionError> {
        let graph = problem.graph();
        let env = problem.env();
        let k = env.device_count();

        // Scalarization weights for "largest availability / largest
        // requirement" (footnote 3). The paper assigns "higher weights for
        // more critical resources"; criticalness here is measured as the
        // instance's aggregate demand/supply ratio per resource type, so
        // the scarce dimension dominates the ordering. The user's cost
        // weights scale the ratios, keeping deliberate priorities in play.
        let weights: Vec<f64> = {
            let dim = problem.weights().resource_dim();
            let mut demand = vec![0.0; dim];
            let mut supply = vec![0.0; dim];
            for (_, c) in graph.components() {
                for (i, slot) in demand.iter_mut().enumerate() {
                    *slot += c.resources().get(i).unwrap_or(0.0);
                }
            }
            for d in env.devices() {
                for (i, slot) in supply.iter_mut().enumerate() {
                    *slot += d.availability().get(i).unwrap_or(0.0);
                }
            }
            problem
                .weights()
                .resource()
                .iter()
                .enumerate()
                .map(|(i, &w)| {
                    if supply[i] > 0.0 && demand[i] > 0.0 {
                        w * demand[i] / supply[i]
                    } else {
                        w
                    }
                })
                .collect()
        };
        let weights = weights.as_slice();

        let (mut assignment, mut residual) = seed_with_pins(problem)?;
        let weight_of = |id: ComponentId| -> f64 {
            graph
                .component(id)
                .expect("component ids are dense")
                .resources()
                .weighted_sum(weights)
        };

        let mut unassigned: Vec<ComponentId> = graph
            .component_ids()
            .filter(|id| assignment[id.index()].is_none())
            .collect();

        // Crossing throughput accumulated per ordered device pair,
        // including edges among pinned components.
        let mut crossing = vec![vec![0.0; k]; k];
        for e in graph.edges() {
            if let (Some(i), Some(j)) = (assignment[e.from.index()], assignment[e.to.index()]) {
                if i != j {
                    crossing[i][j] += e.throughput;
                }
            }
        }

        // Definition 3.4 fit check for placing `c` on `d`: end-system
        // resources within the residual, and every edge to an
        // already-placed neighbor within the remaining link bandwidth.
        let fits = |c: ComponentId,
                    d: usize,
                    residual: &[ubiqos_model::ResourceVector],
                    assignment: &[Option<usize>],
                    crossing: &[Vec<f64>]|
         -> bool {
            let component = graph.component(c).expect("dense ids");
            if !component.resources().fits_within(&residual[d]) {
                return false;
            }
            let mut extra = vec![vec![0.0; k]; k];
            for &p in graph.predecessors(c) {
                if let Some(pd) = assignment[p.index()] {
                    if pd != d {
                        extra[pd][d] += graph.edge_throughput(p, c).expect("edge exists");
                    }
                }
            }
            for &s in graph.successors(c) {
                if let Some(sd) = assignment[s.index()] {
                    if sd != d {
                        extra[d][sd] += graph.edge_throughput(c, s).expect("edge exists");
                    }
                }
            }
            // Shared-medium semantics: both directions draw from one pool
            // (matches `OsdProblem::fits`).
            for i in 0..k {
                for j in (i + 1)..k {
                    let added = extra[i][j] + extra[j][i];
                    if added > 0.0
                        && crossing[i][j] + crossing[j][i] + added
                            > problem.env().bandwidth().get(i, j) + ubiqos_model::EPSILON
                    {
                        return false;
                    }
                }
            }
            true
        };

        // Device visiting order: most weighted residual availability first
        // (stable tie-break by index for determinism). The order is kept
        // sorted *incrementally*: placements only charge one device, so
        // instead of re-sorting all k devices before every placement we
        // cache each device's weighted-availability key and re-insert just
        // the charged device at its new position. The sequence of orders is
        // identical to what repeated full sorts would produce.
        let device_weights = problem.weights().resource();
        let mut avail_key: Vec<f64> = residual
            .iter()
            .map(|r| r.weighted_sum(device_weights))
            .collect();
        let precedes = |key: &[f64], a: usize, b: usize| -> bool {
            key[a] > key[b] || (key[a] == key[b] && a < b)
        };
        let mut order: Vec<usize> = (0..k).collect();
        if self.resort_devices {
            order.sort_by(|&a, &b| {
                avail_key[b]
                    .partial_cmp(&avail_key[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
        }

        while !unassigned.is_empty() {
            // Choose the next component relative to the *head* device:
            // the heaviest unassigned neighbor of its cluster, or — when
            // the head is empty (or cluster adjacency is ablated) — the
            // globally heaviest unassigned component.
            let head = order[0];
            let cluster_neighbor = if self.cluster_adjacency {
                heaviest_cluster_neighbor(graph, &assignment, &unassigned, head, &weight_of)
            } else {
                None
            };
            let c = cluster_neighbor
                .or_else(|| heaviest(&unassigned, &weight_of))
                .expect("unassigned is non-empty");

            // Insert it into the head device, or — when it does not fit
            // there — the next device in availability order that takes it.
            // Residuals only ever shrink, so a component that fits no
            // device now never will: the request is unsuccessful.
            let Some(&d) = order
                .iter()
                .find(|&&d| fits(c, d, &residual, &assignment, &crossing))
            else {
                return Err(DistributionError::Infeasible {
                    reason: format!(
                        "component {} fits no remaining device capacity",
                        graph.component(c).expect("dense ids").name()
                    ),
                });
            };
            residual[d] =
                residual[d].saturating_sub(graph.component(c).expect("dense ids").resources())?;
            if self.resort_devices {
                // Only device `d`'s key changed (it can only shrink);
                // remove it and binary-search its new slot.
                avail_key[d] = residual[d].weighted_sum(device_weights);
                let old_pos = order.iter().position(|&x| x == d).expect("d is in order");
                order.remove(old_pos);
                let new_pos = order.partition_point(|&x| precedes(&avail_key, x, d));
                order.insert(new_pos, d);
            }
            for &p in graph.predecessors(c) {
                if let Some(pd) = assignment[p.index()] {
                    if pd != d {
                        crossing[pd][d] += graph.edge_throughput(p, c).expect("edge exists");
                    }
                }
            }
            for &s in graph.successors(c) {
                if let Some(sd) = assignment[s.index()] {
                    if sd != d {
                        crossing[d][sd] += graph.edge_throughput(c, s).expect("edge exists");
                    }
                }
            }
            assignment[c.index()] = Some(d);
            unassigned.retain(|&u| u != c);
        }

        let cut = Cut::from_assignment(
            graph,
            assignment
                .into_iter()
                .map(|a| a.expect("all assigned"))
                .collect(),
            k,
        )
        .expect("assignment is complete and in range");

        // Both halves of Definition 3.4 hold by construction (resources
        // and link bandwidth are checked at every placement); the final
        // check also re-verifies pins and guards against arithmetic bugs.
        if !problem.fits(&cut) {
            return Err(DistributionError::Infeasible {
                reason: "placement violates fit-into constraints".into(),
            });
        }
        Ok(cut)
    }
}

/// The heaviest component of `candidates` by `weight_of`, ties broken by
/// smaller id for determinism.
fn heaviest(
    candidates: &[ComponentId],
    weight_of: &impl Fn(ComponentId) -> f64,
) -> Option<ComponentId> {
    candidates.iter().copied().max_by(|&a, &b| {
        weight_of(a)
            .partial_cmp(&weight_of(b))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.cmp(&a)) // smaller id wins ties under max_by
    })
}

/// The heaviest unassigned neighbor (either direction) of any component
/// already placed on device `d`.
fn heaviest_cluster_neighbor(
    graph: &ubiqos_graph::ServiceGraph,
    assignment: &[Option<usize>],
    unassigned: &[ComponentId],
    d: usize,
    weight_of: &impl Fn(ComponentId) -> f64,
) -> Option<ComponentId> {
    let neighbors: Vec<ComponentId> = unassigned
        .iter()
        .copied()
        .filter(|&c| {
            graph
                .predecessors(c)
                .iter()
                .chain(graph.successors(c))
                .any(|&n| assignment[n.index()] == Some(d))
        })
        .collect();
    heaviest(&neighbors, weight_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::environment::Environment;
    use ubiqos_graph::{DeviceId, ServiceComponent, ServiceGraph};
    use ubiqos_model::{ResourceVector, Weights};

    fn comp(name: &str, mem: f64, cpu: f64) -> ServiceComponent {
        ServiceComponent::builder(name)
            .resources(ResourceVector::mem_cpu(mem, cpu))
            .build()
    }

    fn pc_pda_env() -> Environment {
        Environment::builder()
            .device(Device::new("pc", ResourceVector::mem_cpu(256.0, 300.0)))
            .device(Device::new("pda", ResourceVector::mem_cpu(32.0, 100.0)))
            .default_bandwidth_mbps(10.0)
            .build()
    }

    #[test]
    fn places_a_chain_feasibly() {
        let mut g = ServiceGraph::new();
        let ids: Vec<_> = (0..6)
            .map(|i| g.add_component(comp(&format!("c{i}"), 20.0, 30.0)))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1.0).unwrap();
        }
        let env = pc_pda_env();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cut = GreedyHeuristic::paper().distribute(&p).unwrap();
        assert!(p.fits(&cut));
    }

    #[test]
    fn respects_pins() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(comp("server", 64.0, 80.0));
        let b = g.add_component(
            ServiceComponent::builder("player")
                .resources(ResourceVector::mem_cpu(8.0, 10.0))
                .pinned_to(DeviceId::from_index(1))
                .build(),
        );
        g.add_edge(a, b, 1.0).unwrap();
        let env = pc_pda_env();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cut = GreedyHeuristic::paper().distribute(&p).unwrap();
        assert_eq!(cut.part_of(b), Some(1));
        assert!(p.fits(&cut));
    }

    #[test]
    fn clusters_neighbors_on_the_big_device() {
        // Two heavy communicating components easily co-fit on the PC:
        // the cluster rule must keep them together.
        let mut g = ServiceGraph::new();
        let a = g.add_component(comp("a", 50.0, 50.0));
        let b = g.add_component(comp("b", 50.0, 50.0));
        g.add_edge(a, b, 8.0).unwrap();
        let env = pc_pda_env();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cut = GreedyHeuristic::paper().distribute(&p).unwrap();
        assert_eq!(cut.part_of(a), cut.part_of(b), "neighbors merged");
        assert_eq!(cut.cut_throughput(&g), 0.0);
    }

    #[test]
    fn infeasible_when_nothing_fits() {
        let mut g = ServiceGraph::new();
        g.add_component(comp("whale", 1000.0, 1000.0));
        let env = pc_pda_env();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        assert!(matches!(
            GreedyHeuristic::paper().distribute(&p),
            Err(DistributionError::Infeasible { .. })
        ));
    }

    #[test]
    fn bandwidth_violation_reported_infeasible() {
        // Two components that cannot co-fit anywhere, connected by an edge
        // thicker than any link.
        let mut g = ServiceGraph::new();
        let a = g.add_component(comp("a", 200.0, 250.0));
        let b = g.add_component(comp("b", 200.0, 250.0));
        g.add_edge(a, b, 100.0).unwrap();
        let env = Environment::builder()
            .device(Device::new("d0", ResourceVector::mem_cpu(256.0, 300.0)))
            .device(Device::new("d1", ResourceVector::mem_cpu(256.0, 300.0)))
            .default_bandwidth_mbps(5.0)
            .build();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let err = GreedyHeuristic::paper().distribute(&p).unwrap_err();
        assert!(matches!(err, DistributionError::Infeasible { .. }));
        // The constraint bites during placement: after one component
        // lands, the other fits neither the shared device (resources) nor
        // the remote one (link bandwidth).
        assert!(err.to_string().contains("fits no remaining device"));
    }

    #[test]
    fn empty_graph_distributes_trivially() {
        let g = ServiceGraph::new();
        let env = pc_pda_env();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cut = GreedyHeuristic::paper().distribute(&p).unwrap();
        assert_eq!(cut.len(), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut g = ServiceGraph::new();
        let ids: Vec<_> = (0..10)
            .map(|i| g.add_component(comp(&format!("c{i}"), 10.0 + i as f64, 10.0)))
            .collect();
        for i in 1..ids.len() {
            g.add_edge(ids[i - 1], ids[i], 1.0).unwrap();
        }
        let env = pc_pda_env();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let c1 = GreedyHeuristic::paper().distribute(&p).unwrap();
        let c2 = GreedyHeuristic::paper().distribute(&p).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn ablation_variants_also_produce_feasible_cuts() {
        let mut g = ServiceGraph::new();
        let ids: Vec<_> = (0..8)
            .map(|i| g.add_component(comp(&format!("c{i}"), 15.0, 20.0)))
            .collect();
        for i in 1..ids.len() {
            g.add_edge(ids[i - 1], ids[i], 0.5).unwrap();
        }
        let env = pc_pda_env();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        for mut alg in [
            GreedyHeuristic::without_device_resort(),
            GreedyHeuristic::without_cluster_adjacency(),
        ] {
            let cut = alg.distribute(&p).unwrap();
            assert!(p.fits(&cut), "{} produced an unfit cut", alg.name());
        }
    }

    #[test]
    fn device_order_tracks_shrinking_residuals() {
        // Three equal disconnected components, two devices whose residual
        // ordering flips after each placement: the incrementally-maintained
        // order must alternate exactly like a full re-sort would.
        let mut g = ServiceGraph::new();
        let ids: Vec<_> = (0..3)
            .map(|i| g.add_component(comp(&format!("c{i}"), 30.0, 30.0)))
            .collect();
        let env = Environment::builder()
            .device(Device::new("d0", ResourceVector::mem_cpu(100.0, 100.0)))
            .device(Device::new("d1", ResourceVector::mem_cpu(80.0, 80.0)))
            .default_bandwidth_mbps(10.0)
            .build();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cut = GreedyHeuristic::paper().distribute(&p).unwrap();
        // c0 → d0 (100 ≥ 80); d0 drops to 70 so c1 → d1; d1 drops to 50
        // so c2 → d0 again.
        assert_eq!(cut.part_of(ids[0]), Some(0));
        assert_eq!(cut.part_of(ids[1]), Some(1));
        assert_eq!(cut.part_of(ids[2]), Some(0));
    }

    #[test]
    fn names_are_distinct() {
        assert_eq!(GreedyHeuristic::paper().name(), "heuristic");
        assert_eq!(
            GreedyHeuristic::without_device_resort().name(),
            "heuristic-unsorted"
        );
        assert_eq!(
            GreedyHeuristic::without_cluster_adjacency().name(),
            "heuristic-nomerge"
        );
    }
}
