//! Hierarchical OSD solving by abstraction refinement.
//!
//! [`ExhaustiveOptimal`] is exact but refuses instances above its node
//! limit; real smart-space graphs exceed it. Following Chattopadhyay &
//! Banerjee's abstraction-refinement recipe for large-scale QoS
//! composition, [`HierarchicalSolver`] makes exact-quality placements
//! reachable for 100+ component graphs:
//!
//! 1. **Cluster.** The service graph is contracted into abstract
//!    super-components by deterministic heavy-edge agglomeration: the
//!    unpinned cluster pair with the highest inter-cluster throughput is
//!    merged (ties by smallest member ids) until the target cluster count
//!    is reached, subject to the merged aggregate demand still fitting
//!    some device. Pinned components stay singleton clusters. Each merge
//!    records its two children, forming a binary merge tree that
//!    refinement later unwinds.
//! 2. **Solve coarse.** The abstract graph — aggregate demands per
//!    cluster, aggregate throughput per cluster pair — is solved with the
//!    existing branch-and-bound, warm-started and capped by a per-round
//!    node budget (anytime mode). Contraction preserves the
//!    Definition 3.5 cost model *exactly*: end-system terms are linear in
//!    demand (`Σ w·rᵢ/ra = w·(Σrᵢ)/ra`) and both the network cost and the
//!    shared-medium bandwidth check are direction-symmetric, so abstract
//!    edges can always be oriented low→high cluster index (keeping the
//!    contracted graph acyclic) without changing either. The coarse cost
//!    of any coarse assignment therefore equals the concrete cost of its
//!    projection, and a coarse-feasible cut projects to a
//!    concrete-feasible one.
//! 3. **Refine where the gap matters.** Each round scores every cluster
//!    with an upper bound on what splitting it could save: the end-system
//!    slack `Σ_m (es(m, d_C) − min_d es(m, d))` of its members plus the
//!    network cost of incumbent cut edges incident to it. The splittable
//!    cluster with the largest positive gain (ties by smallest id) is
//!    split by undoing its last merge, and the next coarse solve is
//!    warm-started with both children inheriting the parent's device.
//!    Zero gain everywhere means no refinement can improve the incumbent
//!    — the loop terminates even when the optimality gap has not closed.
//! 4. **Certify.** The final [`GapCertificate`] brackets the incumbent
//!    between the best projection found (upper) and an instance-level
//!    lower bound: the PR-1 [`NodeCostTable`] suffix bound over the free
//!    components, tightened on proportional-device environments by a
//!    per-dimension fractional transport bound (highest-density
//!    components greedily filled onto the largest devices — the exchange
//!    argument makes the fractional optimum a valid floor for any
//!    integral placement).
//!
//! # Determinism
//!
//! Clustering uses no randomness (all ties break on component ids), each
//! coarse solve runs the *serial* subtree — a node budget's cutoff point
//! is only deterministic without racing workers — and refinement
//! decisions depend only on those results, so the final placement is
//! identical at every thread count. Instances
//! whose free-component count is within [`HierarchicalSolver::exact_limit`]
//! bypass abstraction entirely and delegate to the inner exhaustive
//! solver on the original problem, making the hierarchical solver
//! bit-identical to [`ExhaustiveOptimal`] there (property-tested).

use crate::algorithm::{seed_with_pins, ServiceDistributor};
use crate::bounds::NodeCostTable;
use crate::error::DistributionError;
use crate::optimal::{ExhaustiveOptimal, SolveStats};
use crate::problem::OsdProblem;
use ubiqos_graph::{ComponentId, Cut, DeviceId, ServiceComponent, ServiceGraph};
use ubiqos_model::{ResourceVector, EPSILON};

/// Relative slack applied to the certified lower bound so floating-point
/// accumulation can never turn it into an overestimate.
const BOUND_SLACK: f64 = 1.0 - 1e-9;

/// Gains below this threshold are treated as zero: splitting such a
/// cluster cannot improve the incumbent by more than rounding noise.
const GAIN_FLOOR: f64 = 1e-12;

/// Default per-round node budget for the coarse solves. Each coarse
/// instance is warm-started with the previous round's projection, so an
/// anytime search this deep returns a near-optimal coarse cut while
/// keeping the whole refinement loop orders of magnitude cheaper than a
/// raised-limit exhaustive run on the concrete instance.
const DEFAULT_COARSE_BUDGET: u64 = 4_000;

/// Optimality bracket produced by one hierarchical solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapCertificate {
    /// Cost of the returned placement (the incumbent upper bound).
    pub upper: f64,
    /// Certified lower bound on the cost of *any* feasible placement.
    pub lower: f64,
    /// Relative gap `(upper − lower) / lower` (0 when provably optimal).
    pub gap: f64,
    /// Refinement rounds performed after the initial coarse solve.
    pub rounds: u32,
    /// Cluster count at termination (free-component count on the exact
    /// delegation path).
    pub clusters: usize,
    /// Whether the placement is provably optimal (exact delegation path).
    pub exact: bool,
}

/// One abstract super-component: a set of concrete components solved as a
/// unit, with the merge tree that created it.
#[derive(Debug, Clone)]
struct Cluster {
    /// Concrete component indices, sorted ascending. `members[0]` is the
    /// cluster's identity for all deterministic tie-breaking.
    members: Vec<usize>,
    /// Aggregate resource demand of the members.
    demand: ResourceVector,
    /// Device pin inherited from a pinned singleton member.
    pin: Option<usize>,
    /// The two clusters whose merge produced this one (`None` for
    /// singletons). Splitting undoes exactly this merge.
    children: Option<Box<(Cluster, Cluster)>>,
}

impl Cluster {
    fn id(&self) -> usize {
        self.members[0]
    }

    fn splittable(&self) -> bool {
        self.children.is_some()
    }
}

/// The abstraction-refinement solver. See the module docs for the
/// algorithm; see [`SolverPortfolio`](crate::SolverPortfolio) for the
/// racing wrapper most callers want.
#[derive(Debug, Clone)]
pub struct HierarchicalSolver {
    exact_limit: usize,
    coarse_target: usize,
    refine_limit: usize,
    gap_tolerance: f64,
    max_rounds: u32,
    coarse_budget: Option<u64>,
    parallel: bool,
    warm_start: Option<Vec<usize>>,
    last_certificate: Option<GapCertificate>,
    last_stats: Option<SolveStats>,
}

impl Default for HierarchicalSolver {
    fn default() -> Self {
        HierarchicalSolver {
            exact_limit: 32,
            coarse_target: 16,
            refine_limit: 28,
            gap_tolerance: 0.02,
            max_rounds: 32,
            coarse_budget: Some(DEFAULT_COARSE_BUDGET),
            parallel: cfg!(feature = "parallel"),
            warm_start: None,
            last_certificate: None,
            last_stats: None,
        }
    }
}

impl HierarchicalSolver {
    /// Creates the solver with the default limits (exact delegation up to
    /// 32 free components, 16-cluster coarse solves refined up to 28
    /// clusters, 2% target gap).
    pub fn new() -> Self {
        Self::default()
    }

    /// Free-component count up to which the solver bypasses abstraction
    /// and delegates to the inner exhaustive search on the original
    /// problem — the bit-identity regime.
    #[must_use]
    pub fn with_exact_limit(mut self, limit: usize) -> Self {
        self.exact_limit = limit;
        self
    }

    /// The current exact-delegation limit.
    pub fn exact_limit(&self) -> usize {
        self.exact_limit
    }

    /// Target cluster count for the initial coarse abstraction.
    #[must_use]
    pub fn with_coarse_target(mut self, target: usize) -> Self {
        self.coarse_target = target.max(1);
        self
    }

    /// Cluster-count ceiling for refinement (also the node limit handed
    /// to the inner coarse solver).
    #[must_use]
    pub fn with_refine_limit(mut self, limit: usize) -> Self {
        self.refine_limit = limit.max(1);
        self
    }

    /// Relative optimality gap at which refinement stops (default 2%).
    #[must_use]
    pub fn with_gap_tolerance(mut self, tolerance: f64) -> Self {
        self.gap_tolerance = tolerance.max(0.0);
        self
    }

    /// Backstop on refinement rounds.
    #[must_use]
    pub fn with_max_rounds(mut self, rounds: u32) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Node budget per coarse solve (`None` = unbudgeted exact coarse
    /// solves). Warm-started anytime coarse searches keep every round
    /// cheap; the certificate's gap stays honest either way because the
    /// lower bound is instance-level, not search-derived.
    #[must_use]
    pub fn with_coarse_budget(mut self, budget: Option<u64>) -> Self {
        self.coarse_budget = budget;
        self
    }

    /// Enables or disables the parallel fan-out of the *exact delegation
    /// path*. Coarse refinement solves always run the serial subtree: a
    /// node budget's cutoff point is only deterministic there (parallel
    /// workers race the shared incumbent, which perturbs per-worker
    /// expansion counts), and determinism across thread counts is part of
    /// this solver's contract. The returned placement is identical either
    /// way.
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel && cfg!(feature = "parallel");
        self
    }

    /// Seeds the next solve with a previous full concrete assignment. On
    /// the exact delegation path it is handed to the inner solver's
    /// warm-start machinery; on the coarse path a feasible seed becomes
    /// the initial incumbent the projections must beat. Consumed by the
    /// next solve.
    #[must_use]
    pub fn with_warm_start(mut self, assignment: Vec<usize>) -> Self {
        self.warm_start = Some(assignment);
        self
    }

    /// Sets or clears the warm-start seed in place.
    pub fn set_warm_start(&mut self, assignment: Option<Vec<usize>>) {
        self.warm_start = assignment;
    }

    /// The optimality bracket of the most recent solve, if any.
    pub fn last_certificate(&self) -> Option<GapCertificate> {
        self.last_certificate
    }

    /// Aggregate inner-solver counters of the most recent solve (summed
    /// over every coarse round), if any.
    pub fn last_stats(&self) -> Option<SolveStats> {
        self.last_stats
    }
}

/// Sums `s` into `total` (all counters, sticky flags).
fn add_stats(total: &mut SolveStats, s: &SolveStats) {
    total.nodes_expanded += s.nodes_expanded;
    total.pruned_bound += s.pruned_bound;
    total.pruned_infeasible += s.pruned_infeasible;
    total.subtrees += s.subtrees;
    total.warm_start_used |= s.warm_start_used;
    total.budget_exhausted |= s.budget_exhausted;
}

/// Deterministic heavy-edge agglomeration down to `target` clusters.
///
/// The returned vector is sorted by cluster id (smallest member index);
/// merging two clusters keeps that invariant because the merged cluster
/// inherits the smaller id and the other entry is removed. Stops early
/// when no eligible pair remains (pinned clusters never merge, and a
/// merge whose aggregate demand fits no device would make the coarse
/// problem spuriously infeasible).
fn cluster_graph(problem: &OsdProblem<'_>, pins: &[Option<usize>], target: usize) -> Vec<Cluster> {
    let graph = problem.graph();
    let env = problem.env();
    let mut clusters: Vec<Cluster> = graph
        .components()
        .map(|(id, c)| Cluster {
            members: vec![id.index()],
            demand: c.resources().clone(),
            pin: pins[id.index()],
            children: None,
        })
        .collect();

    while clusters.len() > target {
        let cn = clusters.len();
        let mut of = vec![0usize; graph.component_count()];
        for (pos, cl) in clusters.iter().enumerate() {
            for &m in &cl.members {
                of[m] = pos;
            }
        }
        // Inter-cluster throughput, folded onto unordered position pairs
        // (position order equals id order by the sort invariant).
        let mut weight = vec![0.0f64; cn * cn];
        for e in graph.edges() {
            let (a, b) = (of[e.from.index()], of[e.to.index()]);
            if a != b {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                weight[lo * cn + hi] += e.throughput;
            }
        }
        // Heaviest eligible pair; strict `>` keeps the first (smallest
        // id pair) on ties. Zero-weight merges are allowed so sparse
        // graphs still reach the target.
        let mut best: Option<(f64, usize, usize)> = None;
        for lo in 0..cn {
            if clusters[lo].pin.is_some() {
                continue;
            }
            for hi in (lo + 1)..cn {
                if clusters[hi].pin.is_some() {
                    continue;
                }
                let Ok(merged) = clusters[lo].demand.checked_add(&clusters[hi].demand) else {
                    continue;
                };
                if !env
                    .devices()
                    .iter()
                    .any(|d| merged.fits_within(d.availability()))
                {
                    continue;
                }
                let w = weight[lo * cn + hi];
                if best.is_none_or(|(bw, _, _)| w > bw) {
                    best = Some((w, lo, hi));
                }
            }
        }
        let Some((_, lo, hi)) = best else { break };
        let hi_cl = clusters.remove(hi);
        let lo_cl = clusters[lo].clone();
        let mut members = lo_cl.members.clone();
        members.extend_from_slice(&hi_cl.members);
        members.sort_unstable();
        let demand = lo_cl
            .demand
            .checked_add(&hi_cl.demand)
            .expect("dimensions validated");
        clusters[lo] = Cluster {
            members,
            demand,
            pin: None,
            children: Some(Box::new((lo_cl, hi_cl))),
        };
    }
    clusters
}

/// Builds the contracted service graph: one component per cluster
/// (aggregate demand, inherited pin), one edge per connected cluster pair
/// carrying the aggregate throughput, oriented low→high position so the
/// result is always acyclic. Direction is immaterial to both the cost
/// model and the shared-medium bandwidth check (see module docs).
fn build_coarse_graph(problem: &OsdProblem<'_>, clusters: &[Cluster]) -> ServiceGraph {
    let graph = problem.graph();
    let cn = clusters.len();
    let mut of = vec![0usize; graph.component_count()];
    for (pos, cl) in clusters.iter().enumerate() {
        for &m in &cl.members {
            of[m] = pos;
        }
    }
    let mut coarse = ServiceGraph::new();
    let ids: Vec<ComponentId> = clusters
        .iter()
        .map(|cl| {
            let mut b =
                ServiceComponent::builder(format!("abs{}", cl.id())).resources(cl.demand.clone());
            if let Some(d) = cl.pin {
                b = b.pinned_to(DeviceId::from_index(d));
            }
            coarse.add_component(b.build())
        })
        .collect();
    let mut agg = vec![0.0f64; cn * cn];
    for e in graph.edges() {
        let (a, b) = (of[e.from.index()], of[e.to.index()]);
        if a != b {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            agg[lo * cn + hi] += e.throughput;
        }
    }
    for lo in 0..cn {
        for hi in (lo + 1)..cn {
            let tp = agg[lo * cn + hi];
            if tp > 0.0 {
                coarse
                    .add_edge(ids[lo], ids[hi], tp)
                    .expect("low->high edges cannot cycle");
            }
        }
    }
    coarse
}

/// Certified lower bound on the cost of any feasible placement: the
/// pinned components' exact end-system cost plus the [`NodeCostTable`]
/// suffix bound over the free ones, tightened by the fractional transport
/// bound on proportional-device environments. Network cost is
/// non-negative, so omitting it keeps the bound admissible.
fn lower_bound(problem: &OsdProblem<'_>, pins: &[Option<usize>], table: &NodeCostTable) -> f64 {
    let k = problem.env().device_count();
    let mut naive = 0.0f64;
    for (m, pin) in pins.iter().enumerate() {
        let v = match pin {
            Some(d) => table.end_system(m, *d),
            None => (0..k)
                .map(|d| table.end_system(m, d))
                .fold(f64::INFINITY, f64::min),
        };
        if !v.is_finite() {
            // No device can host this component at all; any upper bound
            // would contradict this, so fall back to a trivial floor.
            return 0.0;
        }
        naive += v;
    }
    naive.max(transport_bound(problem, pins, table)) * BOUND_SLACK
}

/// Per-dimension fractional transport bound for proportional-device
/// environments (`avail_d = λ_d · base`): relax end-system placement to a
/// single resource dimension, let components split fractionally across
/// devices, and fill the largest devices with the highest-density
/// (`es_base / rᵢ`) components first. The exchange argument makes this
/// greedy the fractional optimum, hence a floor for every integral
/// placement. Returns 0 (no information) when devices are not
/// proportional.
fn transport_bound(problem: &OsdProblem<'_>, pins: &[Option<usize>], table: &NodeCostTable) -> f64 {
    let env = problem.env();
    let devices = env.devices();
    let k = devices.len();
    let graph = problem.graph();
    let base = devices[0].availability();
    let dim = base.dim();

    let mut lambda = vec![0.0f64; k];
    for (d, dev) in devices.iter().enumerate() {
        let a = dev.availability();
        let mut ratio: Option<f64> = None;
        for i in 0..dim {
            let b = base.get(i).unwrap_or(0.0);
            let v = a.get(i).unwrap_or(0.0);
            if b <= EPSILON {
                if v > EPSILON {
                    return 0.0;
                }
                continue;
            }
            let r = v / b;
            match ratio {
                None => ratio = Some(r),
                Some(prev) => {
                    if (r - prev).abs() > 1e-9 * prev.max(1.0) {
                        return 0.0;
                    }
                }
            }
        }
        lambda[d] = ratio.unwrap_or(0.0);
        if lambda[d] <= 0.0 {
            return 0.0;
        }
    }

    // λ₀ = 1, so es(c, device 0) is exactly es_base(c).
    let es_base = |m: usize| table.end_system(m, 0);
    let demand = |m: usize, i: usize| {
        graph
            .component(ComponentId::from_index(m))
            .expect("dense ids")
            .resources()
            .get(i)
            .unwrap_or(0.0)
    };
    let mut dev_order: Vec<usize> = (0..k).collect();
    dev_order.sort_by(|&a, &b| {
        lambda[b]
            .partial_cmp(&lambda[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let mut best = 0.0f64;
    for i in 0..dim {
        if base.get(i).unwrap_or(0.0) <= EPSILON {
            continue;
        }
        let mut cap: Vec<f64> = devices
            .iter()
            .map(|d| d.availability().get(i).unwrap_or(0.0))
            .collect();
        let mut cost = 0.0f64;
        let mut frees: Vec<usize> = Vec::new();
        for (m, pin) in pins.iter().enumerate() {
            match pin {
                Some(d) => {
                    cap[*d] = (cap[*d] - demand(m, i)).max(0.0);
                    let es = table.end_system(m, *d);
                    if !es.is_finite() {
                        return 0.0;
                    }
                    cost += es;
                }
                None => {
                    if !es_base(m).is_finite() {
                        return 0.0;
                    }
                    frees.push(m);
                }
            }
        }
        // Highest density first; zero-demand components have infinite
        // density and cost their es_base on the largest device.
        frees.sort_by(|&a, &b| {
            let da = if demand(a, i) > 0.0 {
                es_base(a) / demand(a, i)
            } else {
                f64::INFINITY
            };
            let db = if demand(b, i) > 0.0 {
                es_base(b) / demand(b, i)
            } else {
                f64::INFINITY
            };
            db.partial_cmp(&da)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut di = 0usize;
        let mut remaining = cap[dev_order[0]];
        'fill: for &m in &frees {
            let r_total = demand(m, i);
            if r_total <= 0.0 {
                cost += es_base(m) / lambda[dev_order[0]];
                continue;
            }
            let density = es_base(m) / r_total;
            let mut r = r_total;
            while r > 0.0 {
                if di >= k {
                    // Capacity exhausted: the partial sum is still a
                    // valid floor, so stop accumulating.
                    break 'fill;
                }
                if remaining <= 1e-12 {
                    di += 1;
                    if di < k {
                        remaining = cap[dev_order[di]];
                    }
                    continue;
                }
                let take = r.min(remaining);
                cost += density * take / lambda[dev_order[di]];
                r -= take;
                remaining -= take;
            }
        }
        best = best.max(cost);
    }
    best
}

/// Per-cluster refinement gain: an upper bound on what splitting the
/// cluster could save, given the current coarse placement. Returns the
/// position of the best splittable cluster with positive gain, or `None`
/// when refinement cannot improve the incumbent (zero bound gap).
fn pick_split(
    problem: &OsdProblem<'_>,
    clusters: &[Cluster],
    coarse_assign: &[usize],
    table: &NodeCostTable,
    min_es: &[f64],
) -> Option<usize> {
    let graph = problem.graph();
    let env = problem.env();
    let w_net = problem.weights().network();
    let mut of = vec![0usize; graph.component_count()];
    for (pos, cl) in clusters.iter().enumerate() {
        for &m in &cl.members {
            of[m] = pos;
        }
    }
    let mut gain = vec![0.0f64; clusters.len()];
    for (pos, cl) in clusters.iter().enumerate() {
        let d = coarse_assign[pos];
        for &m in &cl.members {
            let es = table.end_system(m, d);
            if es.is_finite() && min_es[m].is_finite() {
                gain[pos] += es - min_es[m];
            }
        }
    }
    for e in graph.edges() {
        let (a, b) = (of[e.from.index()], of[e.to.index()]);
        if a == b {
            continue;
        }
        let (da, db) = (coarse_assign[a], coarse_assign[b]);
        if da == db {
            continue;
        }
        let bw = env.bandwidth().get(da, db);
        if bw > EPSILON {
            let c = w_net * e.throughput / bw;
            gain[a] += c;
            gain[b] += c;
        }
    }
    let mut best: Option<(f64, usize, usize)> = None; // (gain, id, pos)
    for (pos, cl) in clusters.iter().enumerate() {
        if !cl.splittable() || gain[pos] <= GAIN_FLOOR {
            continue;
        }
        let candidate = (gain[pos], cl.id(), pos);
        let better = match best {
            None => true,
            Some((bg, bid, _)) => candidate.0 > bg || (candidate.0 == bg && candidate.1 < bid),
        };
        if better {
            best = Some(candidate);
        }
    }
    best.map(|(_, _, pos)| pos)
}

/// The largest splittable cluster (ties by smallest id), used to recover
/// from a coarse abstraction that turned out infeasible even though the
/// concrete instance may not be.
fn pick_largest_splittable(clusters: &[Cluster]) -> Option<usize> {
    let mut best: Option<(usize, usize, usize)> = None; // (len, id, pos)
    for (pos, cl) in clusters.iter().enumerate() {
        if !cl.splittable() {
            continue;
        }
        let candidate = (cl.members.len(), cl.id(), pos);
        let better = match best {
            None => true,
            Some((bl, bid, _)) => candidate.0 > bl || (candidate.0 == bl && candidate.1 < bid),
        };
        if better {
            best = Some(candidate);
        }
    }
    best.map(|(_, _, pos)| pos)
}

/// Splits `clusters[pos]` into its merge children, keeping the vector
/// sorted by cluster id.
fn split_cluster(clusters: &mut Vec<Cluster>, pos: usize) {
    let parent = clusters.remove(pos);
    let (a, b) = *parent.children.expect("caller checked splittable");
    // `a` inherits the parent's id, so it lands back at `pos`; `b` is
    // inserted at its sorted position.
    clusters.insert(pos, a);
    let bid = b.id();
    let insert_at = clusters
        .binary_search_by(|cl| cl.id().cmp(&bid))
        .expect_err("ids are unique");
    clusters.insert(insert_at, b);
}

impl ServiceDistributor for HierarchicalSolver {
    fn name(&self) -> &str {
        "hierarchical"
    }

    fn distribute(&mut self, problem: &OsdProblem<'_>) -> Result<Cut, DistributionError> {
        self.last_certificate = None;
        self.last_stats = None;
        let (pins, _) = seed_with_pins(problem)?;
        let graph = problem.graph();
        let env = problem.env();
        let k = env.device_count();
        let n = graph.component_count();
        let free = pins.iter().filter(|p| p.is_none()).count();
        let warm = self.warm_start.take();

        // Exact delegation: within the inner solver's reach, solve the
        // original problem directly — bit-identical to ExhaustiveOptimal.
        if free <= self.exact_limit {
            let mut inner = ExhaustiveOptimal::new()
                .with_node_limit(self.exact_limit)
                .with_parallel(self.parallel);
            inner.set_warm_start(warm);
            let cut = inner.distribute(problem)?;
            let cost = problem.cost(&cut);
            self.last_stats = inner.last_stats();
            self.last_certificate = Some(GapCertificate {
                upper: cost,
                lower: cost,
                gap: 0.0,
                rounds: 0,
                clusters: free,
                exact: true,
            });
            return Ok(cut);
        }

        let all_ids: Vec<ComponentId> = graph.component_ids().collect();
        let table = NodeCostTable::build(problem, &all_ids);
        let min_es: Vec<f64> = (0..n)
            .map(|m| {
                (0..k)
                    .map(|d| table.end_system(m, d))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let lower = lower_bound(problem, &pins, &table);

        let mut clusters = cluster_graph(problem, &pins, self.coarse_target);
        let mut stats = SolveStats::default();
        // Incumbent: (cost, concrete assignment), ordered by cost bits
        // then lexicographic assignment for determinism.
        let mut best: Option<(f64, Vec<usize>)> = None;
        if let Some(seed) = warm {
            if seed.len() == n && seed.iter().all(|&d| d < k) {
                if let Some(cut) = Cut::from_assignment(graph, seed.clone(), k) {
                    if problem.fits(&cut) {
                        best = Some((problem.cost(&cut), seed));
                    }
                }
            }
        }
        // Seed the first coarse solve from the warm incumbent when there
        // is one: cluster representatives inherit its devices (the inner
        // solver validates coarse feasibility and ignores a seed that
        // lost it to co-location).
        let mut coarse_seed: Option<Vec<usize>> = best.as_ref().map(|(_, assignment)| {
            clusters
                .iter()
                .map(|cl| assignment[cl.members[0]])
                .collect()
        });
        let mut rounds = 0u32;

        loop {
            let coarse_graph = build_coarse_graph(problem, &clusters);
            let coarse_problem = OsdProblem::new(&coarse_graph, env, problem.weights());
            // Always the serial subtree: the node budget's cutoff is only
            // deterministic without racing workers (see `with_parallel`).
            let mut inner = ExhaustiveOptimal::new()
                .with_node_limit(self.refine_limit)
                .with_node_budget(self.coarse_budget)
                .with_parallel(false);
            inner.set_warm_start(coarse_seed.take());
            match inner.distribute(&coarse_problem) {
                Ok(coarse_cut) => {
                    if let Some(s) = inner.last_stats() {
                        add_stats(&mut stats, &s);
                    }
                    let coarse_assign = coarse_cut.assignment();
                    let mut concrete = vec![0usize; n];
                    for (pos, cl) in clusters.iter().enumerate() {
                        for &m in &cl.members {
                            concrete[m] = coarse_assign[pos];
                        }
                    }
                    let cut = Cut::from_assignment(graph, concrete.clone(), k)
                        .expect("projection is complete and in range");
                    debug_assert!(
                        problem.fits(&cut),
                        "coarse feasibility must project to concrete feasibility"
                    );
                    let cost = problem.cost(&cut);
                    let improves = match &best {
                        None => true,
                        Some((bc, ba)) => cost < *bc || (cost == *bc && concrete < *ba),
                    };
                    if improves {
                        best = Some((cost, concrete.clone()));
                    }

                    let upper = best.as_ref().expect("just set").0;
                    let gap = if lower > 0.0 {
                        ((upper - lower) / lower).max(0.0)
                    } else if upper <= 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    };
                    if gap <= self.gap_tolerance
                        || rounds >= self.max_rounds
                        || clusters.len() >= self.refine_limit
                    {
                        break;
                    }
                    let Some(pos) = pick_split(problem, &clusters, &coarse_assign, &table, &min_es)
                    else {
                        // Zero bound gap everywhere: no split can improve
                        // the incumbent, stop refining.
                        break;
                    };
                    split_cluster(&mut clusters, pos);
                    // Children inherit the parent's device, so the seed
                    // replays this round's solution on the finer level.
                    let seed: Vec<usize> =
                        clusters.iter().map(|cl| concrete[cl.members[0]]).collect();
                    coarse_seed = Some(seed);
                    rounds += 1;
                }
                Err(DistributionError::Infeasible { .. }) => {
                    if let Some(s) = inner.last_stats() {
                        add_stats(&mut stats, &s);
                    }
                    // The abstraction over-constrained the instance (a
                    // cluster too chunky to pack). Refine the largest
                    // cluster and retry; give up only when nothing is
                    // splittable or the limits are hit.
                    if rounds >= self.max_rounds || clusters.len() >= self.refine_limit {
                        break;
                    }
                    let Some(pos) = pick_largest_splittable(&clusters) else {
                        break;
                    };
                    split_cluster(&mut clusters, pos);
                    rounds += 1;
                }
                Err(e) => return Err(e),
            }
        }

        self.last_stats = Some(stats);
        match best {
            Some((upper, assignment)) => {
                let gap = if lower > 0.0 {
                    ((upper - lower) / lower).max(0.0)
                } else if upper <= 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                };
                self.last_certificate = Some(GapCertificate {
                    upper,
                    lower,
                    gap,
                    rounds,
                    clusters: clusters.len(),
                    exact: false,
                });
                Ok(Cut::from_assignment(graph, assignment, k)
                    .expect("incumbent assignments are complete and in range"))
            }
            None => Err(DistributionError::Infeasible {
                reason: "hierarchical refinement found no feasible coarse placement \
                         (every abstraction level was over-constrained)"
                    .into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::environment::Environment;
    use ubiqos_model::Weights;

    fn comp(name: &str, mem: f64, cpu: f64) -> ServiceComponent {
        ServiceComponent::builder(name)
            .resources(ResourceVector::mem_cpu(mem, cpu))
            .build()
    }

    /// A deterministic pseudo-random chain+shortcut graph of `n`
    /// components (splitmix64 streams, no external RNG).
    fn synth_graph(n: usize, seed: u64) -> ServiceGraph {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut g = ServiceGraph::new();
        let ids: Vec<ComponentId> = (0..n)
            .map(|i| {
                let mem = 2.0 + (next() % 12) as f64;
                let cpu = 3.0 + (next() % 14) as f64;
                g.add_component(comp(&format!("c{i}"), mem, cpu))
            })
            .collect();
        for i in 1..n {
            let tp = 0.1 + (next() % 10) as f64 * 0.1;
            g.add_edge(ids[i - 1], ids[i], tp).unwrap();
            if i >= 4 && next() % 3 == 0 {
                let j = (next() % (i as u64 - 2)) as usize;
                let tp = 0.1 + (next() % 6) as f64 * 0.1;
                let _ = g.add_edge(ids[j], ids[i], tp);
            }
        }
        g
    }

    /// Three exactly proportional devices (λ = 1.0, 0.5, 0.25) sized for
    /// an `n`-component synth graph.
    fn proportional_env(n: usize) -> Environment {
        let scale = n as f64;
        Environment::builder()
            .device(Device::new(
                "big",
                ResourceVector::mem_cpu(16.0 * scale, 20.0 * scale),
            ))
            .device(Device::new(
                "mid",
                ResourceVector::mem_cpu(8.0 * scale, 10.0 * scale),
            ))
            .device(Device::new(
                "small",
                ResourceVector::mem_cpu(4.0 * scale, 5.0 * scale),
            ))
            .default_bandwidth_mbps(500.0)
            .build()
    }

    #[test]
    fn delegates_bit_identically_within_the_exact_limit() {
        let g = synth_graph(12, 0xabcd);
        let env = proportional_env(12);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let exact = ExhaustiveOptimal::new().distribute(&p).unwrap();
        let mut hier = HierarchicalSolver::new();
        let cut = hier.distribute(&p).unwrap();
        assert_eq!(cut, exact);
        assert_eq!(p.cost(&cut).to_bits(), p.cost(&exact).to_bits());
        let cert = hier.last_certificate().unwrap();
        assert!(cert.exact);
        assert_eq!(cert.gap, 0.0);
        assert_eq!(cert.upper.to_bits(), p.cost(&exact).to_bits());
    }

    #[test]
    fn solves_graphs_beyond_the_exact_limit_with_a_certificate() {
        let g = synth_graph(48, 0x4848);
        let env = proportional_env(48);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let mut hier = HierarchicalSolver::new().with_coarse_target(10);
        let cut = hier.distribute(&p).unwrap();
        assert!(p.fits(&cut));
        let cert = hier.last_certificate().unwrap();
        assert!(!cert.exact);
        assert!(cert.lower > 0.0);
        assert!(cert.upper >= cert.lower);
        assert!(cert.gap.is_finite());
        assert!(hier.last_stats().unwrap().nodes_expanded > 0);
    }

    #[test]
    fn serial_and_parallel_coarse_paths_agree_bit_for_bit() {
        let g = synth_graph(40, 0x7777);
        let env = proportional_env(40);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let mut serial = HierarchicalSolver::new()
            .with_coarse_target(8)
            .with_parallel(false);
        let mut parallel = HierarchicalSolver::new()
            .with_coarse_target(8)
            .with_parallel(true);
        let cs = serial.distribute(&p).unwrap();
        let cp = parallel.distribute(&p).unwrap();
        assert_eq!(cs, cp);
        assert_eq!(p.cost(&cs).to_bits(), p.cost(&cp).to_bits());
        let (a, b) = (
            serial.last_certificate().unwrap(),
            parallel.last_certificate().unwrap(),
        );
        assert_eq!(a.upper.to_bits(), b.upper.to_bits());
        assert_eq!(a.lower.to_bits(), b.lower.to_bits());
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn clustering_is_deterministic_and_respects_pins() {
        let mut g = synth_graph(20, 0x2020);
        let pinned = g.add_component(
            ServiceComponent::builder("display")
                .resources(ResourceVector::mem_cpu(2.0, 2.0))
                .pinned_to(DeviceId::from_index(2))
                .build(),
        );
        let first = g.component_ids().next().unwrap();
        g.add_edge(first, pinned, 5.0).unwrap();
        let env = proportional_env(21);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let (pins, _) = seed_with_pins(&p).unwrap();
        let a = cluster_graph(&p, &pins, 6);
        let b = cluster_graph(&p, &pins, 6);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.members, y.members);
            assert_eq!(x.pin, y.pin);
        }
        // The pinned component stays a singleton cluster.
        let pin_cluster = a
            .iter()
            .find(|cl| cl.members.contains(&pinned.index()))
            .unwrap();
        assert_eq!(pin_cluster.members, vec![pinned.index()]);
        assert_eq!(pin_cluster.pin, Some(2));
        // Sorted by cluster id.
        for w in a.windows(2) {
            assert!(w[0].id() < w[1].id());
        }
    }

    #[test]
    fn lower_bound_never_exceeds_the_true_optimum() {
        for seed in [0x11u64, 0x22, 0x33, 0x44] {
            let g = synth_graph(9, seed);
            let env = proportional_env(16);
            let w = Weights::default();
            let p = OsdProblem::new(&g, &env, &w);
            let exact = ExhaustiveOptimal::new().distribute(&p).unwrap();
            let opt = p.cost(&exact);
            let (pins, _) = seed_with_pins(&p).unwrap();
            let ids: Vec<ComponentId> = g.component_ids().collect();
            let table = NodeCostTable::build(&p, &ids);
            let lb = lower_bound(&p, &pins, &table);
            assert!(
                lb <= opt + 1e-12,
                "seed {seed:#x}: lower bound {lb} above optimum {opt}"
            );
            assert!(lb > 0.0);
        }
    }

    #[test]
    fn transport_bound_vanishes_on_non_proportional_devices() {
        let g = synth_graph(8, 0x99);
        let env = Environment::builder()
            .device(Device::new("a", ResourceVector::mem_cpu(100.0, 50.0)))
            .device(Device::new("b", ResourceVector::mem_cpu(50.0, 100.0)))
            .default_bandwidth_mbps(100.0)
            .build();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let (pins, _) = seed_with_pins(&p).unwrap();
        let ids: Vec<ComponentId> = g.component_ids().collect();
        let table = NodeCostTable::build(&p, &ids);
        assert_eq!(transport_bound(&p, &pins, &table), 0.0);
        // The naive suffix floor still applies.
        assert!(lower_bound(&p, &pins, &table) > 0.0);
    }

    #[test]
    fn split_keeps_clusters_sorted() {
        let g = synth_graph(12, 0x1212);
        let env = proportional_env(12);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let pins = vec![None; 12];
        let mut clusters = cluster_graph(&p, &pins, 4);
        while let Some(pos) = pick_largest_splittable(&clusters) {
            split_cluster(&mut clusters, pos);
            for w in clusters.windows(2) {
                assert!(w[0].id() < w[1].id());
            }
        }
        // Fully unwound: every cluster is a singleton again.
        assert_eq!(clusters.len(), 12);
        assert!(clusters.iter().all(|cl| cl.members.len() == 1));
    }

    #[test]
    fn warm_start_seed_becomes_the_incumbent_to_beat() {
        let g = synth_graph(40, 0x4040);
        let env = proportional_env(40);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let mut cold = HierarchicalSolver::new().with_coarse_target(8);
        let cut = cold.distribute(&p).unwrap();
        let seed: Vec<usize> = cut.assignment();
        let mut warm = HierarchicalSolver::new()
            .with_coarse_target(8)
            .with_warm_start(seed);
        let warm_cut = warm.distribute(&p).unwrap();
        // Seeding the cold result can only keep or improve the incumbent.
        assert!(p.cost(&warm_cut) <= p.cost(&cut) + 1e-12);
    }
}
