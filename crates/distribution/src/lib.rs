//! # ubiqos-distribution
//!
//! The **service distribution tier** of the *ubiqos* reproduction of Gu &
//! Nahrstedt, ICDCS 2002 (Section 3.3). Given a QoS-consistent service
//! graph and the `k` devices currently available to the user, the
//! distributor finds a k-cut of the graph that
//!
//! 1. **fits into** the devices (Definition 3.4): each part's summed
//!    resource requirement is within its device's availability, and the
//!    throughput crossing each device pair is within the available
//!    bandwidth `b(i, j)`; and
//! 2. minimizes **cost aggregation** (Definition 3.5): a weighted,
//!    scarcity-normalized sum of end-system resource use plus cut
//!    bandwidth use — "the more important and more scarce the resource,
//!    the larger the cost".
//!
//! Finding the optimal such cut (the **OSD problem**) is NP-hard
//! (Theorem 1, by reduction from minimum directed multiway cut), so the
//! crate provides:
//!
//! * [`GreedyHeuristic`] — the paper's polynomial heuristic (pin, then
//!   repeatedly place the heaviest cluster-neighbor on the most-available
//!   device);
//! * [`ExhaustiveOptimal`] — branch-and-bound exact search, tractable for
//!   the 10-20 node graphs of Table 1;
//! * [`RandomDistributor`] — the random baseline of Table 1 / Figure 5;
//! * ablation variants of the heuristic (no device re-sorting, no cluster
//!   adjacency) used by the ablation benches.
//!
//! # Example
//!
//! ```
//! use ubiqos_distribution::{Device, Environment, GreedyHeuristic, OsdProblem, ServiceDistributor};
//! use ubiqos_graph::{ServiceComponent, ServiceGraph};
//! use ubiqos_model::{ResourceVector, Weights};
//!
//! let mut g = ServiceGraph::new();
//! let a = g.add_component(
//!     ServiceComponent::builder("server")
//!         .resources(ResourceVector::mem_cpu(64.0, 50.0))
//!         .build(),
//! );
//! let b = g.add_component(
//!     ServiceComponent::builder("player")
//!         .resources(ResourceVector::mem_cpu(16.0, 30.0))
//!         .build(),
//! );
//! g.add_edge(a, b, 1.4)?;
//!
//! let env = Environment::builder()
//!     .device(Device::new("pc", ResourceVector::mem_cpu(256.0, 300.0)))
//!     .device(Device::new("pda", ResourceVector::mem_cpu(32.0, 50.0)))
//!     .default_bandwidth_mbps(5.0)
//!     .build();
//! let weights = Weights::default();
//! let problem = OsdProblem::new(&g, &env, &weights);
//! let cut = GreedyHeuristic::paper().distribute(&problem).unwrap();
//! assert!(problem.fits(&cut));
//! # Ok::<(), ubiqos_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod bounds;
pub mod cost;
pub mod device;
pub mod environment;
pub mod error;
pub mod heuristic;
pub mod hierarchical;
pub mod network;
pub mod optimal;
pub mod portfolio;
pub mod problem;
pub mod random_alg;
pub mod report;

pub use algorithm::ServiceDistributor;
pub use bounds::NodeCostTable;
pub use device::{Device, DeviceClass};
pub use environment::{Environment, EnvironmentBuilder};
pub use error::DistributionError;
pub use heuristic::GreedyHeuristic;
pub use hierarchical::{GapCertificate, HierarchicalSolver};
pub use network::BandwidthMatrix;
pub use optimal::{ExhaustiveOptimal, SolveStats};
pub use portfolio::{PortfolioOutcome, PortfolioRoute, SolverPortfolio};
pub use problem::OsdProblem;
pub use random_alg::RandomDistributor;
pub use report::{DeviceLoad, LinkLoad, PlacementReport};
