//! Pairwise end-to-end bandwidth between devices.

use serde::{Deserialize, Serialize};

/// The available end-to-end bandwidth `b(i, j)` between every device pair,
/// in Mbps.
///
/// Stored symmetrically (`b(i, j) == b(j, i)`), matching the paper's
/// experiments which specify one bandwidth per unordered device pair
/// (e.g. `b_{1,2} = 50 Mbps`). The diagonal is infinite: co-located
/// components communicate through memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthMatrix {
    n: usize,
    /// Upper triangle, row-major: entry for `(i, j)` with `i < j`.
    upper: Vec<f64>,
}

impl BandwidthMatrix {
    /// Creates a matrix for `n` devices with every pair set to
    /// `default_mbps`.
    pub fn uniform(n: usize, default_mbps: f64) -> Self {
        BandwidthMatrix {
            n,
            upper: vec![default_mbps; n * n.saturating_sub(1) / 2],
        }
    }

    /// The number of devices.
    pub fn device_count(&self) -> usize {
        self.n
    }

    /// The bandwidth between devices `i` and `j`, `f64::INFINITY` on the
    /// diagonal.
    ///
    /// # Panics
    ///
    /// Panics when `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            assert!(i < self.n, "device index out of range");
            return f64::INFINITY;
        }
        self.upper[self.flat(i, j)]
    }

    /// Sets the bandwidth between devices `i` and `j` (both directions).
    ///
    /// # Panics
    ///
    /// Panics when `i == j`, an index is out of range, or `mbps` is
    /// negative/non-finite.
    pub fn set(&mut self, i: usize, j: usize, mbps: f64) {
        assert!(i != j, "cannot set the diagonal");
        assert!(mbps.is_finite() && mbps >= 0.0, "invalid bandwidth {mbps}");
        let idx = self.flat(i, j);
        self.upper[idx] = mbps;
    }

    /// Iterates over `(i, j, bandwidth)` for every unordered pair `i < j`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| ((i + 1)..self.n).map(move |j| (i, j, self.get(i, j))))
    }

    fn flat(&self, i: usize, j: usize) -> usize {
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        assert!(hi < self.n, "device index out of range");
        // Offset of row `lo` in the packed upper triangle.
        lo * self.n - lo * (lo + 1) / 2 + (hi - lo - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_symmetric() {
        let mut m = BandwidthMatrix::uniform(3, 5.0);
        assert_eq!(m.get(0, 1), 5.0);
        m.set(0, 1, 50.0);
        assert_eq!(m.get(0, 1), 50.0);
        assert_eq!(m.get(1, 0), 50.0, "symmetric");
        assert_eq!(m.get(1, 2), 5.0, "other pairs untouched");
        assert_eq!(m.get(0, 2), 5.0);
    }

    #[test]
    fn diagonal_is_infinite() {
        let m = BandwidthMatrix::uniform(2, 1.0);
        assert_eq!(m.get(0, 0), f64::INFINITY);
        assert_eq!(m.get(1, 1), f64::INFINITY);
    }

    #[test]
    fn figure5_topology() {
        // b(1,2)=50, b(1,3)=5, b(2,3)=5 (paper indices are 1-based).
        let mut m = BandwidthMatrix::uniform(3, 5.0);
        m.set(0, 1, 50.0);
        assert_eq!(m.get(0, 1), 50.0);
        assert_eq!(m.get(0, 2), 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0], (0, 1, 50.0));
    }

    #[test]
    #[should_panic(expected = "device index out of range")]
    fn out_of_range_get_panics() {
        let m = BandwidthMatrix::uniform(2, 1.0);
        let _ = m.get(0, 5);
    }

    #[test]
    #[should_panic(expected = "cannot set the diagonal")]
    fn setting_diagonal_panics() {
        let mut m = BandwidthMatrix::uniform(2, 1.0);
        m.set(1, 1, 10.0);
    }

    #[test]
    #[should_panic(expected = "invalid bandwidth")]
    fn negative_bandwidth_panics() {
        let mut m = BandwidthMatrix::uniform(2, 1.0);
        m.set(0, 1, -1.0);
    }

    #[test]
    fn single_device_has_no_pairs() {
        let m = BandwidthMatrix::uniform(1, 1.0);
        assert_eq!(m.pairs().count(), 0);
        assert_eq!(m.get(0, 0), f64::INFINITY);
    }
}
