//! Exhaustive optimal search for the OSD problem.
//!
//! "The optimal algorithm uses exhaustive search for the optimal service
//! distribution solution. Since the problem is NP-hard, we limit ourselves
//! to the special case of two-way cut" (Section 4) — this implementation
//! handles any `k` but is only tractable for small graphs; Table 1 uses it
//! on 10-20 node graphs with `k = 2`, exactly like the paper.
//!
//! The search is branch-and-bound over per-component device assignments:
//!
//! * components are visited in decreasing weighted-requirement order so
//!   resource-capacity violations prune early;
//! * partial cost (end-system terms of placed components plus network
//!   terms of fully placed edges) is a lower bound on the final cost —
//!   branches at or above the incumbent are cut;
//! * per-pair crossing throughput is tracked incrementally and branches
//!   violating a bandwidth capacity are cut.

use crate::algorithm::{seed_with_pins, ServiceDistributor};
use crate::error::DistributionError;
use crate::problem::OsdProblem;
use ubiqos_graph::{ComponentId, Cut};
use ubiqos_model::EPSILON;

/// Exhaustive branch-and-bound OSD solver.
///
/// Worst-case cost is `k^n`; the solver refuses instances with more than
/// [`ExhaustiveOptimal::node_limit`] free (un-pinned) components rather
/// than hanging — raise the limit explicitly when you know the instance
/// prunes well.
#[derive(Debug, Clone)]
pub struct ExhaustiveOptimal {
    node_limit: usize,
}

impl Default for ExhaustiveOptimal {
    fn default() -> Self {
        ExhaustiveOptimal { node_limit: 26 }
    }
}

impl ExhaustiveOptimal {
    /// Creates the solver with the default 26-free-component limit
    /// (plenty for the paper's 10-20 node Table 1 instances).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the free-component limit.
    #[must_use]
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    /// The current free-component limit.
    pub fn node_limit(&self) -> usize {
        self.node_limit
    }
}

struct Search<'p, 'a> {
    problem: &'p OsdProblem<'a>,
    /// Components still to place, in visiting order.
    order: Vec<ComponentId>,
    /// Current per-component device assignment (pins pre-filled).
    assignment: Vec<Option<usize>>,
    residual: Vec<ubiqos_model::ResourceVector>,
    /// Crossing throughput accumulated per ordered device pair.
    crossing: Vec<Vec<f64>>,
    best_cost: f64,
    best: Option<Vec<usize>>,
}

impl Search<'_, '_> {
    fn run(&mut self, depth: usize, partial_cost: f64) {
        if partial_cost >= self.best_cost {
            return;
        }
        if depth == self.order.len() {
            self.best_cost = partial_cost;
            self.best = Some(
                self.assignment
                    .iter()
                    .map(|a| a.expect("complete at leaf"))
                    .collect(),
            );
            return;
        }
        let c = self.order[depth];
        let graph = self.problem.graph();
        let env = self.problem.env();
        let weights = self.problem.weights();
        let need = graph.component(c).expect("dense ids").resources().clone();

        for d in 0..env.device_count() {
            if !need.fits_within(&self.residual[d]) {
                continue;
            }
            // End-system cost increment for placing `c` on `d`.
            let avail = env.devices()[d].availability();
            let mut delta = 0.0;
            let mut unusable = false;
            for (i, &w) in weights.resource().iter().enumerate() {
                let r = need.get(i).unwrap_or(0.0);
                if r <= EPSILON {
                    continue;
                }
                let ra = avail.get(i).unwrap_or(0.0);
                if ra <= EPSILON {
                    unusable = true;
                    break;
                }
                delta += w * r / ra;
            }
            if unusable {
                continue;
            }
            // Network cost increments for edges whose other endpoint is
            // already placed; track crossings and enforce bandwidth.
            let mut new_crossings: Vec<(usize, usize, f64)> = Vec::new();
            let mut bandwidth_ok = true;
            for &p in graph.predecessors(c) {
                if let Some(pd) = self.assignment[p.index()] {
                    if pd != d {
                        let tp = graph.edge_throughput(p, c).expect("edge exists");
                        new_crossings.push((pd, d, tp));
                    }
                }
            }
            for &s in graph.successors(c) {
                if let Some(sd) = self.assignment[s.index()] {
                    if sd != d {
                        let tp = graph.edge_throughput(c, s).expect("edge exists");
                        new_crossings.push((d, sd, tp));
                    }
                }
            }
            // Shared-medium feasibility (matches `OsdProblem::fits`): both
            // directions of a pair draw from the same bandwidth pool.
            let mut extra: Vec<(usize, usize, f64)> = Vec::new();
            for &(i, j, tp) in &new_crossings {
                let b = env.bandwidth().get(i, j);
                if b <= EPSILON && tp > EPSILON {
                    bandwidth_ok = false;
                    break;
                }
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                match extra.iter_mut().find(|e| e.0 == lo && e.1 == hi) {
                    Some(e) => e.2 += tp,
                    None => extra.push((lo, hi, tp)),
                }
                delta += weights.network() * tp / b;
            }
            if bandwidth_ok {
                for &(i, j, added) in &extra {
                    if self.crossing[i][j] + self.crossing[j][i] + added
                        > env.bandwidth().get(i, j) + EPSILON
                    {
                        bandwidth_ok = false;
                        break;
                    }
                }
            }
            if !bandwidth_ok {
                continue;
            }

            // Descend.
            self.assignment[c.index()] = Some(d);
            self.residual[d] = self.residual[d]
                .saturating_sub(&need)
                .expect("dimensions validated");
            for &(i, j, tp) in &new_crossings {
                self.crossing[i][j] += tp;
            }

            self.run(depth + 1, partial_cost + delta);

            for &(i, j, tp) in &new_crossings {
                self.crossing[i][j] -= tp;
            }
            self.residual[d] = self.residual[d]
                .checked_add(&need)
                .expect("dimensions validated");
            self.assignment[c.index()] = None;
        }
    }
}

impl ServiceDistributor for ExhaustiveOptimal {
    fn name(&self) -> &str {
        "optimal"
    }

    fn distribute(&mut self, problem: &OsdProblem<'_>) -> Result<Cut, DistributionError> {
        let graph = problem.graph();
        let env = problem.env();
        let k = env.device_count();
        let weights = problem.weights().resource();
        let (assignment, residual) = seed_with_pins(problem)?;

        // Pinned components already contribute end-system cost and may
        // contribute pairwise crossings among themselves; rather than
        // special-casing, compute the pinned-only partial cost up front.
        let mut crossing = vec![vec![0.0; k]; k];
        let mut base_cost = 0.0;
        for (id, c) in graph.components() {
            if let Some(d) = assignment[id.index()] {
                let avail = env.devices()[d].availability();
                for (i, &w) in problem.weights().resource().iter().enumerate() {
                    let r = c.resources().get(i).unwrap_or(0.0);
                    if r <= EPSILON {
                        continue;
                    }
                    let ra = avail.get(i).unwrap_or(0.0);
                    if ra <= EPSILON {
                        return Err(DistributionError::Infeasible {
                            reason: format!(
                                "pinned component {} needs a resource device {} lacks",
                                c.name(),
                                env.devices()[d].name()
                            ),
                        });
                    }
                    base_cost += w * r / ra;
                }
            }
        }
        for e in graph.edges() {
            if let (Some(i), Some(j)) = (
                assignment[e.from.index()],
                assignment[e.to.index()],
            ) {
                if i != j {
                    let b = env.bandwidth().get(i, j);
                    crossing[i][j] += e.throughput;
                    if crossing[i][j] + crossing[j][i] > b + EPSILON {
                        return Err(DistributionError::Infeasible {
                            reason: "pinned components exceed link bandwidth".into(),
                        });
                    }
                    base_cost += problem.weights().network() * e.throughput / b;
                }
            }
        }

        let mut order: Vec<ComponentId> = graph
            .component_ids()
            .filter(|id| assignment[id.index()].is_none())
            .collect();
        if order.len() > self.node_limit {
            return Err(DistributionError::Infeasible {
                reason: format!(
                    "instance has {} free components, above the exhaustive solver's limit of {} \
                     (raise with with_node_limit if intended)",
                    order.len(),
                    self.node_limit
                ),
            });
        }
        order.sort_by(|&a, &b| {
            let wa = graph.component(a).expect("dense").resources().weighted_sum(weights);
            let wb = graph.component(b).expect("dense").resources().weighted_sum(weights);
            wb.partial_cmp(&wa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });

        let mut search = Search {
            problem,
            order,
            assignment,
            residual,
            crossing,
            best_cost: f64::INFINITY,
            best: None,
        };
        search.run(0, base_cost);

        match search.best {
            Some(assignment) => {
                let cut = Cut::from_assignment(graph, assignment, k)
                    .expect("search produces complete in-range assignments");
                debug_assert!(problem.fits(&cut));
                Ok(cut)
            }
            None => Err(DistributionError::Infeasible {
                reason: "exhaustive search found no fitting cut".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::environment::Environment;
    use crate::heuristic::GreedyHeuristic;
    use ubiqos_graph::{DeviceId, ServiceComponent, ServiceGraph};
    use ubiqos_model::{ResourceVector, Weights};

    fn comp(name: &str, mem: f64, cpu: f64) -> ServiceComponent {
        ServiceComponent::builder(name)
            .resources(ResourceVector::mem_cpu(mem, cpu))
            .build()
    }

    fn env2(bw: f64) -> Environment {
        Environment::builder()
            .device(Device::new("pc", ResourceVector::mem_cpu(256.0, 300.0)))
            .device(Device::new("pda", ResourceVector::mem_cpu(32.0, 100.0)))
            .default_bandwidth_mbps(bw)
            .build()
    }

    /// Brute force over all assignments, for cross-checking.
    fn brute_force(p: &OsdProblem<'_>) -> Option<(Vec<usize>, f64)> {
        let n = p.graph().component_count();
        let k = p.env().device_count();
        let mut best: Option<(Vec<usize>, f64)> = None;
        let total = k.pow(n as u32);
        for code in 0..total {
            let mut c = code;
            let mut assignment = Vec::with_capacity(n);
            for _ in 0..n {
                assignment.push(c % k);
                c /= k;
            }
            let cut = Cut::from_assignment(p.graph(), assignment.clone(), k).unwrap();
            if !p.fits(&cut) {
                continue;
            }
            let cost = p.cost(&cut);
            if best.as_ref().is_none_or(|(_, b)| cost < *b) {
                best = Some((assignment, cost));
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(comp("a", 40.0, 60.0));
        let b = g.add_component(comp("b", 20.0, 30.0));
        let c = g.add_component(comp("c", 10.0, 20.0));
        let d = g.add_component(comp("d", 8.0, 10.0));
        g.add_edge(a, b, 3.0).unwrap();
        g.add_edge(a, c, 1.0).unwrap();
        g.add_edge(b, d, 2.0).unwrap();
        g.add_edge(c, d, 4.0).unwrap();
        let env = env2(10.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);

        let cut = ExhaustiveOptimal::new().distribute(&p).unwrap();
        let (_, brute_cost) = brute_force(&p).unwrap();
        assert!(
            (p.cost(&cut) - brute_cost).abs() < 1e-9,
            "b&b cost {} vs brute force {}",
            p.cost(&cut),
            brute_cost
        );
    }

    #[test]
    fn optimal_never_worse_than_heuristic() {
        let mut g = ServiceGraph::new();
        let ids: Vec<_> = (0..8)
            .map(|i| g.add_component(comp(&format!("c{i}"), 5.0 + 3.0 * i as f64, 10.0)))
            .collect();
        for i in 1..ids.len() {
            g.add_edge(ids[i - 1], ids[i], 1.0 + i as f64 * 0.3).unwrap();
        }
        g.add_edge(ids[0], ids[4], 2.0).unwrap();
        let env = env2(20.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let opt = ExhaustiveOptimal::new().distribute(&p).unwrap();
        let heu = GreedyHeuristic::paper().distribute(&p).unwrap();
        assert!(p.cost(&opt) <= p.cost(&heu) + 1e-9);
        assert!(p.fits(&opt));
    }

    #[test]
    fn respects_pins() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(comp("server", 60.0, 80.0));
        let b = g.add_component(
            ServiceComponent::builder("display")
                .resources(ResourceVector::mem_cpu(4.0, 5.0))
                .pinned_to(DeviceId::from_index(1))
                .build(),
        );
        g.add_edge(a, b, 1.0).unwrap();
        let env = env2(10.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cut = ExhaustiveOptimal::new().distribute(&p).unwrap();
        assert_eq!(cut.part_of(b), Some(1));
    }

    #[test]
    fn proves_infeasibility() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(comp("a", 200.0, 200.0));
        let b = g.add_component(comp("b", 200.0, 200.0));
        g.add_edge(a, b, 1.0).unwrap();
        let env = env2(10.0); // only the PC could host either; not both
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        assert!(matches!(
            ExhaustiveOptimal::new().distribute(&p),
            Err(DistributionError::Infeasible { .. })
        ));
    }

    #[test]
    fn bandwidth_constraints_steer_the_optimum() {
        // Two components that both fit anywhere, heavy edge: with a thin
        // link the optimum must co-locate them.
        let mut g = ServiceGraph::new();
        let a = g.add_component(comp("a", 10.0, 10.0));
        let b = g.add_component(comp("b", 10.0, 10.0));
        g.add_edge(a, b, 50.0).unwrap();
        let env = env2(5.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cut = ExhaustiveOptimal::new().distribute(&p).unwrap();
        assert_eq!(cut.part_of(a), cut.part_of(b));
    }

    #[test]
    fn node_limit_guards_exponential_instances() {
        let mut g = ServiceGraph::new();
        for i in 0..30 {
            g.add_component(comp(&format!("c{i}"), 1.0, 1.0));
        }
        let env = env2(10.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let err = ExhaustiveOptimal::new().distribute(&p).unwrap_err();
        assert!(err.to_string().contains("limit of 26"));
        // Raising the limit allows the run (this instance prunes fine).
        assert!(ExhaustiveOptimal::new()
            .with_node_limit(40)
            .distribute(&p)
            .is_ok());
        assert_eq!(ExhaustiveOptimal::new().node_limit(), 26);
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = ServiceGraph::new();
        let env = env2(10.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cut = ExhaustiveOptimal::new().distribute(&p).unwrap();
        assert_eq!(cut.len(), 0);
    }
}
