//! Exhaustive optimal search for the OSD problem.
//!
//! "The optimal algorithm uses exhaustive search for the optimal service
//! distribution solution. Since the problem is NP-hard, we limit ourselves
//! to the special case of two-way cut" (Section 4) — this implementation
//! handles any `k` but is only tractable for small graphs; Table 1 uses it
//! on 10-20 node graphs with `k = 2`, exactly like the paper.
//!
//! The search is branch-and-bound over per-component device assignments:
//!
//! * components are visited in decreasing weighted-requirement order so
//!   resource-capacity violations prune early;
//! * a precomputed [`NodeCostTable`] supplies both the exact end-system
//!   delta of each (component, device) pair and an admissible lower bound
//!   on the cost the *remaining* components must still add; branches with
//!   `partial + suffix(depth)` strictly above the incumbent are cut;
//! * per-pair crossing throughput is tracked incrementally and branches
//!   violating a bandwidth capacity are cut;
//! * the crossing/extra buffers are per-depth scratch space reused across
//!   the whole search instead of per-node allocations.
//!
//! # Parallel search and determinism
//!
//! With the `parallel` feature (on by default) the top two levels of the
//! assignment tree are expanded into independent feasible subtree roots,
//! searched concurrently via [`ubiqos_parallel::par_map`]. Workers share
//! an incumbent cost through an `AtomicU64` holding the `f64` bit
//! pattern, so a bound proven in one subtree prunes the others.
//!
//! The result is nevertheless *identical* to the serial search, bit for
//! bit: pruning is strict (`>`), so equal-cost leaves always survive, and
//! a leaf replaces the incumbent only when its cost is lower **or** equal
//! with a lexicographically smaller visiting-order device key. Both modes
//! therefore select the unique minimum of `(cost, key)` over all feasible
//! leaves; the parallel reduction compares worker results in
//! deterministic root order. Only the [`SolveStats`] node counts vary run
//! to run in parallel mode (they depend on when incumbent updates land).
//!
//! Fan-out has a fixed cost (root expansion, worker spawning, atomic
//! traffic) that small instances never amortise, so instances with fewer
//! free components than [`ExhaustiveOptimal::parallel_threshold`] run the
//! serial search even when the parallel feature is on.
//!
//! # Warm starts
//!
//! [`ExhaustiveOptimal::set_warm_start`] seeds the next solve with a
//! previous assignment — typically the placement a session held before a
//! fault. The seed is replayed through the search's own feasibility
//! checks; when valid it becomes the initial incumbent (local best *and*
//! shared atomic), so the bound is tight from the first node instead of
//! infinite. Because a valid seed is itself a feasible leaf of the search
//! tree, admitting it early cannot change the unique `(cost, key)`
//! minimum the search returns: warm and cold solves are bit-identical,
//! warm ones just prune harder. An invalid seed (wrong length, pin
//! mismatch, no longer feasible) is silently discarded — the solve
//! degrades to a cold start.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::algorithm::{seed_with_pins, ServiceDistributor};
use crate::bounds::NodeCostTable;
use crate::error::DistributionError;
use crate::problem::OsdProblem;
use ubiqos_graph::{ComponentId, Cut};
use ubiqos_model::{ResourceVector, EPSILON};

/// Depth of the parallel fan-out: feasible assignments of the first two
/// components in visiting order become independent subtree roots.
const FANOUT_DEPTH: usize = 2;

/// Counters describing one `distribute` run of [`ExhaustiveOptimal`].
///
/// In parallel mode the totals are summed over workers; they are
/// informational and may vary between runs (pruning depends on when the
/// shared incumbent tightens) even though the returned cut never does.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Interior nodes whose children were generated.
    pub nodes_expanded: u64,
    /// Subtrees cut because `partial + suffix` exceeded the incumbent.
    pub pruned_bound: u64,
    /// (component, device) candidates rejected for resource-capacity,
    /// unusable-device, or bandwidth reasons.
    pub pruned_infeasible: u64,
    /// Independent subtree roots searched (1 for a serial run).
    pub subtrees: u64,
    /// Whether a warm-start seed was validated and used as the initial
    /// incumbent for this solve.
    pub warm_start_used: bool,
    /// Whether a node budget stopped the search before it proved
    /// optimality (see [`ExhaustiveOptimal::with_node_budget`]). When
    /// set, the returned cut is only the best leaf found in budget.
    pub budget_exhausted: bool,
}

impl SolveStats {
    fn absorb(&mut self, other: &SolveStats) {
        self.nodes_expanded += other.nodes_expanded;
        self.pruned_bound += other.pruned_bound;
        self.pruned_infeasible += other.pruned_infeasible;
        self.budget_exhausted |= other.budget_exhausted;
    }
}

/// Exhaustive branch-and-bound OSD solver.
///
/// Worst-case cost is `k^n`; the solver refuses instances with more than
/// [`ExhaustiveOptimal::node_limit`] free (un-pinned) components rather
/// than hanging — raise the limit explicitly when you know the instance
/// prunes well.
#[derive(Debug, Clone)]
pub struct ExhaustiveOptimal {
    node_limit: usize,
    parallel: bool,
    parallel_threshold: usize,
    suffix_bound: bool,
    node_budget: Option<u64>,
    warm_start: Option<Vec<usize>>,
    last_stats: Option<SolveStats>,
}

/// Free-component count below which the parallel fan-out costs more than
/// it saves (measured on the `repro -- osd` ladder: 12–16 node instances
/// ran slower fanned out than serial).
const DEFAULT_PARALLEL_THRESHOLD: usize = 18;

impl Default for ExhaustiveOptimal {
    fn default() -> Self {
        ExhaustiveOptimal {
            node_limit: 32,
            parallel: cfg!(feature = "parallel"),
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            suffix_bound: true,
            node_budget: None,
            warm_start: None,
            last_stats: None,
        }
    }
}

impl ExhaustiveOptimal {
    /// Creates the solver with the default 32-free-component limit
    /// (plenty for the paper's 10-20 node Table 1 instances; the suffix
    /// lower bound keeps such instances well below the worst case).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the free-component limit.
    #[must_use]
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    /// The current free-component limit.
    pub fn node_limit(&self) -> usize {
        self.node_limit
    }

    /// Enables or disables the parallel subtree fan-out. The returned cut
    /// is identical either way; serial mode exists for benchmarking and
    /// for the equivalence tests.
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel && cfg!(feature = "parallel");
        self
    }

    /// Whether the parallel fan-out is active.
    pub fn parallel(&self) -> bool {
        self.parallel
    }

    /// Overrides the free-component count below which the solver runs
    /// serially even in parallel mode (fan-out overhead dominates on
    /// small instances). `0` forces the fan-out whenever possible.
    #[must_use]
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold;
        self
    }

    /// The current serial-fallback threshold.
    pub fn parallel_threshold(&self) -> usize {
        self.parallel_threshold
    }

    /// Seeds the next `distribute` call with a previous full assignment
    /// (one device index per component, pinned included). See the module
    /// docs: a valid seed tightens the incumbent without changing the
    /// result; an invalid one is discarded. The seed is consumed by the
    /// next solve.
    #[must_use]
    pub fn with_warm_start(mut self, assignment: Vec<usize>) -> Self {
        self.warm_start = Some(assignment);
        self
    }

    /// Sets or clears the warm-start seed in place (for callers holding
    /// a long-lived solver across a recovery pass).
    pub fn set_warm_start(&mut self, assignment: Option<Vec<usize>>) {
        self.warm_start = assignment;
    }

    /// Caps the number of interior nodes the search may expand, turning
    /// the solver into an *anytime* search: once the budget is spent,
    /// workers stop expanding and the best feasible leaf found so far
    /// (or the warm-start seed) is returned, with
    /// [`SolveStats::budget_exhausted`] set. Used by the large-graph
    /// benchmark to bound raised-limit exhaustive comparison runs that
    /// would otherwise never terminate. In parallel mode the budget
    /// applies per worker, so use serial mode when the cap must be
    /// exact. `None` (the default) restores the complete search.
    #[must_use]
    pub fn with_node_budget(mut self, budget: Option<u64>) -> Self {
        self.node_budget = budget;
        self
    }

    /// The current node-expansion budget, if any.
    pub fn node_budget(&self) -> Option<u64> {
        self.node_budget
    }

    /// Enables or disables the precomputed suffix lower bound (on by
    /// default). Disabling reverts pruning to bare partial-cost
    /// comparison — the pre-table behaviour — and exists for ablation
    /// benchmarks quantifying what the bound buys.
    #[must_use]
    pub fn with_suffix_bound(mut self, enabled: bool) -> Self {
        self.suffix_bound = enabled;
        self
    }

    /// Search counters from the most recent `distribute` call, if any.
    pub fn last_stats(&self) -> Option<SolveStats> {
        self.last_stats
    }
}

/// Reusable per-depth buffers replacing the per-node `Vec` allocations of
/// the earlier solver.
#[derive(Debug, Default, Clone)]
struct ScratchFrame {
    /// New ordered crossings `(from_device, to_device, throughput)`
    /// introduced by the placement under evaluation.
    new_crossings: Vec<(usize, usize, f64)>,
    /// The same crossings folded onto unordered pairs for the
    /// shared-medium bandwidth check.
    extra: Vec<(usize, usize, f64)>,
}

/// Mutable search state shared by the serial search, the root fan-out,
/// and each parallel worker.
#[derive(Debug, Clone)]
struct SearchState {
    /// Current per-component device assignment (pins pre-filled).
    assignment: Vec<Option<usize>>,
    residual: Vec<ResourceVector>,
    /// Crossing throughput accumulated per ordered device pair.
    crossing: Vec<Vec<f64>>,
    /// Devices chosen so far along the current path, in visiting order —
    /// the lexicographic tie-breaking key.
    key: Vec<usize>,
}

/// Evaluates placing `order[depth]` on device `d` against `state`.
///
/// Returns the exact cost delta when the placement is feasible, filling
/// `frame.new_crossings` with the edges it sends across device pairs;
/// returns `None` (leaving `frame` in an unspecified state) when any
/// resource, usability, or bandwidth constraint fails. The delta
/// accumulation order — end-system terms first, then network terms in
/// predecessor-before-successor edge order — matches the pre-table solver
/// exactly, keeping path costs bit-identical.
fn placement_delta(
    problem: &OsdProblem<'_>,
    table: &NodeCostTable,
    order: &[ComponentId],
    depth: usize,
    d: usize,
    state: &SearchState,
    frame: &mut ScratchFrame,
) -> Option<f64> {
    let graph = problem.graph();
    let env = problem.env();
    let c = order[depth];
    let need = graph.component(c).expect("dense ids").resources();

    if !need.fits_within(&state.residual[d]) {
        return None;
    }
    let mut delta = table.end_system(depth, d);
    if !delta.is_finite() {
        return None;
    }

    // Network cost increments for edges whose other endpoint is already
    // placed; track crossings and enforce bandwidth.
    frame.new_crossings.clear();
    frame.extra.clear();
    for &p in graph.predecessors(c) {
        if let Some(pd) = state.assignment[p.index()] {
            if pd != d {
                let tp = graph.edge_throughput(p, c).expect("edge exists");
                frame.new_crossings.push((pd, d, tp));
            }
        }
    }
    for &s in graph.successors(c) {
        if let Some(sd) = state.assignment[s.index()] {
            if sd != d {
                let tp = graph.edge_throughput(c, s).expect("edge exists");
                frame.new_crossings.push((d, sd, tp));
            }
        }
    }
    for &(i, j, tp) in &frame.new_crossings {
        let b = env.bandwidth().get(i, j);
        if b <= EPSILON && tp > EPSILON {
            return None;
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        match frame.extra.iter_mut().find(|e| e.0 == lo && e.1 == hi) {
            Some(e) => e.2 += tp,
            None => frame.extra.push((lo, hi, tp)),
        }
        delta += problem.weights().network() * tp / b;
    }
    // Shared-medium feasibility (matches `OsdProblem::fits`): both
    // directions of a pair draw from the same bandwidth pool.
    for &(i, j, added) in &frame.extra {
        if state.crossing[i][j] + state.crossing[j][i] + added > env.bandwidth().get(i, j) + EPSILON
        {
            return None;
        }
    }
    Some(delta)
}

impl SearchState {
    /// Commits a placement previously validated by [`placement_delta`].
    fn apply(&mut self, c: ComponentId, d: usize, need: &ResourceVector, frame: &ScratchFrame) {
        self.assignment[c.index()] = Some(d);
        self.residual[d] = self.residual[d]
            .saturating_sub(need)
            .expect("dimensions validated");
        for &(i, j, tp) in &frame.new_crossings {
            self.crossing[i][j] += tp;
        }
        self.key.push(d);
    }

    /// Reverts the matching [`SearchState::apply`].
    fn undo(&mut self, c: ComponentId, d: usize, need: &ResourceVector, frame: &ScratchFrame) {
        self.key.pop();
        for &(i, j, tp) in &frame.new_crossings {
            self.crossing[i][j] -= tp;
        }
        self.residual[d] = self.residual[d]
            .checked_add(need)
            .expect("dimensions validated");
        self.assignment[c.index()] = None;
    }
}

/// One depth-first worker: searches the subtree below its starting state,
/// pruning against its local best and (when present) the shared atomic
/// incumbent.
struct Search<'p, 'a, 's> {
    problem: &'p OsdProblem<'a>,
    /// Components still to place, in visiting order.
    order: &'s [ComponentId],
    table: &'s NodeCostTable,
    state: SearchState,
    scratch: Vec<ScratchFrame>,
    /// Whether [`NodeCostTable::suffix`] tightens the pruning bound.
    suffix_bound: bool,
    /// Interior-node cap for anytime mode (`None` = complete search).
    node_budget: Option<u64>,
    /// Shared incumbent cost as `f64` bits (parallel mode only).
    incumbent: Option<&'s AtomicU64>,
    best_cost: f64,
    /// Visiting-order device key of the best leaf, for tie-breaking.
    best_key: Vec<usize>,
    best: Option<Vec<usize>>,
    stats: SolveStats,
}

/// Lowers the shared incumbent to `cost` if it improves on it.
fn relax_incumbent(incumbent: &AtomicU64, cost: f64) {
    let mut current = incumbent.load(Ordering::Relaxed);
    while cost < f64::from_bits(current) {
        match incumbent.compare_exchange_weak(
            current,
            cost.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

impl Search<'_, '_, '_> {
    /// The tightest upper bound visible to this worker: its local best or
    /// the fleet-wide incumbent, whichever is lower.
    fn bound(&self) -> f64 {
        match self.incumbent {
            Some(shared) => f64::from_bits(shared.load(Ordering::Relaxed)).min(self.best_cost),
            None => self.best_cost,
        }
    }

    fn run(&mut self, depth: usize, partial_cost: f64) {
        // Strict inequality: an equal-cost leaf may still win the
        // lexicographic tie-break, so plateaus are never cut.
        let suffix = if self.suffix_bound {
            self.table.suffix(depth)
        } else {
            0.0
        };
        if partial_cost + suffix > self.bound() {
            self.stats.pruned_bound += 1;
            return;
        }
        if depth == self.order.len() {
            let improves = partial_cost < self.best_cost
                || (partial_cost == self.best_cost
                    && self.best.is_some()
                    && self.state.key < self.best_key)
                || self.best.is_none();
            if improves {
                self.best_cost = partial_cost;
                self.best_key.clear();
                self.best_key.extend_from_slice(&self.state.key);
                self.best = Some(
                    self.state
                        .assignment
                        .iter()
                        .map(|a| a.expect("complete at leaf"))
                        .collect(),
                );
                if let Some(shared) = self.incumbent {
                    relax_incumbent(shared, partial_cost);
                }
            }
            return;
        }
        if let Some(budget) = self.node_budget {
            if self.stats.nodes_expanded >= budget {
                self.stats.budget_exhausted = true;
                return;
            }
        }
        self.stats.nodes_expanded += 1;

        let c = self.order[depth];
        let need = self
            .problem
            .graph()
            .component(c)
            .expect("dense ids")
            .resources()
            .clone();
        let mut frame = std::mem::take(&mut self.scratch[depth]);
        for d in 0..self.problem.env().device_count() {
            match placement_delta(
                self.problem,
                self.table,
                self.order,
                depth,
                d,
                &self.state,
                &mut frame,
            ) {
                None => self.stats.pruned_infeasible += 1,
                Some(delta) => {
                    self.state.apply(c, d, &need, &frame);
                    self.run(depth + 1, partial_cost + delta);
                    self.state.undo(c, d, &need, &frame);
                }
            }
        }
        self.scratch[depth] = frame;
    }
}

/// A feasible assignment of the first [`FANOUT_DEPTH`] components,
/// carrying the full search state at that frontier.
struct SubtreeRoot {
    state: SearchState,
    cost: f64,
}

/// Enumerates every feasible depth-`fanout` prefix in lexicographic
/// device order, returning the subtree roots the workers will search.
fn expand_roots(
    problem: &OsdProblem<'_>,
    table: &NodeCostTable,
    order: &[ComponentId],
    base: SearchState,
    base_cost: f64,
    fanout: usize,
    stats: &mut SolveStats,
) -> Vec<SubtreeRoot> {
    let mut roots = Vec::new();
    let mut frontier = vec![SubtreeRoot {
        state: base,
        cost: base_cost,
    }];
    let mut frame = ScratchFrame::default();
    for depth in 0..fanout {
        let c = order[depth];
        let need = problem
            .graph()
            .component(c)
            .expect("dense ids")
            .resources()
            .clone();
        let mut next = Vec::new();
        for root in &frontier {
            stats.nodes_expanded += 1;
            for d in 0..problem.env().device_count() {
                match placement_delta(problem, table, order, depth, d, &root.state, &mut frame) {
                    None => stats.pruned_infeasible += 1,
                    Some(delta) => {
                        let mut state = root.state.clone();
                        state.apply(c, d, &need, &frame);
                        next.push(SubtreeRoot {
                            state,
                            cost: root.cost + delta,
                        });
                    }
                }
            }
        }
        frontier = next;
    }
    roots.append(&mut frontier);
    roots
}

/// Replays a warm-start assignment through [`placement_delta`], in
/// visiting order, on a clone of the pinned base state. Returns the
/// `(cost, visiting-order key, full assignment)` of the resulting leaf
/// when the seed is valid — right length, consistent with every pin,
/// in-range devices, and feasible under the current (post-fault)
/// environment — and `None` otherwise.
fn validate_seed(
    problem: &OsdProblem<'_>,
    table: &NodeCostTable,
    order: &[ComponentId],
    base_state: &SearchState,
    base_cost: f64,
    warm: &[usize],
) -> Option<(f64, Vec<usize>, Vec<usize>)> {
    let graph = problem.graph();
    let k = problem.env().device_count();
    if warm.len() != graph.component_count() || warm.iter().any(|&d| d >= k) {
        return None;
    }
    let pins_match = base_state
        .assignment
        .iter()
        .enumerate()
        .all(|(i, a)| a.is_none_or(|d| warm[i] == d));
    if !pins_match {
        return None;
    }
    let mut state = base_state.clone();
    let mut frame = ScratchFrame::default();
    let mut cost = base_cost;
    for (depth, &c) in order.iter().enumerate() {
        let d = warm[c.index()];
        let delta = placement_delta(problem, table, order, depth, d, &state, &mut frame)?;
        let need = graph.component(c).expect("dense ids").resources().clone();
        state.apply(c, d, &need, &frame);
        cost += delta;
    }
    let assignment = state
        .assignment
        .iter()
        .map(|a| a.expect("complete after replay"))
        .collect();
    Some((cost, state.key, assignment))
}

impl ServiceDistributor for ExhaustiveOptimal {
    fn name(&self) -> &str {
        "optimal"
    }

    fn distribute(&mut self, problem: &OsdProblem<'_>) -> Result<Cut, DistributionError> {
        self.last_stats = None;
        let graph = problem.graph();
        let env = problem.env();
        let k = env.device_count();
        let weights = problem.weights().resource();
        let (assignment, residual) = seed_with_pins(problem)?;

        // Pinned components already contribute end-system cost and may
        // contribute pairwise crossings among themselves; rather than
        // special-casing, compute the pinned-only partial cost up front.
        let mut crossing = vec![vec![0.0; k]; k];
        let mut base_cost = 0.0;
        for (id, c) in graph.components() {
            if let Some(d) = assignment[id.index()] {
                let avail = env.devices()[d].availability();
                for (i, &w) in problem.weights().resource().iter().enumerate() {
                    let r = c.resources().get(i).unwrap_or(0.0);
                    if r <= EPSILON {
                        continue;
                    }
                    let ra = avail.get(i).unwrap_or(0.0);
                    if ra <= EPSILON {
                        return Err(DistributionError::Infeasible {
                            reason: format!(
                                "pinned component {} needs a resource device {} lacks",
                                c.name(),
                                env.devices()[d].name()
                            ),
                        });
                    }
                    base_cost += w * r / ra;
                }
            }
        }
        for e in graph.edges() {
            if let (Some(i), Some(j)) = (assignment[e.from.index()], assignment[e.to.index()]) {
                if i != j {
                    let b = env.bandwidth().get(i, j);
                    crossing[i][j] += e.throughput;
                    if crossing[i][j] + crossing[j][i] > b + EPSILON {
                        return Err(DistributionError::Infeasible {
                            reason: "pinned components exceed link bandwidth".into(),
                        });
                    }
                    base_cost += problem.weights().network() * e.throughput / b;
                }
            }
        }

        let mut order: Vec<ComponentId> = graph
            .component_ids()
            .filter(|id| assignment[id.index()].is_none())
            .collect();
        if order.len() > self.node_limit {
            return Err(DistributionError::TooLarge {
                free: order.len(),
                limit: self.node_limit,
            });
        }
        order.sort_by(|&a, &b| {
            let wa = graph
                .component(a)
                .expect("dense")
                .resources()
                .weighted_sum(weights);
            let wb = graph
                .component(b)
                .expect("dense")
                .resources()
                .weighted_sum(weights);
            wb.partial_cmp(&wa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });

        let table = NodeCostTable::build(problem, &order);
        let base_state = SearchState {
            assignment,
            residual,
            crossing,
            key: Vec::new(),
        };

        // Replay a warm-start seed through the search's own feasibility
        // machinery. A surviving seed is a genuine feasible leaf of this
        // tree, so using it as the initial incumbent only prunes — the
        // unique (cost, key) minimum the search selects is unchanged.
        let seed = self
            .warm_start
            .take()
            .and_then(|warm| validate_seed(problem, &table, &order, &base_state, base_cost, &warm));

        let suffix_bound = self.suffix_bound;
        let node_budget = self.node_budget;
        let seed_ref = seed.as_ref();
        let run_worker =
            |state: SearchState, cost: f64, depth: usize, shared: Option<&AtomicU64>| {
                let mut search = Search {
                    problem,
                    order: &order,
                    table: &table,
                    // Indexed by absolute depth; the frames below `depth` stay
                    // unused in a fanned-out worker but cost nothing.
                    scratch: vec![ScratchFrame::default(); order.len()],
                    state,
                    suffix_bound,
                    node_budget,
                    incumbent: shared,
                    best_cost: seed_ref.map_or(f64::INFINITY, |s| s.0),
                    best_key: seed_ref.map_or_else(Vec::new, |s| s.1.clone()),
                    best: seed_ref.map(|s| s.2.clone()),
                    stats: SolveStats::default(),
                };
                search.run(depth, cost);
                (search.best_cost, search.best_key, search.best, search.stats)
            };

        let mut stats = SolveStats {
            warm_start_used: seed.is_some(),
            ..SolveStats::default()
        };
        let best: Option<Vec<usize>>;
        if self.parallel && order.len() > FANOUT_DEPTH && order.len() >= self.parallel_threshold {
            let roots = expand_roots(
                problem,
                &table,
                &order,
                base_state,
                base_cost,
                FANOUT_DEPTH,
                &mut stats,
            );
            stats.subtrees = roots.len() as u64;
            let incumbent = AtomicU64::new(seed_ref.map_or(f64::INFINITY, |s| s.0).to_bits());
            let worker_results = ubiqos_parallel::par_map(&roots, |_, root| {
                run_worker(
                    root.state.clone(),
                    root.cost,
                    FANOUT_DEPTH,
                    Some(&incumbent),
                )
            });
            // Deterministic reduction: roots were generated in
            // lexicographic prefix order and par_map preserves input
            // order, so scanning for the strict (cost, key) minimum is
            // independent of worker scheduling.
            let mut winner: (f64, Vec<usize>, Option<Vec<usize>>) =
                (f64::INFINITY, Vec::new(), None);
            for (cost, key, found, worker_stats) in worker_results {
                stats.absorb(&worker_stats);
                if found.is_some()
                    && (winner.2.is_none()
                        || cost < winner.0
                        || (cost == winner.0 && key < winner.1))
                {
                    winner = (cost, key, found);
                }
            }
            best = winner.2;
        } else {
            let (_, _, found, worker_stats) = run_worker(base_state, base_cost, 0, None);
            stats.absorb(&worker_stats);
            stats.subtrees = 1;
            best = found;
        }
        self.last_stats = Some(stats);

        match best {
            Some(assignment) => {
                let cut = Cut::from_assignment(graph, assignment, k)
                    .expect("search produces complete in-range assignments");
                debug_assert!(problem.fits(&cut));
                Ok(cut)
            }
            None if stats.budget_exhausted => Err(DistributionError::Infeasible {
                reason: "node budget exhausted before any feasible leaf was found \
                         (raise the budget or provide a warm start)"
                    .into(),
            }),
            None => Err(DistributionError::Infeasible {
                reason: "exhaustive search found no fitting cut".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::environment::Environment;
    use crate::heuristic::GreedyHeuristic;
    use ubiqos_graph::{DeviceId, ServiceComponent, ServiceGraph};
    use ubiqos_model::{ResourceVector, Weights};

    fn comp(name: &str, mem: f64, cpu: f64) -> ServiceComponent {
        ServiceComponent::builder(name)
            .resources(ResourceVector::mem_cpu(mem, cpu))
            .build()
    }

    fn env2(bw: f64) -> Environment {
        Environment::builder()
            .device(Device::new("pc", ResourceVector::mem_cpu(256.0, 300.0)))
            .device(Device::new("pda", ResourceVector::mem_cpu(32.0, 100.0)))
            .default_bandwidth_mbps(bw)
            .build()
    }

    /// Brute force over all assignments, for cross-checking.
    fn brute_force(p: &OsdProblem<'_>) -> Option<(Vec<usize>, f64)> {
        let n = p.graph().component_count();
        let k = p.env().device_count();
        let mut best: Option<(Vec<usize>, f64)> = None;
        let total = k.pow(n as u32);
        for code in 0..total {
            let mut c = code;
            let mut assignment = Vec::with_capacity(n);
            for _ in 0..n {
                assignment.push(c % k);
                c /= k;
            }
            let cut = Cut::from_assignment(p.graph(), assignment.clone(), k).unwrap();
            if !p.fits(&cut) {
                continue;
            }
            let cost = p.cost(&cut);
            if best.as_ref().is_none_or(|(_, b)| cost < *b) {
                best = Some((assignment, cost));
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(comp("a", 40.0, 60.0));
        let b = g.add_component(comp("b", 20.0, 30.0));
        let c = g.add_component(comp("c", 10.0, 20.0));
        let d = g.add_component(comp("d", 8.0, 10.0));
        g.add_edge(a, b, 3.0).unwrap();
        g.add_edge(a, c, 1.0).unwrap();
        g.add_edge(b, d, 2.0).unwrap();
        g.add_edge(c, d, 4.0).unwrap();
        let env = env2(10.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);

        let cut = ExhaustiveOptimal::new().distribute(&p).unwrap();
        let (_, brute_cost) = brute_force(&p).unwrap();
        assert!(
            (p.cost(&cut) - brute_cost).abs() < 1e-9,
            "b&b cost {} vs brute force {}",
            p.cost(&cut),
            brute_cost
        );
    }

    #[test]
    fn optimal_never_worse_than_heuristic() {
        let mut g = ServiceGraph::new();
        let ids: Vec<_> = (0..8)
            .map(|i| g.add_component(comp(&format!("c{i}"), 5.0 + 3.0 * i as f64, 10.0)))
            .collect();
        for i in 1..ids.len() {
            g.add_edge(ids[i - 1], ids[i], 1.0 + i as f64 * 0.3)
                .unwrap();
        }
        g.add_edge(ids[0], ids[4], 2.0).unwrap();
        let env = env2(20.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let opt = ExhaustiveOptimal::new().distribute(&p).unwrap();
        let heu = GreedyHeuristic::paper().distribute(&p).unwrap();
        assert!(p.cost(&opt) <= p.cost(&heu) + 1e-9);
        assert!(p.fits(&opt));
    }

    #[test]
    fn respects_pins() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(comp("server", 60.0, 80.0));
        let b = g.add_component(
            ServiceComponent::builder("display")
                .resources(ResourceVector::mem_cpu(4.0, 5.0))
                .pinned_to(DeviceId::from_index(1))
                .build(),
        );
        g.add_edge(a, b, 1.0).unwrap();
        let env = env2(10.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cut = ExhaustiveOptimal::new().distribute(&p).unwrap();
        assert_eq!(cut.part_of(b), Some(1));
    }

    #[test]
    fn proves_infeasibility() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(comp("a", 200.0, 200.0));
        let b = g.add_component(comp("b", 200.0, 200.0));
        g.add_edge(a, b, 1.0).unwrap();
        let env = env2(10.0); // only the PC could host either; not both
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        assert!(matches!(
            ExhaustiveOptimal::new().distribute(&p),
            Err(DistributionError::Infeasible { .. })
        ));
    }

    #[test]
    fn bandwidth_constraints_steer_the_optimum() {
        // Two components that both fit anywhere, heavy edge: with a thin
        // link the optimum must co-locate them.
        let mut g = ServiceGraph::new();
        let a = g.add_component(comp("a", 10.0, 10.0));
        let b = g.add_component(comp("b", 10.0, 10.0));
        g.add_edge(a, b, 50.0).unwrap();
        let env = env2(5.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cut = ExhaustiveOptimal::new().distribute(&p).unwrap();
        assert_eq!(cut.part_of(a), cut.part_of(b));
    }

    #[test]
    fn node_limit_guards_exponential_instances() {
        let mut g = ServiceGraph::new();
        for i in 0..40 {
            g.add_component(comp(&format!("c{i}"), 1.0, 1.0));
        }
        let env = env2(10.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let err = ExhaustiveOptimal::new().distribute(&p).unwrap_err();
        assert_eq!(
            err,
            DistributionError::TooLarge {
                free: 40,
                limit: 32
            }
        );
        assert!(err.to_string().contains("limit of 32"));
        // Raising the limit allows the run (this instance prunes fine).
        assert!(ExhaustiveOptimal::new()
            .with_node_limit(48)
            .distribute(&p)
            .is_ok());
        assert_eq!(ExhaustiveOptimal::new().node_limit(), 32);
    }

    #[test]
    fn node_budget_turns_the_search_anytime() {
        // Same shape as `warm_start_prunes_the_search_tree`: ten equal
        // components whose cheap cut hides behind heavy edges, so the
        // cold search does real work before proving the optimum.
        let mut g = ServiceGraph::new();
        let ids: Vec<_> = (0..10)
            .map(|i| g.add_component(comp(&format!("c{i}"), 10.0, 10.0)))
            .collect();
        for i in 1..ids.len() {
            let tp = if i == 5 { 0.1 } else { 3.0 + i as f64 * 0.13 };
            g.add_edge(ids[i - 1], ids[i], tp).unwrap();
        }
        let env = Environment::builder()
            .device(Device::new("d0", ResourceVector::mem_cpu(60.0, 120.0)))
            .device(Device::new("d1", ResourceVector::mem_cpu(60.0, 120.0)))
            .default_bandwidth_mbps(40.0)
            .build();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);

        let mut full = ExhaustiveOptimal::new().with_parallel(false);
        let exact = full.distribute(&p).unwrap();
        assert!(!full.last_stats().unwrap().budget_exhausted);
        let full_nodes = full.last_stats().unwrap().nodes_expanded;

        // A tiny budget (just past the first depth-10 dive) stops early,
        // flags it, and still returns a feasible — if not proven-optimal
        // — cut from the leaves it did reach.
        assert!(full_nodes > 12, "fixture must out-size the budget");
        let mut capped = ExhaustiveOptimal::new()
            .with_parallel(false)
            .with_node_budget(Some(12));
        let anytime = capped.distribute(&p).unwrap();
        let stats = capped.last_stats().unwrap();
        assert!(stats.budget_exhausted);
        assert!(stats.nodes_expanded <= 12);
        assert!(p.fits(&anytime));
        assert!(p.cost(&anytime) >= p.cost(&exact) - 1e-12);

        // A budget too small to ever reach a leaf fails loudly instead
        // of claiming infeasibility of the instance.
        let err = ExhaustiveOptimal::new()
            .with_parallel(false)
            .with_node_budget(Some(3))
            .distribute(&p)
            .unwrap_err();
        assert!(err.to_string().contains("budget"));

        // A budget at least the full node count changes nothing.
        let mut roomy = ExhaustiveOptimal::new()
            .with_parallel(false)
            .with_node_budget(Some(full_nodes));
        let same = roomy.distribute(&p).unwrap();
        assert_eq!(same, exact);
        assert!(!roomy.last_stats().unwrap().budget_exhausted);
        assert_eq!(roomy.node_budget(), Some(full_nodes));
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = ServiceGraph::new();
        let env = env2(10.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cut = ExhaustiveOptimal::new().distribute(&p).unwrap();
        assert_eq!(cut.len(), 0);
    }

    #[test]
    fn serial_and_parallel_agree_bit_for_bit() {
        let mut g = ServiceGraph::new();
        let ids: Vec<_> = (0..9)
            .map(|i| g.add_component(comp(&format!("c{i}"), 4.0 + 2.0 * i as f64, 8.0)))
            .collect();
        for i in 1..ids.len() {
            g.add_edge(ids[i - 1], ids[i], 0.4 + i as f64 * 0.2)
                .unwrap();
        }
        g.add_edge(ids[0], ids[5], 1.1).unwrap();
        let env = env2(15.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let serial = ExhaustiveOptimal::new()
            .with_parallel(false)
            .distribute(&p)
            .unwrap();
        let parallel = ExhaustiveOptimal::new()
            .with_parallel(true)
            .with_parallel_threshold(0)
            .distribute(&p)
            .unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(p.cost(&serial).to_bits(), p.cost(&parallel).to_bits());
    }

    #[test]
    fn stats_are_recorded_and_bounds_prune() {
        let mut g = ServiceGraph::new();
        let ids: Vec<_> = (0..10)
            .map(|i| g.add_component(comp(&format!("c{i}"), 6.0 + i as f64, 9.0)))
            .collect();
        for i in 1..ids.len() {
            g.add_edge(ids[i - 1], ids[i], 0.3).unwrap();
        }
        let env = env2(12.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);

        let mut solver = ExhaustiveOptimal::new().with_parallel(false);
        assert!(solver.last_stats().is_none());
        solver.distribute(&p).unwrap();
        let stats = solver.last_stats().unwrap();
        assert_eq!(stats.subtrees, 1);
        assert!(stats.nodes_expanded > 0);
        // The suffix bound must actually bite on a 10-node instance: the
        // explored tree stays far below the 2^10 full enumeration.
        assert!(stats.pruned_bound > 0);
        assert!(stats.nodes_expanded < 1 << 10);

        let mut par = ExhaustiveOptimal::new()
            .with_parallel(true)
            .with_parallel_threshold(0);
        par.distribute(&p).unwrap();
        let subtrees = par.last_stats().unwrap().subtrees;
        if cfg!(feature = "parallel") {
            assert!(subtrees > 1);
        } else {
            // `with_parallel(true)` degrades to the serial path when the
            // feature is compiled out.
            assert_eq!(subtrees, 1);
        }
    }

    #[test]
    fn small_instances_fall_back_to_serial_by_default() {
        // 10 free components < DEFAULT_PARALLEL_THRESHOLD: even with the
        // fan-out requested, the solver runs one serial subtree.
        let mut g = ServiceGraph::new();
        let ids: Vec<_> = (0..10)
            .map(|i| g.add_component(comp(&format!("c{i}"), 6.0 + i as f64, 9.0)))
            .collect();
        for i in 1..ids.len() {
            g.add_edge(ids[i - 1], ids[i], 0.3).unwrap();
        }
        let env = env2(12.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let mut solver = ExhaustiveOptimal::new().with_parallel(true);
        assert_eq!(solver.parallel_threshold(), 18);
        solver.distribute(&p).unwrap();
        assert_eq!(solver.last_stats().unwrap().subtrees, 1);
    }

    /// A chain instance awkward enough that the cold search does real
    /// work, with one pinned component so seeds interact with pins.
    fn warm_start_fixture() -> (ServiceGraph, Environment) {
        let mut g = ServiceGraph::new();
        let ids: Vec<_> = (0..9)
            .map(|i| g.add_component(comp(&format!("c{i}"), 4.0 + 2.0 * i as f64, 8.0)))
            .collect();
        for i in 1..ids.len() {
            g.add_edge(ids[i - 1], ids[i], 0.4 + i as f64 * 0.2)
                .unwrap();
        }
        g.add_edge(ids[0], ids[5], 1.1).unwrap();
        let env = env2(15.0);
        (g, env)
    }

    #[test]
    fn warm_start_matches_cold_start_bit_for_bit() {
        let (g, env) = warm_start_fixture();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cold = ExhaustiveOptimal::new()
            .with_parallel(false)
            .distribute(&p)
            .unwrap();
        let optimal: Vec<usize> = (0..g.component_count())
            .map(|i| cold.part_of(ComponentId::from_index(i)).unwrap())
            .collect();
        // Seed with the optimum itself and with a feasible non-optimum;
        // both must reproduce the cold cut exactly, in both modes.
        let all_on_pc = vec![0; g.component_count()];
        for seed in [optimal, all_on_pc] {
            for parallel in [false, true] {
                let mut solver = ExhaustiveOptimal::new()
                    .with_parallel(parallel)
                    .with_parallel_threshold(0)
                    .with_warm_start(seed.clone());
                let warm = solver.distribute(&p).unwrap();
                assert_eq!(warm, cold, "seed {seed:?}, parallel={parallel}");
                assert_eq!(p.cost(&warm).to_bits(), p.cost(&cold).to_bits());
                assert!(solver.last_stats().unwrap().warm_start_used);
                // The seed is consumed: a second solve is cold.
                solver.distribute(&p).unwrap();
                assert!(!solver.last_stats().unwrap().warm_start_used);
            }
        }
    }

    #[test]
    fn warm_start_prunes_the_search_tree() {
        // Ten equal components over two devices that each hold six: the
        // cold first dive fills device 0 and splits at the heavy
        // (c5, c6) edge, far from the cheap (c4, c5) cut, so it searches
        // a while before proving the optimum. Seeding that optimum
        // prunes from the first node.
        let mut g = ServiceGraph::new();
        let ids: Vec<_> = (0..10)
            .map(|i| g.add_component(comp(&format!("c{i}"), 10.0, 10.0)))
            .collect();
        for i in 1..ids.len() {
            let tp = if i == 5 { 0.1 } else { 3.0 + i as f64 * 0.13 };
            g.add_edge(ids[i - 1], ids[i], tp).unwrap();
        }
        let env = Environment::builder()
            .device(Device::new("d0", ResourceVector::mem_cpu(60.0, 120.0)))
            .device(Device::new("d1", ResourceVector::mem_cpu(60.0, 120.0)))
            .default_bandwidth_mbps(40.0)
            .build();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let mut cold = ExhaustiveOptimal::new().with_parallel(false);
        let cut = cold.distribute(&p).unwrap();
        let cold_nodes = cold.last_stats().unwrap().nodes_expanded;
        let seed: Vec<usize> = (0..g.component_count())
            .map(|i| cut.part_of(ComponentId::from_index(i)).unwrap())
            .collect();
        let mut warm = ExhaustiveOptimal::new()
            .with_parallel(false)
            .with_warm_start(seed);
        let warm_cut = warm.distribute(&p).unwrap();
        assert_eq!(warm_cut, cut);
        let warm_nodes = warm.last_stats().unwrap().nodes_expanded;
        assert!(
            warm_nodes < cold_nodes,
            "warm {warm_nodes} vs cold {cold_nodes}"
        );
    }

    #[test]
    fn invalid_warm_starts_degrade_to_cold() {
        let (g, env) = warm_start_fixture();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cold = ExhaustiveOptimal::new()
            .with_parallel(false)
            .distribute(&p)
            .unwrap();
        let n = g.component_count();
        for bad in [
            vec![0; n - 1], // wrong length
            vec![9; n],     // device out of range
            vec![1; n],     // infeasible: everything on the PDA
        ] {
            let mut solver = ExhaustiveOptimal::new()
                .with_parallel(false)
                .with_warm_start(bad.clone());
            let cut = solver.distribute(&p).unwrap();
            assert_eq!(cut, cold, "seed {bad:?}");
            assert!(!solver.last_stats().unwrap().warm_start_used);
        }
    }

    #[test]
    fn warm_start_respects_pins() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(comp("server", 60.0, 80.0));
        let b = g.add_component(
            ServiceComponent::builder("display")
                .resources(ResourceVector::mem_cpu(4.0, 5.0))
                .pinned_to(DeviceId::from_index(1))
                .build(),
        );
        g.add_edge(a, b, 1.0).unwrap();
        let env = env2(10.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        // Seed contradicting the pin is rejected, not silently obeyed.
        let mut solver = ExhaustiveOptimal::new().with_warm_start(vec![0, 0]);
        let cut = solver.distribute(&p).unwrap();
        assert_eq!(cut.part_of(b), Some(1));
        assert!(!solver.last_stats().unwrap().warm_start_used);
    }

    #[test]
    fn equal_cost_plateau_resolves_to_lexicographic_minimum() {
        // Two identical, disconnected components on two identical devices:
        // every assignment has the same cost, so the tie-break must pick
        // the lexicographically smallest visiting-order key — both on
        // device 0 — in both modes.
        let mut g = ServiceGraph::new();
        let a = g.add_component(comp("a", 10.0, 10.0));
        let b = g.add_component(comp("b", 10.0, 10.0));
        let c = g.add_component(comp("c", 10.0, 10.0));
        let env = Environment::builder()
            .device(Device::new("d0", ResourceVector::mem_cpu(100.0, 100.0)))
            .device(Device::new("d1", ResourceVector::mem_cpu(100.0, 100.0)))
            .default_bandwidth_mbps(10.0)
            .build();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        for parallel in [false, true] {
            let cut = ExhaustiveOptimal::new()
                .with_parallel(parallel)
                .distribute(&p)
                .unwrap();
            assert_eq!(cut.part_of(a), Some(0), "parallel={parallel}");
            assert_eq!(cut.part_of(b), Some(0), "parallel={parallel}");
            assert_eq!(cut.part_of(c), Some(0), "parallel={parallel}");
        }
    }
}
