//! A racing portfolio over the crate's placement algorithms.
//!
//! One solve runs, in order:
//!
//! 1. the paper's [`GreedyHeuristic`] — polynomial, always cheap;
//! 2. the exact [`ExhaustiveOptimal`] branch-and-bound, *seeded* with the
//!    greedy placement (or the caller's warm start, whichever is
//!    cheaper), so the incumbent bound is tight from the first node —
//!    this is how the portfolio "races" under the solver's shared
//!    deterministic incumbent;
//! 3. when the exact solver refuses the instance with
//!    [`DistributionError::TooLarge`], the [`HierarchicalSolver`], which
//!    keeps the same seed as its incumbent and reports an optimality-gap
//!    certificate instead of a proof.
//!
//! # Determinism
//!
//! Within the exact limit the portfolio returns *exactly* the cut
//! [`ExhaustiveOptimal`] would return cold: a valid seed only tightens
//! the incumbent and can never change the unique `(cost, key)` minimum
//! the search selects (see the optimal module docs), and the portfolio
//! never swaps in the greedy cut — even on a cost tie — precisely to
//! preserve that bit-identity. Beyond the limit the hierarchical solver
//! is deterministic at every thread count, and its incumbent rule
//! (`(cost bits, lexicographic assignment)`) resolves any tie between
//! the seed and a refined projection the same way on every run.

use crate::algorithm::ServiceDistributor;
use crate::error::DistributionError;
use crate::heuristic::GreedyHeuristic;
use crate::hierarchical::{GapCertificate, HierarchicalSolver};
use crate::optimal::{ExhaustiveOptimal, SolveStats};
use crate::problem::OsdProblem;
use ubiqos_graph::Cut;

/// Which solver produced the returned placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortfolioRoute {
    /// The exact branch-and-bound solved the instance (within limit).
    Exact,
    /// The instance was routed to the hierarchical solver
    /// ([`DistributionError::TooLarge`] from the exact solver).
    Hierarchical,
}

/// What one portfolio solve did, for reporting and benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioOutcome {
    /// Which solver produced the returned cut.
    pub route: PortfolioRoute,
    /// Cost of the greedy placement, when the heuristic found one.
    pub greedy_cost: Option<f64>,
    /// Cost of the returned placement.
    pub final_cost: f64,
    /// Counters of the winning solver (summed over coarse rounds on the
    /// hierarchical route).
    pub stats: SolveStats,
    /// Optimality bracket (hierarchical route only; the exact route is
    /// proven optimal).
    pub certificate: Option<GapCertificate>,
}

/// The solver portfolio: greedy, warm-started exact, hierarchical —
/// exposed to the runtime through `PlacementStrategy`.
#[derive(Debug, Clone)]
pub struct SolverPortfolio {
    exact: ExhaustiveOptimal,
    hierarchical: HierarchicalSolver,
    greedy: GreedyHeuristic,
    warm_start: Option<Vec<usize>>,
    last_outcome: Option<PortfolioOutcome>,
}

impl Default for SolverPortfolio {
    fn default() -> Self {
        SolverPortfolio {
            exact: ExhaustiveOptimal::new(),
            hierarchical: HierarchicalSolver::new(),
            greedy: GreedyHeuristic::paper(),
            warm_start: None,
            last_outcome: None,
        }
    }
}

impl SolverPortfolio {
    /// Creates the portfolio with default members (exact limit 32,
    /// hierarchical refinement to a 2% gap).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables the parallel fan-out of both inner solvers.
    /// The returned placement is identical either way; the exact member
    /// keeps its serial-fallback threshold, so small instances run
    /// serially even when this is on.
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.exact = self.exact.with_parallel(parallel);
        self.hierarchical = self.hierarchical.with_parallel(parallel);
        self
    }

    /// Replaces the exact member (to adjust its node limit or serial
    /// fallback threshold).
    #[must_use]
    pub fn with_exact(mut self, exact: ExhaustiveOptimal) -> Self {
        self.exact = exact;
        self
    }

    /// Replaces the hierarchical member (to adjust clustering targets or
    /// the gap tolerance).
    #[must_use]
    pub fn with_hierarchical(mut self, hierarchical: HierarchicalSolver) -> Self {
        self.hierarchical = hierarchical;
        self
    }

    /// Seeds the next solve with a previous full assignment (a session's
    /// placement before a fault, typically). The portfolio forwards the
    /// cheaper of this seed and the greedy placement to whichever solver
    /// runs. Consumed by the next solve.
    #[must_use]
    pub fn with_warm_start(mut self, assignment: Vec<usize>) -> Self {
        self.warm_start = Some(assignment);
        self
    }

    /// Sets or clears the warm-start seed in place.
    pub fn set_warm_start(&mut self, assignment: Option<Vec<usize>>) {
        self.warm_start = assignment;
    }

    /// What the most recent solve did, if any.
    pub fn last_outcome(&self) -> Option<&PortfolioOutcome> {
        self.last_outcome.as_ref()
    }

    /// Evaluates a candidate seed: cost when it is a complete, in-range,
    /// pin-respecting, fitting assignment; `None` otherwise.
    fn seed_cost(problem: &OsdProblem<'_>, seed: &[usize]) -> Option<f64> {
        let k = problem.env().device_count();
        if seed.len() != problem.graph().component_count() || seed.iter().any(|&d| d >= k) {
            return None;
        }
        let cut = Cut::from_assignment(problem.graph(), seed.to_vec(), k)?;
        problem.fits(&cut).then(|| problem.cost(&cut))
    }
}

impl ServiceDistributor for SolverPortfolio {
    fn name(&self) -> &str {
        "portfolio"
    }

    fn distribute(&mut self, problem: &OsdProblem<'_>) -> Result<Cut, DistributionError> {
        self.last_outcome = None;
        let caller_seed = self.warm_start.take();

        // Stage 1: greedy. A failure here is not fatal — the exact search
        // may still find a cut the heuristic missed.
        let greedy = self.greedy.distribute(problem).ok();
        let greedy_cost = greedy.as_ref().map(|cut| problem.cost(cut));

        // Pick the cheaper valid seed: caller's warm start vs greedy.
        let caller = caller_seed.and_then(|s| Self::seed_cost(problem, &s).map(|c| (c, s)));
        let greedy_seed = greedy
            .as_ref()
            .map(|cut| (problem.cost(cut), cut.assignment()));
        let seed = match (caller, greedy_seed) {
            (Some((cc, cs)), Some((gc, gs))) => {
                if cc < gc || (cc == gc && cs <= gs) {
                    Some(cs)
                } else {
                    Some(gs)
                }
            }
            (Some((_, cs)), None) => Some(cs),
            (None, Some((_, gs))) => Some(gs),
            (None, None) => None,
        };

        // Stage 2: warm-started exact search.
        self.exact.set_warm_start(seed.clone());
        match self.exact.distribute(problem) {
            Ok(cut) => {
                let final_cost = problem.cost(&cut);
                self.last_outcome = Some(PortfolioOutcome {
                    route: PortfolioRoute::Exact,
                    greedy_cost,
                    final_cost,
                    stats: self.exact.last_stats().unwrap_or_default(),
                    certificate: Some(GapCertificate {
                        upper: final_cost,
                        lower: final_cost,
                        gap: 0.0,
                        rounds: 0,
                        clusters: 0,
                        exact: true,
                    }),
                });
                Ok(cut)
            }
            // Stage 3: oversized instances route to the hierarchical
            // solver, carrying the same seed as the incumbent to beat.
            Err(DistributionError::TooLarge { .. }) => {
                self.hierarchical.set_warm_start(seed);
                let cut = self.hierarchical.distribute(problem)?;
                self.last_outcome = Some(PortfolioOutcome {
                    route: PortfolioRoute::Hierarchical,
                    greedy_cost,
                    final_cost: problem.cost(&cut),
                    stats: self.hierarchical.last_stats().unwrap_or_default(),
                    certificate: self.hierarchical.last_certificate(),
                });
                Ok(cut)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::environment::Environment;
    use ubiqos_graph::{ServiceComponent, ServiceGraph};
    use ubiqos_model::{ResourceVector, Weights};

    fn chain(n: usize) -> ServiceGraph {
        let mut g = ServiceGraph::new();
        let ids: Vec<_> = (0..n)
            .map(|i| {
                g.add_component(
                    ServiceComponent::builder(format!("c{i}"))
                        .resources(ResourceVector::mem_cpu(
                            4.0 + (i % 5) as f64,
                            6.0 + (i % 7) as f64,
                        ))
                        .build(),
                )
            })
            .collect();
        for i in 1..n {
            g.add_edge(ids[i - 1], ids[i], 0.2 + (i % 4) as f64 * 0.3)
                .unwrap();
        }
        g
    }

    fn env(scale: f64) -> Environment {
        Environment::builder()
            .device(Device::new(
                "big",
                ResourceVector::mem_cpu(40.0 * scale, 60.0 * scale),
            ))
            .device(Device::new(
                "mid",
                ResourceVector::mem_cpu(20.0 * scale, 30.0 * scale),
            ))
            .device(Device::new(
                "small",
                ResourceVector::mem_cpu(10.0 * scale, 15.0 * scale),
            ))
            .default_bandwidth_mbps(200.0)
            .build()
    }

    #[test]
    fn within_limit_is_bit_identical_to_the_exact_solver() {
        let g = chain(14);
        let e = env(4.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &e, &w);
        let exact = ExhaustiveOptimal::new().distribute(&p).unwrap();
        let mut portfolio = SolverPortfolio::new();
        let cut = portfolio.distribute(&p).unwrap();
        assert_eq!(cut, exact);
        assert_eq!(p.cost(&cut).to_bits(), p.cost(&exact).to_bits());
        let outcome = portfolio.last_outcome().unwrap();
        assert_eq!(outcome.route, PortfolioRoute::Exact);
        assert!(outcome.greedy_cost.is_some());
        assert!(outcome.certificate.unwrap().exact);
        // The greedy seed was validated and used as the incumbent.
        assert!(outcome.stats.warm_start_used);
    }

    #[test]
    fn oversized_instances_route_to_the_hierarchical_solver() {
        let g = chain(48);
        let e = env(12.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &e, &w);
        let mut portfolio = SolverPortfolio::new();
        let cut = portfolio.distribute(&p).unwrap();
        assert!(p.fits(&cut));
        let outcome = portfolio.last_outcome().unwrap();
        assert_eq!(outcome.route, PortfolioRoute::Hierarchical);
        let cert = outcome.certificate.unwrap();
        assert!(!cert.exact);
        assert!(cert.upper >= cert.lower);
        // The portfolio's placement is never worse than the greedy seed.
        assert!(outcome.final_cost <= outcome.greedy_cost.unwrap() + 1e-12);
    }

    #[test]
    fn caller_warm_start_competes_with_the_greedy_seed() {
        let g = chain(14);
        let e = env(4.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &e, &w);
        let exact = ExhaustiveOptimal::new().distribute(&p).unwrap();
        let mut portfolio = SolverPortfolio::new().with_warm_start(exact.assignment());
        let cut = portfolio.distribute(&p).unwrap();
        assert_eq!(cut, exact);
        assert!(portfolio.last_outcome().unwrap().stats.warm_start_used);
        // Consumed: a second solve runs without the caller seed but
        // still seeds itself from greedy.
        let again = portfolio.distribute(&p).unwrap();
        assert_eq!(again, exact);
    }

    #[test]
    fn infeasible_instances_still_fail() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(
            ServiceComponent::builder("hog-a")
                .resources(ResourceVector::mem_cpu(1000.0, 1000.0))
                .build(),
        );
        let b = g.add_component(
            ServiceComponent::builder("hog-b")
                .resources(ResourceVector::mem_cpu(1000.0, 1000.0))
                .build(),
        );
        g.add_edge(a, b, 1.0).unwrap();
        let e = env(1.0);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &e, &w);
        assert!(matches!(
            SolverPortfolio::new().distribute(&p),
            Err(DistributionError::Infeasible { .. })
        ));
    }

    #[test]
    fn parallel_and_serial_portfolios_agree() {
        for n in [14usize, 48] {
            let g = chain(n);
            let e = env(n as f64 / 3.5);
            let w = Weights::default();
            let p = OsdProblem::new(&g, &e, &w);
            let cs = SolverPortfolio::new()
                .with_parallel(false)
                .distribute(&p)
                .unwrap();
            let cp = SolverPortfolio::new()
                .with_parallel(true)
                .distribute(&p)
                .unwrap();
            assert_eq!(cs, cp, "n={n}");
            assert_eq!(p.cost(&cs).to_bits(), p.cost(&cp).to_bits());
        }
    }
}
