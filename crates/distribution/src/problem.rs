//! The Optimal Service Distribution (OSD) problem instance.

use crate::cost::cost_aggregation;
use crate::environment::Environment;
use crate::error::DistributionError;
use ubiqos_graph::{Cut, ServiceGraph};
use ubiqos_model::{Weights, EPSILON};

/// One instance of the OSD problem: a service graph, the current device
/// environment, and the resource weights.
///
/// Theorem 1 shows finding the minimum-cost fitting cut is NP-hard; the
/// algorithms in this crate consume `OsdProblem` through the
/// [`crate::ServiceDistributor`] trait.
#[derive(Debug, Clone, Copy)]
pub struct OsdProblem<'a> {
    graph: &'a ServiceGraph,
    env: &'a Environment,
    weights: &'a Weights,
}

impl<'a> OsdProblem<'a> {
    /// Bundles a problem instance.
    ///
    /// `weights` is borrowed; construct it once per configuration session.
    pub fn new(graph: &'a ServiceGraph, env: &'a Environment, weights: &'a Weights) -> Self {
        OsdProblem {
            graph,
            env,
            weights,
        }
    }

    /// The service graph.
    pub fn graph(&self) -> &'a ServiceGraph {
        self.graph
    }

    /// The device environment.
    pub fn env(&self) -> &'a Environment {
        self.env
    }

    /// The cost weights.
    pub fn weights(&self) -> &'a Weights {
        self.weights
    }

    /// Definition 3.4: whether the graph, partitioned by `cut`, fits into
    /// the environment's devices.
    ///
    /// Checks (1) per-part resource sums against device availabilities and
    /// (2) per ordered device pair, the crossing throughput against the
    /// available bandwidth. Pins are also enforced: a cut placing a pinned
    /// component elsewhere does not fit.
    pub fn fits(&self, cut: &Cut) -> bool {
        if cut.len() != self.graph.component_count() || cut.parts() > self.env.device_count() {
            return false;
        }
        match cut.respects_pins(self.graph) {
            Ok(true) => {}
            _ => return false,
        }
        // Resource constraints.
        for part in 0..cut.parts() {
            let Ok(used) = cut.part_resource_sum(self.graph, part) else {
                return false;
            };
            if !used.fits_within(self.env.devices()[part].availability()) {
                return false;
            }
        }
        // Bandwidth constraints. Definition 3.4 quantifies over ordered
        // pairs, but `b(i, j)` here models a *shared medium* (one 802.11
        // channel, one link), so both directions draw from the same pool:
        // `T(i,j) + T(j,i) ≤ b(i,j)`. This matches the admission
        // accounting in [`crate::Environment::charge_cut`].
        let t = cut.inter_part_throughput(self.graph);
        let k = cut.parts();
        #[allow(clippy::needless_range_loop)] // t[i][j] + t[j][i]: pair-symmetric indexing
        for i in 0..k {
            for j in (i + 1)..k {
                if t[i][j] + t[j][i] > self.env.bandwidth().get(i, j) + EPSILON {
                    return false;
                }
            }
        }
        true
    }

    /// Definition 3.5: the cost aggregation of a cut.
    ///
    /// See [`cost_aggregation`] for semantics; infinite when the cut uses
    /// a resource or link with zero capacity.
    pub fn cost(&self, cut: &Cut) -> f64 {
        cost_aggregation(self.graph, cut, self.env, self.weights)
    }

    /// Validates the problem's structural preconditions: at least one
    /// device, every pin within range, and resource dimensions consistent
    /// between components and devices.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), DistributionError> {
        let k = self.env.device_count();
        if k == 0 {
            return Err(DistributionError::NoDevices);
        }
        let device_dim = self.env.devices()[0].availability().dim();
        for d in self.env.devices() {
            if d.availability().dim() != device_dim {
                return Err(DistributionError::Model(
                    ubiqos_model::ModelError::DimensionMismatch {
                        left: device_dim,
                        right: d.availability().dim(),
                    },
                ));
            }
        }
        for (_, c) in self.graph.components() {
            if c.resources().dim() != device_dim {
                return Err(DistributionError::Model(
                    ubiqos_model::ModelError::DimensionMismatch {
                        left: c.resources().dim(),
                        right: device_dim,
                    },
                ));
            }
            if let Some(pin) = c.pinned_to() {
                if pin.index() >= k {
                    return Err(DistributionError::InvalidPin {
                        device_index: pin.index(),
                        device_count: k,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use ubiqos_graph::{DeviceId, ServiceComponent};
    use ubiqos_model::ResourceVector;

    fn simple() -> (ServiceGraph, Environment, Weights) {
        let mut g = ServiceGraph::new();
        let a = g.add_component(
            ServiceComponent::builder("a")
                .resources(ResourceVector::mem_cpu(60.0, 60.0))
                .build(),
        );
        let b = g.add_component(
            ServiceComponent::builder("b")
                .resources(ResourceVector::mem_cpu(60.0, 60.0))
                .build(),
        );
        g.add_edge(a, b, 4.0).unwrap();
        let env = Environment::builder()
            .device(Device::new("d0", ResourceVector::mem_cpu(100.0, 100.0)))
            .device(Device::new("d1", ResourceVector::mem_cpu(100.0, 100.0)))
            .default_bandwidth_mbps(5.0)
            .build();
        (g, env, Weights::default())
    }

    #[test]
    fn fit_requires_split_when_one_device_is_too_small() {
        let (g, env, w) = simple();
        let p = OsdProblem::new(&g, &env, &w);
        let together = Cut::from_assignment(&g, vec![0, 0], 2).unwrap();
        let split = Cut::from_assignment(&g, vec![0, 1], 2).unwrap();
        assert!(!p.fits(&together), "120 > 100 on one device");
        assert!(p.fits(&split));
    }

    #[test]
    fn bandwidth_constraint_rejects() {
        let (g, mut env, w) = simple();
        env.bandwidth_mut().set(0, 1, 3.0); // edge needs 4.0
        let p = OsdProblem::new(&g, &env, &w);
        let split = Cut::from_assignment(&g, vec![0, 1], 2).unwrap();
        assert!(!p.fits(&split));
    }

    #[test]
    fn pin_violations_do_not_fit() {
        let (mut g, env, w) = simple();
        let c = g.add_component(
            ServiceComponent::builder("display")
                .pinned_to(DeviceId::from_index(1))
                .build(),
        );
        let ids: Vec<_> = g.component_ids().collect();
        g.add_edge(ids[1], c, 0.1).unwrap();
        let p = OsdProblem::new(&g, &env, &w);
        let wrong = Cut::from_assignment(&g, vec![0, 1, 0], 2).unwrap();
        let right = Cut::from_assignment(&g, vec![0, 1, 1], 2).unwrap();
        assert!(!p.fits(&wrong));
        assert!(p.fits(&right));
    }

    #[test]
    fn mismatched_cut_shape_does_not_fit() {
        let (g, env, w) = simple();
        let p = OsdProblem::new(&g, &env, &w);
        let mut other_graph = ServiceGraph::new();
        other_graph.add_component(ServiceComponent::builder("x").build());
        let short = Cut::from_assignment(&other_graph, vec![0], 2).unwrap();
        assert!(!p.fits(&short));
    }

    #[test]
    fn validate_catches_bad_pins_and_empty_envs() {
        let (mut g, env, w) = simple();
        assert!(OsdProblem::new(&g, &env, &w).validate().is_ok());

        g.add_component(
            ServiceComponent::builder("ghost")
                .pinned_to(DeviceId::from_index(7))
                .build(),
        );
        assert!(matches!(
            OsdProblem::new(&g, &env, &w).validate(),
            Err(DistributionError::InvalidPin {
                device_index: 7,
                ..
            })
        ));

        let empty = Environment::builder().build();
        assert_eq!(
            OsdProblem::new(&g, &empty, &w).validate(),
            Err(DistributionError::NoDevices)
        );
    }

    #[test]
    fn validate_catches_dimension_mismatch() {
        let (g, _, w) = simple();
        let env = Environment::builder()
            .device(Device::new("odd", ResourceVector::new(vec![1.0]).unwrap()))
            .build();
        assert!(matches!(
            OsdProblem::new(&g, &env, &w).validate(),
            Err(DistributionError::Model(_))
        ));
    }

    #[test]
    fn cost_delegates_to_cost_aggregation() {
        let (g, env, w) = simple();
        let p = OsdProblem::new(&g, &env, &w);
        let split = Cut::from_assignment(&g, vec![0, 1], 2).unwrap();
        assert!(p.cost(&split).is_finite());
        assert!(p.cost(&split) > 0.0);
    }
}
