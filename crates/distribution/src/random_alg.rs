//! The random placement baseline of Table 1 and Figure 5.

use crate::algorithm::{seed_with_pins, ServiceDistributor};
use crate::error::DistributionError;
use crate::problem::OsdProblem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ubiqos_graph::Cut;

/// Random service distribution: place each component on a *uniformly
/// random device that still has room for it* (random-fit), retrying the
/// whole placement up to a bounded number of attempts when it dead-ends
/// or violates a bandwidth constraint.
///
/// This is the paper's "random algorithm": it "benefits from the
/// flexibility of dynamic service distribution" — it reacts to current
/// availability, so it beats the fixed policy in Figure 5 — but it
/// ignores *relative* resource availability, requirements, and edge
/// locality when choosing, so it essentially never finds minimum-cost
/// cuts (0% optimal in Table 1).
#[derive(Debug, Clone)]
pub struct RandomDistributor {
    rng: StdRng,
    attempts: usize,
}

impl RandomDistributor {
    /// Creates the baseline with a deterministic seed and the default 32
    /// attempts.
    pub fn seeded(seed: u64) -> Self {
        RandomDistributor {
            rng: StdRng::seed_from_u64(seed),
            attempts: 32,
        }
    }

    /// Overrides the attempt budget (minimum 1).
    #[must_use]
    pub fn with_attempts(mut self, attempts: usize) -> Self {
        self.attempts = attempts.max(1);
        self
    }
}

impl ServiceDistributor for RandomDistributor {
    fn name(&self) -> &str {
        "random"
    }

    fn distribute(&mut self, problem: &OsdProblem<'_>) -> Result<Cut, DistributionError> {
        let graph = problem.graph();
        let k = problem.env().device_count();
        let (pinned, seeded_residual) = seed_with_pins(problem)?;

        for _ in 0..self.attempts {
            let mut residual = seeded_residual.clone();
            let mut assignment: Vec<usize> = Vec::with_capacity(graph.component_count());
            let mut dead_end = false;
            for (id, c) in graph.components() {
                if let Some(d) = pinned[id.index()] {
                    assignment.push(d);
                    continue;
                }
                // Uniform choice among the devices that can still host it.
                let fitting: Vec<usize> = (0..k)
                    .filter(|&d| c.resources().fits_within(&residual[d]))
                    .collect();
                if fitting.is_empty() {
                    dead_end = true;
                    break;
                }
                let d = fitting[self.rng.gen_range(0..fitting.len())];
                residual[d] = residual[d].saturating_sub(c.resources())?;
                assignment.push(d);
            }
            if dead_end {
                continue;
            }
            let cut = Cut::from_assignment(graph, assignment, k)
                .expect("assignment length matches graph");
            // Resource feasibility holds by construction; `fits` re-checks
            // it plus the bandwidth constraints of Definition 3.4.
            if problem.fits(&cut) {
                return Ok(cut);
            }
        }
        Err(DistributionError::Infeasible {
            reason: format!("no fitting random placement in {} attempts", self.attempts),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::environment::Environment;
    use ubiqos_graph::{DeviceId, ServiceComponent, ServiceGraph};
    use ubiqos_model::{ResourceVector, Weights};

    fn comp(name: &str, mem: f64, cpu: f64) -> ServiceComponent {
        ServiceComponent::builder(name)
            .resources(ResourceVector::mem_cpu(mem, cpu))
            .build()
    }

    fn env() -> Environment {
        Environment::builder()
            .device(Device::new("pc", ResourceVector::mem_cpu(256.0, 300.0)))
            .device(Device::new("pda", ResourceVector::mem_cpu(32.0, 100.0)))
            .default_bandwidth_mbps(10.0)
            .build()
    }

    #[test]
    fn finds_feasible_cut_when_one_exists() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(comp("a", 20.0, 20.0));
        let b = g.add_component(comp("b", 20.0, 20.0));
        g.add_edge(a, b, 1.0).unwrap();
        let e = env();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &e, &w);
        let cut = RandomDistributor::seeded(7).distribute(&p).unwrap();
        assert!(p.fits(&cut));
    }

    #[test]
    fn random_fit_avoids_overfull_devices() {
        // Four 30 MB components: at most one fits the 32 MB PDA, so
        // random-fit must route the rest to the PC — every seed succeeds.
        let mut g = ServiceGraph::new();
        for i in 0..4 {
            g.add_component(comp(&format!("c{i}"), 30.0, 20.0));
        }
        let e = env();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &e, &w);
        for seed in 0..20 {
            let cut = RandomDistributor::seeded(seed)
                .with_attempts(4)
                .distribute(&p)
                .unwrap();
            assert!(p.fits(&cut), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut g = ServiceGraph::new();
        for i in 0..6 {
            g.add_component(comp(&format!("c{i}"), 5.0, 5.0));
        }
        let e = env();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &e, &w);
        let c1 = RandomDistributor::seeded(42).distribute(&p).unwrap();
        let c2 = RandomDistributor::seeded(42).distribute(&p).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn respects_pins() {
        let mut g = ServiceGraph::new();
        g.add_component(
            ServiceComponent::builder("display")
                .resources(ResourceVector::mem_cpu(2.0, 2.0))
                .pinned_to(DeviceId::from_index(1))
                .build(),
        );
        g.add_component(comp("free", 2.0, 2.0));
        let e = env();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &e, &w);
        for seed in 0..16 {
            let cut = RandomDistributor::seeded(seed).distribute(&p).unwrap();
            assert_eq!(
                cut.part_of(ubiqos_graph::ComponentId::from_index(0)),
                Some(1)
            );
        }
    }

    #[test]
    fn gives_up_after_attempt_budget() {
        let mut g = ServiceGraph::new();
        g.add_component(comp("whale", 1000.0, 1000.0));
        let e = env();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &e, &w);
        let err = RandomDistributor::seeded(1)
            .with_attempts(4)
            .distribute(&p)
            .unwrap_err();
        assert!(err.to_string().contains("4 attempts"));
    }

    #[test]
    fn bandwidth_violations_are_retried_then_reported() {
        // Two components that both fit both devices but whose edge
        // exceeds every link: only the co-located placements succeed.
        let mut g = ServiceGraph::new();
        let a = g.add_component(comp("a", 10.0, 10.0));
        let b = g.add_component(comp("b", 10.0, 10.0));
        g.add_edge(a, b, 50.0).unwrap();
        let e = env();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &e, &w);
        let cut = RandomDistributor::seeded(3)
            .with_attempts(64)
            .distribute(&p)
            .unwrap();
        assert_eq!(cut.part_of(a), cut.part_of(b), "must co-locate");
    }

    #[test]
    fn attempts_floor_is_one() {
        let r = RandomDistributor::seeded(0).with_attempts(0);
        assert_eq!(r.attempts, 1);
    }
}
