//! Placement reporting: per-device utilization and cut statistics.
//!
//! The distribution tier's objective — "improve the total resource
//! utilization and reduce the contention on critical resources" — is best
//! judged by looking at what a cut actually does to each device and link.
//! [`PlacementReport`] summarizes a cut against its environment for
//! operators, examples, and the bench harness.

use crate::environment::Environment;
use crate::problem::OsdProblem;
use serde::{Deserialize, Serialize};
use std::fmt;
use ubiqos_graph::{Cut, ServiceGraph};

/// Utilization of one device under a placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceLoad {
    /// Device name.
    pub device: String,
    /// Components placed on the device.
    pub components: usize,
    /// Fraction of each resource consumed, in resource-vector order
    /// (1.0 = fully used; resources with zero availability and zero
    /// demand report 0).
    pub utilization: Vec<f64>,
}

/// Utilization of one device pair's link under a placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkLoad {
    /// The device pair (indices into the environment).
    pub pair: (usize, usize),
    /// Throughput crossing the pair, both directions summed (Mbps).
    pub crossing_mbps: f64,
    /// Fraction of the link's bandwidth consumed.
    pub utilization: f64,
}

/// A summary of what a cut does to an environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementReport {
    /// Per-device loads, in device order.
    pub devices: Vec<DeviceLoad>,
    /// Per-pair link loads (only pairs with crossing traffic).
    pub links: Vec<LinkLoad>,
    /// Edges crossing device boundaries.
    pub cut_edges: usize,
    /// Total crossing throughput (Mbps).
    pub cut_throughput: f64,
    /// The placement's cost aggregation.
    pub cost: f64,
    /// Whether the placement satisfies Definition 3.4.
    pub fits: bool,
}

impl PlacementReport {
    /// Builds the report for `cut` on the problem's environment.
    pub fn new(problem: &OsdProblem<'_>, cut: &Cut) -> Self {
        let graph = problem.graph();
        let env = problem.env();
        let devices = device_loads(graph, cut, env);
        let links = link_loads(graph, cut, env);
        PlacementReport {
            devices,
            links,
            cut_edges: cut.cut_edges(graph).len(),
            cut_throughput: cut.cut_throughput(graph),
            cost: problem.cost(cut),
            fits: problem.fits(cut),
        }
    }

    /// The highest single resource utilization across devices (the
    /// contention hotspot).
    pub fn peak_utilization(&self) -> f64 {
        self.devices
            .iter()
            .flat_map(|d| d.utilization.iter().copied())
            .fold(0.0, f64::max)
    }
}

fn device_loads(graph: &ServiceGraph, cut: &Cut, env: &Environment) -> Vec<DeviceLoad> {
    (0..cut.parts().min(env.device_count()))
        .map(|part| {
            let used = cut
                .part_resource_sum(graph, part)
                .expect("consistent dimensions");
            let avail = env.devices()[part].availability();
            let utilization = (0..used.dim())
                .map(|i| {
                    let u = used.get(i).unwrap_or(0.0);
                    let a = avail.get(i).unwrap_or(0.0);
                    if a > 0.0 {
                        u / a
                    } else if u > 0.0 {
                        f64::INFINITY
                    } else {
                        0.0
                    }
                })
                .collect();
            DeviceLoad {
                device: env.devices()[part].name().to_owned(),
                components: cut.part_members(part).len(),
                utilization,
            }
        })
        .collect()
}

fn link_loads(graph: &ServiceGraph, cut: &Cut, env: &Environment) -> Vec<LinkLoad> {
    let t = cut.inter_part_throughput(graph);
    let k = cut.parts().min(env.device_count());
    let mut out = Vec::new();
    #[allow(clippy::needless_range_loop)] // t[i][j] + t[j][i]: pair-symmetric indexing
    for i in 0..k {
        for j in (i + 1)..k {
            let crossing = t[i][j] + t[j][i];
            if crossing > 0.0 {
                let b = env.bandwidth().get(i, j);
                out.push(LinkLoad {
                    pair: (i, j),
                    crossing_mbps: crossing,
                    utilization: if b.is_finite() && b > 0.0 {
                        crossing / b
                    } else if b == 0.0 {
                        f64::INFINITY
                    } else {
                        0.0
                    },
                });
            }
        }
    }
    out
}

impl fmt::Display for PlacementReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "placement: {} cut edges, {:.2} Mbps crossing, cost {:.4}, {}",
            self.cut_edges,
            self.cut_throughput,
            self.cost,
            if self.fits { "fits" } else { "DOES NOT FIT" }
        )?;
        for d in &self.devices {
            let pct: Vec<String> = d
                .utilization
                .iter()
                .map(|u| format!("{:.0}%", u * 100.0))
                .collect();
            writeln!(
                f,
                "  {:<12} {} components, utilization [{}]",
                d.device,
                d.components,
                pct.join(", ")
            )?;
        }
        for l in &self.links {
            writeln!(
                f,
                "  link d{}-d{}: {:.2} Mbps ({:.0}%)",
                l.pair.0,
                l.pair.1,
                l.crossing_mbps,
                l.utilization * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use ubiqos_graph::ServiceComponent;
    use ubiqos_model::{ResourceVector, Weights};

    fn setup() -> (ServiceGraph, Environment) {
        let mut g = ServiceGraph::new();
        let a = g.add_component(
            ServiceComponent::builder("a")
                .resources(ResourceVector::mem_cpu(50.0, 100.0))
                .build(),
        );
        let b = g.add_component(
            ServiceComponent::builder("b")
                .resources(ResourceVector::mem_cpu(16.0, 25.0))
                .build(),
        );
        g.add_edge(a, b, 2.0).unwrap();
        let env = Environment::builder()
            .device(Device::new("pc", ResourceVector::mem_cpu(100.0, 200.0)))
            .device(Device::new("pda", ResourceVector::mem_cpu(32.0, 50.0)))
            .default_bandwidth_mbps(8.0)
            .build();
        (g, env)
    }

    #[test]
    fn reports_utilization_and_links() {
        let (g, env) = setup();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cut = Cut::from_assignment(&g, vec![0, 1], 2).unwrap();
        let report = PlacementReport::new(&p, &cut);
        assert!(report.fits);
        assert_eq!(report.cut_edges, 1);
        assert_eq!(report.cut_throughput, 2.0);
        assert_eq!(report.devices[0].components, 1);
        assert_eq!(report.devices[0].utilization, vec![0.5, 0.5]);
        assert_eq!(report.devices[1].utilization, vec![0.5, 0.5]);
        assert_eq!(report.links.len(), 1);
        assert_eq!(report.links[0].pair, (0, 1));
        assert_eq!(report.links[0].crossing_mbps, 2.0);
        assert_eq!(report.links[0].utilization, 0.25);
        assert_eq!(report.peak_utilization(), 0.5);
    }

    #[test]
    fn colocated_placement_has_no_links() {
        let (g, env) = setup();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cut = Cut::from_assignment(&g, vec![0, 0], 2).unwrap();
        let report = PlacementReport::new(&p, &cut);
        assert!(report.links.is_empty());
        assert_eq!(report.cut_edges, 0);
        assert_eq!(report.devices[1].components, 0);
        assert_eq!(report.devices[1].utilization, vec![0.0, 0.0]);
    }

    #[test]
    fn unfit_placement_is_flagged() {
        let (g, env) = setup();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        // Component a (50 MB) on the PDA (32 MB): does not fit.
        let cut = Cut::from_assignment(&g, vec![1, 0], 2).unwrap();
        let report = PlacementReport::new(&p, &cut);
        assert!(!report.fits);
        assert!(report.devices[1].utilization[0] > 1.0);
    }

    #[test]
    fn display_renders_all_sections() {
        let (g, env) = setup();
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cut = Cut::from_assignment(&g, vec![0, 1], 2).unwrap();
        let s = PlacementReport::new(&p, &cut).to_string();
        assert!(s.contains("cut edges"));
        assert!(s.contains("pc"));
        assert!(s.contains("pda"));
        assert!(s.contains("link d0-d1"));
    }
}
