//! Hierarchical solver and portfolio vs. the exhaustive optimum.
//!
//! Within the exact limit, both [`HierarchicalSolver`] and
//! [`SolverPortfolio`] are specified to return *exactly* the cut
//! [`ExhaustiveOptimal`] returns — the unique `(cost, key)` minimum —
//! bit for bit, at every thread count (the CI matrix re-runs this file
//! under `UBIQOS_THREADS=1` and `=8`). Beyond the limit, the
//! hierarchical result must fit, carry a valid optimality bracket, and
//! be identical between serial and parallel coarse solves. A directed
//! test pins refinement termination on a pathological instance whose
//! clusters all have zero bound gap.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ubiqos_distribution::{
    Device, Environment, ExhaustiveOptimal, HierarchicalSolver, OsdProblem, ServiceDistributor,
    SolverPortfolio,
};
use ubiqos_graph::{DeviceId, ServiceComponent, ServiceGraph};
use ubiqos_model::{ResourceVector, Weights};

/// Random instance over 2-3 devices; occasionally pins a component, and
/// draws bandwidth thin enough that the constraint sometimes bites.
fn random_instance(seed: u64, n: usize, k: usize) -> (ServiceGraph, Environment) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = ServiceGraph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            let mut builder = ServiceComponent::builder(format!("c{i}")).resources(
                ResourceVector::mem_cpu(rng.gen_range(1.0..14.0), rng.gen_range(1.0..16.0)),
            );
            if rng.gen_bool(0.15) {
                builder = builder.pinned_to(DeviceId::from_index(rng.gen_range(0..k)));
            }
            g.add_component(builder.build())
        })
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(2.5 / n as f64) {
                g.add_edge(ids[i], ids[j], rng.gen_range(0.05..1.2))
                    .unwrap();
            }
        }
    }
    let mut env = Environment::builder();
    for d in 0..k {
        let scale = n as f64 / 8.0;
        env = env.device(Device::new(
            format!("dev{d}"),
            ResourceVector::mem_cpu(
                scale * rng.gen_range(40.0..160.0),
                scale * rng.gen_range(50.0..200.0),
            ),
        ));
    }
    let env = env.default_bandwidth_mbps(rng.gen_range(4.0..20.0)).build();
    (g, env)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `hierarchical ≡ exhaustive`, bit-identical cut and cost, on
    /// random graphs within the exact limit, in both inner-solver modes.
    #[test]
    fn hierarchical_matches_exhaustive_within_limit(
        seed in 0u64..5000, n in 6usize..15, k in 2usize..4
    ) {
        let (g, env) = random_instance(seed, n, k);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let exact = ExhaustiveOptimal::new().distribute(&p);
        for parallel in [false, true] {
            let mut hier = HierarchicalSolver::new().with_parallel(parallel);
            let got = hier.distribute(&p);
            match (&exact, got) {
                (Ok(e), Ok(h)) => {
                    prop_assert_eq!(e, &h, "cuts differ (parallel={})", parallel);
                    prop_assert_eq!(
                        p.cost(e).to_bits(),
                        p.cost(&h).to_bits(),
                        "costs differ in bits (parallel={})", parallel
                    );
                    let cert = hier.last_certificate().unwrap();
                    prop_assert!(cert.exact);
                    prop_assert_eq!(cert.gap, 0.0);
                }
                (Err(_), Err(_)) => {}
                (e, h) => prop_assert!(
                    false,
                    "feasibility disagrees: exact {:?}, hierarchical {:?}",
                    e.is_ok(), h.is_ok()
                ),
            }
        }
    }

    /// The portfolio never strays from the exhaustive optimum within the
    /// limit — the greedy seed must not leak into the result.
    #[test]
    fn portfolio_matches_exhaustive_within_limit(
        seed in 0u64..5000, n in 6usize..15, k in 2usize..4
    ) {
        let (g, env) = random_instance(seed, n, k);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let exact = ExhaustiveOptimal::new().distribute(&p);
        let got = SolverPortfolio::new().distribute(&p);
        match (exact, got) {
            (Ok(e), Ok(q)) => {
                prop_assert_eq!(&e, &q, "cuts differ");
                prop_assert_eq!(p.cost(&e).to_bits(), p.cost(&q).to_bits());
            }
            (Err(_), Err(_)) => {}
            (e, q) => prop_assert!(
                false,
                "feasibility disagrees: exact {:?}, portfolio {:?}",
                e.is_ok(), q.is_ok()
            ),
        }
    }

    /// Beyond the exact limit: the hierarchical placement fits, the
    /// certificate brackets its cost, and serial/parallel coarse solves
    /// agree bit for bit.
    #[test]
    fn oversized_instances_get_certified_placements(
        seed in 0u64..1000, n in 36usize..56, k in 2usize..4
    ) {
        let (g, env) = random_instance(seed, n, k);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let free = g.components().filter(|(_, c)| c.pinned_to().is_none()).count();
        let mut serial = HierarchicalSolver::new()
            .with_exact_limit(20)
            .with_coarse_target(8)
            .with_refine_limit(14)
            .with_parallel(false);
        let mut parallel = HierarchicalSolver::new()
            .with_exact_limit(20)
            .with_coarse_target(8)
            .with_refine_limit(14)
            .with_parallel(true);
        match (serial.distribute(&p), parallel.distribute(&p)) {
            (Ok(s), Ok(q)) => {
                prop_assert!(p.fits(&s));
                prop_assert_eq!(&s, &q, "serial/parallel hierarchical cuts differ");
                prop_assert_eq!(p.cost(&s).to_bits(), p.cost(&q).to_bits());
                let cert = serial.last_certificate().unwrap();
                prop_assert_eq!(cert.exact, free <= 20);
                prop_assert!(cert.upper >= cert.lower);
                prop_assert!(
                    (p.cost(&s) - cert.upper).abs() < 1e-12,
                    "certificate upper {} vs actual cost {}", cert.upper, p.cost(&s)
                );
            }
            (Err(_), Err(_)) => {}
            (s, q) => prop_assert!(
                false,
                "feasibility disagrees: serial {:?}, parallel {:?}",
                s.is_ok(), q.is_ok()
            ),
        }
    }
}

/// Directed: a pathological instance whose refinement gains are all zero
/// — identical devices (so every component's end-system cost is the same
/// everywhere) and a coarse optimum with no crossing edges. The
/// certified gap cannot close, yet the refinement loop must terminate
/// without burning rounds on zero-gain splits.
#[test]
fn zero_bound_gap_terminates_without_refinement() {
    let n = 12usize;
    let mut g = ServiceGraph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            g.add_component(
                ServiceComponent::builder(format!("c{i}"))
                    .resources(ResourceVector::mem_cpu(4.0, 4.0))
                    .build(),
            )
        })
        .collect();
    for i in 1..n {
        g.add_edge(ids[i - 1], ids[i], 0.5).unwrap();
    }
    // Two identical devices, each big enough for the whole chain: the
    // coarse optimum co-locates everything (no crossing edges) and
    // min-es equals placed-es for every component, so every cluster's
    // refinement gain is exactly zero.
    let env = Environment::builder()
        .device(Device::new("d0", ResourceVector::mem_cpu(100.0, 100.0)))
        .device(Device::new("d1", ResourceVector::mem_cpu(100.0, 100.0)))
        .default_bandwidth_mbps(50.0)
        .build();
    let w = Weights::default();
    let p = OsdProblem::new(&g, &env, &w);
    // Force the coarse path (exact_limit below n) and leave plenty of
    // refinement headroom: if zero gains did not stop the loop, rounds
    // would grow toward max_rounds.
    let mut hier = HierarchicalSolver::new()
        .with_exact_limit(4)
        .with_coarse_target(4)
        .with_refine_limit(10)
        .with_max_rounds(32)
        // Impossible tolerance: termination must come from the zero
        // bound gap, not from the gap test.
        .with_gap_tolerance(0.0);
    let cut = hier.distribute(&p).unwrap();
    assert!(p.fits(&cut));
    // Everything co-located on the lexicographically first device.
    let assignment = cut.assignment();
    assert!(assignment.iter().all(|&d| d == assignment[0]));
    let cert = hier.last_certificate().unwrap();
    assert_eq!(
        cert.rounds, 0,
        "zero-gain clusters must stop refinement immediately"
    );
    assert!(!cert.exact);
    // The incumbent is in fact optimal here even though the certificate
    // cannot prove it (the lower bound ignores which device hosts what,
    // and all devices are identical — so upper == the true optimum).
    let exact = ExhaustiveOptimal::new().distribute(&p).unwrap();
    assert_eq!(p.cost(&cut).to_bits(), p.cost(&exact).to_bits());
}

/// Directed: refinement actually refines — an instance engineered so the
/// initial coarse abstraction is suboptimal and at least one split is
/// needed to reach a better incumbent.
#[test]
fn refinement_improves_a_coarse_incumbent() {
    // A 12-chain with one cheap link in the middle; devices sized so the
    // optimum splits 6/6 at the cheap link. Aggressive clustering (target
    // 3) welds components across the cheap link into one cluster, making
    // the first coarse solve either infeasible or clearly suboptimal;
    // refinement must unwind it.
    let n = 12usize;
    let mut g = ServiceGraph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            g.add_component(
                ServiceComponent::builder(format!("c{i}"))
                    .resources(ResourceVector::mem_cpu(10.0, 10.0))
                    .build(),
            )
        })
        .collect();
    for i in 1..n {
        let tp = if i == 6 { 0.05 } else { 2.0 + i as f64 * 0.1 };
        g.add_edge(ids[i - 1], ids[i], tp).unwrap();
    }
    let env = Environment::builder()
        .device(Device::new("d0", ResourceVector::mem_cpu(62.0, 62.0)))
        .device(Device::new("d1", ResourceVector::mem_cpu(62.0, 62.0)))
        .default_bandwidth_mbps(40.0)
        .build();
    let w = Weights::default();
    let p = OsdProblem::new(&g, &env, &w);
    let exact = ExhaustiveOptimal::new().distribute(&p).unwrap();
    let mut hier = HierarchicalSolver::new()
        .with_exact_limit(4)
        .with_coarse_target(3)
        .with_refine_limit(12)
        .with_gap_tolerance(1e-9)
        .with_max_rounds(32);
    let cut = hier.distribute(&p).unwrap();
    assert!(p.fits(&cut));
    let cert = hier.last_certificate().unwrap();
    assert!(cert.rounds > 0, "this instance must take refinement rounds");
    // Refinement reaches the true optimum cost (the certificate may not
    // prove it, but the placement itself must match the exact solver's).
    assert_eq!(p.cost(&cut).to_bits(), p.cost(&exact).to_bits());
}
