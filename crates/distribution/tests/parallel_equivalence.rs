//! Serial vs. parallel branch-and-bound equivalence.
//!
//! The parallel solver fans the top of the assignment tree out across
//! worker threads but is specified to return *exactly* the serial
//! result: the unique minimum of `(cost, visiting-order device key)`
//! over all feasible leaves. These properties pin that contract on
//! random instances — same feasibility verdict, identical cut, and
//! bit-identical cost.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ubiqos_distribution::{Device, Environment, ExhaustiveOptimal, OsdProblem, ServiceDistributor};
use ubiqos_graph::{DeviceId, ServiceComponent, ServiceGraph};
use ubiqos_model::{ResourceVector, Weights};

/// Random 6-12 node instance over 2-3 devices; occasionally pins a
/// component, and draws bandwidth thin enough that the constraint
/// sometimes bites.
fn random_instance(seed: u64, n: usize, k: usize) -> (ServiceGraph, Environment) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = ServiceGraph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            let mut builder = ServiceComponent::builder(format!("c{i}")).resources(
                ResourceVector::mem_cpu(rng.gen_range(1.0..18.0), rng.gen_range(1.0..20.0)),
            );
            if rng.gen_bool(0.2) {
                builder = builder.pinned_to(DeviceId::from_index(rng.gen_range(0..k)));
            }
            g.add_component(builder.build())
        })
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(0.3) {
                g.add_edge(ids[i], ids[j], rng.gen_range(0.05..1.2))
                    .unwrap();
            }
        }
    }
    let mut env = Environment::builder();
    for d in 0..k {
        env = env.device(Device::new(
            format!("dev{d}"),
            ResourceVector::mem_cpu(rng.gen_range(40.0..160.0), rng.gen_range(50.0..200.0)),
        ));
    }
    let env = env.default_bandwidth_mbps(rng.gen_range(2.0..14.0)).build();
    (g, env)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Serial and parallel searches agree on feasibility, the cut itself,
    /// and the cost down to the last bit.
    #[test]
    fn parallel_matches_serial(seed in 0u64..5000, n in 6usize..13, k in 2usize..4) {
        let (g, env) = random_instance(seed, n, k);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let serial = ExhaustiveOptimal::new().with_parallel(false).distribute(&p);
        // Threshold 0: these instances are below the default serial
        // fallback, and the point here is to exercise the fan-out.
        let parallel = ExhaustiveOptimal::new()
            .with_parallel(true)
            .with_parallel_threshold(0)
            .distribute(&p);
        match (serial, parallel) {
            (Ok(s), Ok(q)) => {
                prop_assert_eq!(&s, &q, "cuts differ");
                prop_assert_eq!(p.cost(&s).to_bits(), p.cost(&q).to_bits(), "costs differ in bits");
            }
            (Err(_), Err(_)) => {}
            (s, q) => prop_assert!(false, "feasibility disagrees: serial {:?}, parallel {:?}", s.is_ok(), q.is_ok()),
        }
    }

    /// Repeated parallel runs of the same instance return the same cut —
    /// the shared-incumbent race never leaks into the result.
    #[test]
    fn parallel_is_internally_deterministic(seed in 0u64..1500) {
        let (g, env) = random_instance(seed, 10, 3);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let first = ExhaustiveOptimal::new().with_parallel_threshold(0).distribute(&p);
        for _ in 0..3 {
            let again = ExhaustiveOptimal::new().with_parallel_threshold(0).distribute(&p);
            match (&first, &again) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "feasibility flapped between runs"),
            }
        }
    }

    /// Warm-starting from any seed — the optimum itself, an arbitrary
    /// (often invalid or infeasible) assignment — never changes the
    /// result: same cut, bit-identical cost, in serial and parallel mode.
    #[test]
    fn warm_start_never_changes_the_result(
        seed in 0u64..3000,
        n in 6usize..12,
        k in 2usize..4,
        junk in proptest::collection::vec(0usize..5, 0..14),
    ) {
        let (g, env) = random_instance(seed, n, k);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let cold = ExhaustiveOptimal::new().with_parallel(false).distribute(&p);
        let seeds: Vec<Vec<usize>> = match &cold {
            Ok(cut) => vec![
                (0..n).map(|i| cut.part_of(ubiqos_graph::ComponentId::from_index(i)).unwrap()).collect(),
                junk.clone(),
            ],
            Err(_) => vec![junk.clone()],
        };
        for warm_seed in seeds {
            for parallel in [false, true] {
                let warm = ExhaustiveOptimal::new()
                    .with_parallel(parallel)
                    .with_parallel_threshold(0)
                    .with_warm_start(warm_seed.clone())
                    .distribute(&p);
                match (&cold, &warm) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(a, b, "cut changed under warm start");
                        prop_assert_eq!(p.cost(a).to_bits(), p.cost(b).to_bits());
                    }
                    (Err(_), Err(_)) => {}
                    _ => prop_assert!(
                        false,
                        "feasibility changed under warm start: cold {:?}, warm {:?}",
                        cold.is_ok(),
                        warm.is_ok()
                    ),
                }
            }
        }
    }
}
