//! Property-based tests for the distribution tier.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ubiqos_distribution::{
    Device, Environment, ExhaustiveOptimal, GreedyHeuristic, OsdProblem, PlacementReport,
    RandomDistributor, ServiceDistributor,
};
use ubiqos_graph::{Cut, DeviceId, ServiceComponent, ServiceGraph};
use ubiqos_model::{ResourceVector, Weights};

/// Builds a random graph; roughly one in three components is pinned.
fn random_instance(seed: u64, n: usize, pin_some: bool) -> (ServiceGraph, Environment) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = ServiceGraph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            let mut builder = ServiceComponent::builder(format!("c{i}")).resources(
                ResourceVector::mem_cpu(rng.gen_range(1.0..14.0), rng.gen_range(1.0..16.0)),
            );
            if pin_some && rng.gen_bool(0.3) {
                builder = builder.pinned_to(DeviceId::from_index(rng.gen_range(0..3)));
            }
            g.add_component(builder.build())
        })
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(0.25) {
                g.add_edge(ids[i], ids[j], rng.gen_range(0.05..0.8))
                    .unwrap();
            }
        }
    }
    let env = Environment::builder()
        .device(Device::new("big", ResourceVector::mem_cpu(160.0, 200.0)))
        .device(Device::new("mid", ResourceVector::mem_cpu(80.0, 90.0)))
        .device(Device::new("small", ResourceVector::mem_cpu(30.0, 40.0)))
        .default_bandwidth_mbps(12.0)
        .build();
    (g, env)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any cut an algorithm returns fits, respects pins, and has a finite
    /// cost that the report reproduces.
    #[test]
    fn returned_cuts_fit_and_report_consistently(seed in 0u64..400, n in 3usize..12) {
        let (g, env) = random_instance(seed, n, true);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        let algorithms: Vec<Box<dyn ServiceDistributor>> = vec![
            Box::new(GreedyHeuristic::paper()),
            Box::new(GreedyHeuristic::without_device_resort()),
            Box::new(GreedyHeuristic::without_cluster_adjacency()),
            Box::new(RandomDistributor::seeded(seed)),
            Box::new(ExhaustiveOptimal::new()),
        ];
        for mut alg in algorithms {
            if let Ok(cut) = alg.distribute(&p) {
                prop_assert!(p.fits(&cut), "{} returned an unfit cut", alg.name());
                prop_assert!(cut.respects_pins(&g).unwrap(), "{}", alg.name());
                let report = PlacementReport::new(&p, &cut);
                prop_assert!(report.fits);
                prop_assert!((report.cost - p.cost(&cut)).abs() < 1e-12);
                prop_assert!(report.peak_utilization() <= 1.0 + 1e-9);
            }
        }
    }

    /// When the optimal solver proves infeasibility, no other algorithm
    /// finds a cut.
    #[test]
    fn optimal_infeasibility_is_authoritative(seed in 0u64..200) {
        let (g, env) = random_instance(seed, 8, false);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        if ExhaustiveOptimal::new().distribute(&p).is_err() {
            prop_assert!(GreedyHeuristic::paper().distribute(&p).is_err());
            prop_assert!(RandomDistributor::seeded(seed).distribute(&p).is_err());
        }
    }

    /// Doubling every bandwidth never increases the optimal cost and never
    /// turns a feasible instance infeasible.
    #[test]
    fn more_bandwidth_never_hurts(seed in 0u64..150) {
        let (g, env) = random_instance(seed, 7, false);
        let mut rich = env.clone();
        for i in 0..rich.device_count() {
            for j in (i + 1)..rich.device_count() {
                let b = rich.bandwidth().get(i, j);
                rich.bandwidth_mut().set(i, j, b * 2.0);
            }
        }
        let w = Weights::default();
        let base = OsdProblem::new(&g, &env, &w);
        let relaxed = OsdProblem::new(&g, &rich, &w);
        match (ExhaustiveOptimal::new().distribute(&base), ExhaustiveOptimal::new().distribute(&relaxed)) {
            (Ok(c1), Ok(c2)) => {
                prop_assert!(relaxed.cost(&c2) <= base.cost(&c1) + 1e-9);
            }
            (Ok(_), Err(_)) => prop_assert!(false, "relaxation lost feasibility"),
            _ => {}
        }
    }

    /// The cost of a cut is invariant under recomputation and the cut
    /// serializes losslessly.
    #[test]
    fn cost_is_deterministic_and_cut_serializes(seed in 0u64..150) {
        let (g, env) = random_instance(seed, 9, false);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        if let Ok(cut) = GreedyHeuristic::paper().distribute(&p) {
            prop_assert_eq!(p.cost(&cut).to_bits(), p.cost(&cut).to_bits());
            let json = serde_json::to_string(&cut).unwrap();
            let back: Cut = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(&back, &cut);
            prop_assert_eq!(p.cost(&back).to_bits(), p.cost(&cut).to_bits());
        }
    }

    /// Charging a feasible cut leaves no device negative and the
    /// environment refundable to the original state.
    #[test]
    fn environment_accounting_is_exact(seed in 0u64..150) {
        let (g, env) = random_instance(seed, 8, false);
        let w = Weights::default();
        let p = OsdProblem::new(&g, &env, &w);
        if let Ok(cut) = GreedyHeuristic::paper().distribute(&p) {
            let mut working = env.clone();
            working.charge_cut(&g, &cut).unwrap();
            for d in working.devices() {
                for &a in d.availability().amounts() {
                    prop_assert!(a >= 0.0);
                }
            }
            // Residual bandwidth never exceeds the original.
            for (i, j, b) in working.bandwidth().pairs() {
                prop_assert!(b <= env.bandwidth().get(i, j) + 1e-9);
            }
            working.refund_cut(&g, &cut).unwrap();
            for (a, b) in working.devices().iter().zip(env.devices()) {
                for (x, y) in a.availability().amounts().iter().zip(b.availability().amounts()) {
                    prop_assert!((x - y).abs() < 1e-6);
                }
            }
        }
    }
}
