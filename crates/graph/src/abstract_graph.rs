//! Abstract service graphs — the developer-provided application
//! description (Section 3.2, step 1).
//!
//! Ubiquitous applications name their components "not explicitly … but
//! rather in an abstract manner" so the composition tier can accommodate
//! unexpected runtime variation. An [`AbstractServiceGraph`] mirrors the
//! structure of the concrete [`crate::ServiceGraph`] but holds
//! [`AbstractComponentSpec`]s: service-type names, QoS templates, an
//! *optional* flag ("the developer can also abstractly specify optional
//! services"), and placement hints.

use crate::error::GraphError;
use serde::{Deserialize, Serialize};
use std::fmt;
use ubiqos_model::QosVector;

/// Identifier of a spec within one [`AbstractServiceGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpecId(u32);

impl SpecId {
    /// The dense index of this spec.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a spec id from a dense index.
    pub fn from_index(index: usize) -> Self {
        SpecId(index as u32)
    }
}

impl fmt::Display for SpecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Where an abstract component must be instantiated, if constrained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PinHint {
    /// Must run on the user's current client/portal device (e.g. the
    /// display service of video-on-demand).
    ClientDevice,
    /// Must run on a specific device, identified by environment index.
    Device(u32),
}

/// An abstract description of one needed service component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbstractComponentSpec {
    /// The abstract service-type name, e.g. `"audio-player"`.
    pub service_type: String,
    /// QoS the instantiated component's output must be able to provide
    /// (matched against discovered instances' capabilities/output).
    pub desired_qos: QosVector,
    /// Whether the application can run without this service ("if present
    /// at runtime, enhance the application").
    pub optional: bool,
    /// Placement constraint hint, if any.
    pub pin: Option<PinHint>,
}

impl AbstractComponentSpec {
    /// Creates a mandatory spec with no QoS template or pin.
    pub fn new(service_type: impl Into<String>) -> Self {
        AbstractComponentSpec {
            service_type: service_type.into(),
            desired_qos: QosVector::new(),
            optional: false,
            pin: None,
        }
    }

    /// Sets the desired QoS template.
    #[must_use]
    pub fn with_desired_qos(mut self, qos: QosVector) -> Self {
        self.desired_qos = qos;
        self
    }

    /// Marks the spec optional.
    #[must_use]
    pub fn optional(mut self) -> Self {
        self.optional = true;
        self
    }

    /// Constrains placement.
    #[must_use]
    pub fn with_pin(mut self, pin: PinHint) -> Self {
        self.pin = Some(pin);
        self
    }
}

/// The abstract service graph: specs plus the interactions/dependencies
/// between them, structured like the concrete service graph.
///
/// # Example
///
/// ```
/// use ubiqos_graph::{AbstractComponentSpec, AbstractServiceGraph};
/// let mut g = AbstractServiceGraph::new();
/// let server = g.add_spec(AbstractComponentSpec::new("audio-server"));
/// let player = g.add_spec(AbstractComponentSpec::new("audio-player"));
/// g.add_edge(server, player, 1.4)?;
/// assert_eq!(g.spec_count(), 2);
/// # Ok::<(), ubiqos_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AbstractServiceGraph {
    specs: Vec<AbstractComponentSpec>,
    edges: Vec<(SpecId, SpecId, f64)>,
}

impl AbstractServiceGraph {
    /// Creates an empty abstract graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a spec, returning its id.
    pub fn add_spec(&mut self, spec: AbstractComponentSpec) -> SpecId {
        let id = SpecId(self.specs.len() as u32);
        self.specs.push(spec);
        id
    }

    /// Adds a dependency edge with an estimated stream throughput (Mbps).
    ///
    /// # Errors
    ///
    /// Mirrors [`crate::ServiceGraph::add_edge`]: unknown ids, self-loops,
    /// duplicates, cycles, and invalid throughputs are rejected.
    pub fn add_edge(
        &mut self,
        from: SpecId,
        to: SpecId,
        throughput: f64,
    ) -> Result<(), GraphError> {
        use crate::ids::ComponentId;
        let as_cid = |s: SpecId| ComponentId::from_index(s.index());
        if from.index() >= self.specs.len() {
            return Err(GraphError::UnknownComponent(as_cid(from)));
        }
        if to.index() >= self.specs.len() {
            return Err(GraphError::UnknownComponent(as_cid(to)));
        }
        if from == to {
            return Err(GraphError::SelfLoop(as_cid(from)));
        }
        if !throughput.is_finite() || throughput < 0.0 {
            return Err(GraphError::InvalidThroughput(throughput));
        }
        if self.edges.iter().any(|&(f, t, _)| f == from && t == to) {
            return Err(GraphError::DuplicateEdge {
                from: as_cid(from),
                to: as_cid(to),
            });
        }
        if self.reaches(to, from) {
            return Err(GraphError::WouldCycle {
                from: as_cid(from),
                to: as_cid(to),
            });
        }
        self.edges.push((from, to, throughput));
        Ok(())
    }

    /// The number of specs.
    pub fn spec_count(&self) -> usize {
        self.specs.len()
    }

    /// The number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Borrows a spec.
    pub fn spec(&self, id: SpecId) -> Option<&AbstractComponentSpec> {
        self.specs.get(id.index())
    }

    /// Iterates over `(id, spec)` pairs.
    pub fn specs(&self) -> impl Iterator<Item = (SpecId, &AbstractComponentSpec)> {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, s)| (SpecId(i as u32), s))
    }

    /// Iterates over `(from, to, throughput)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (SpecId, SpecId, f64)> + '_ {
        self.edges.iter().copied()
    }

    /// Returns a copy of this graph with every edge's estimated stream
    /// throughput multiplied by `factor`.
    ///
    /// QoS degradation ladders use this: a session re-admitted at a
    /// reduced quality level streams proportionally less data, so its
    /// link-bandwidth demand shrinks with the level.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not in `(0, 1]` (a ladder construction
    /// error — scaling throughput *up* is not a degradation).
    pub fn scale_throughput(&self, factor: f64) -> AbstractServiceGraph {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "throughput scale factor must be in (0, 1], got {factor}"
        );
        AbstractServiceGraph {
            specs: self.specs.clone(),
            edges: self
                .edges
                .iter()
                .map(|&(from, to, tp)| (from, to, tp * factor))
                .collect(),
        }
    }

    /// Specs marked optional.
    pub fn optional_specs(&self) -> Vec<SpecId> {
        self.specs()
            .filter(|(_, s)| s.optional)
            .map(|(id, _)| id)
            .collect()
    }

    fn reaches(&self, start: SpecId, target: SpecId) -> bool {
        if start == target {
            return true;
        }
        let mut seen = vec![false; self.specs.len()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        while let Some(node) = stack.pop() {
            for &(f, t, _) in &self.edges {
                if f == node {
                    if t == target {
                        return true;
                    }
                    if !seen[t.index()] {
                        seen[t.index()] = true;
                        stack.push(t);
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_model::{QosDimension, QosValue};

    #[test]
    fn build_audio_on_demand_description() {
        let mut g = AbstractServiceGraph::new();
        let server = g.add_spec(AbstractComponentSpec::new("audio-server").with_desired_qos(
            QosVector::new().with(QosDimension::Format, QosValue::token("MPEG")),
        ));
        let player =
            g.add_spec(AbstractComponentSpec::new("audio-player").with_pin(PinHint::ClientDevice));
        let eq = g.add_spec(AbstractComponentSpec::new("equalizer").optional());
        g.add_edge(server, eq, 1.4).unwrap();
        g.add_edge(eq, player, 1.4).unwrap();
        assert_eq!(g.spec_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.optional_specs(), vec![eq]);
        assert_eq!(g.spec(player).unwrap().pin, Some(PinHint::ClientDevice));
        assert_eq!(g.spec(server).unwrap().desired_qos.dim(), 1);
    }

    #[test]
    fn rejects_cycles_and_duplicates() {
        let mut g = AbstractServiceGraph::new();
        let a = g.add_spec(AbstractComponentSpec::new("a"));
        let b = g.add_spec(AbstractComponentSpec::new("b"));
        g.add_edge(a, b, 1.0).unwrap();
        assert!(matches!(
            g.add_edge(b, a, 1.0),
            Err(GraphError::WouldCycle { .. })
        ));
        assert!(matches!(
            g.add_edge(a, b, 2.0),
            Err(GraphError::DuplicateEdge { .. })
        ));
        assert!(matches!(
            g.add_edge(a, a, 1.0),
            Err(GraphError::SelfLoop(_))
        ));
        assert!(matches!(
            g.add_edge(a, SpecId::from_index(9), 1.0),
            Err(GraphError::UnknownComponent(_))
        ));
        assert!(matches!(
            g.add_edge(a, b, f64::NAN),
            Err(GraphError::DuplicateEdge { .. }) | Err(GraphError::InvalidThroughput(_))
        ));
    }

    #[test]
    fn spec_id_display_and_index() {
        assert_eq!(SpecId::from_index(4).to_string(), "s4");
        assert_eq!(SpecId::from_index(4).index(), 4);
    }

    #[test]
    fn edges_iterator_order() {
        let mut g = AbstractServiceGraph::new();
        let a = g.add_spec(AbstractComponentSpec::new("a"));
        let b = g.add_spec(AbstractComponentSpec::new("b"));
        let c = g.add_spec(AbstractComponentSpec::new("c"));
        g.add_edge(a, b, 1.0).unwrap();
        g.add_edge(b, c, 2.0).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(a, b, 1.0), (b, c, 2.0)]);
    }
}
