//! Concrete service components.

use crate::ids::DeviceId;
use serde::{Deserialize, Serialize};
use std::fmt;
use ubiqos_model::{QosDimension, QosValue, QosVector, ResourceVector};

/// The structural role a component plays in a service graph.
///
/// Roles matter to the runtime (sources drive streams, sinks render them)
/// and to the distribution tier (sinks are typically pinned to the client
/// device, per Section 3.3: "the display service in the video-on-demand
/// application must run on the client device").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentRole {
    /// Produces data (media server, capture device).
    Source,
    /// Consumes/renders data (player, display).
    Sink,
    /// Transforms data in transit (filter, transcoder, synchronizer).
    Processor,
}

impl fmt::Display for ComponentRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentRole::Source => f.write_str("source"),
            ComponentRole::Sink => f.write_str("sink"),
            ComponentRole::Processor => f.write_str("processor"),
        }
    }
}

/// One autonomous service component (Section 2 of the paper).
///
/// A component performs an independent operation (transformation,
/// synchronization, filtering) on the stream passing through it. It
/// carries:
///
/// * `qos_in` — the QoS requirement on its input (`Q_in`);
/// * `qos_out` — the QoS of the output it is *currently configured* to
///   produce (`Q_out`);
/// * `capabilities` — for dynamically configurable components, the full
///   space of output QoS it *could* produce per dimension. The OC
///   algorithm adjusts `qos_out` within `capabilities` when correcting
///   inconsistencies;
/// * `passthrough` — dimensions where the component forwards its input
///   (e.g. a forwarding gateway's frame rate): when OC retunes such an
///   output dimension, the component's input requirement follows, which
///   produces the paper's upstream-cascading adjustment;
/// * `resources` — the end-system resource requirement vector `R`
///   (normalized to benchmark units);
/// * `pinned_to` — a device this component must run on, if any.
///
/// Construct components with [`ServiceComponent::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceComponent {
    name: String,
    role: ComponentRole,
    qos_in: QosVector,
    qos_out: QosVector,
    capabilities: QosVector,
    passthrough: Vec<QosDimension>,
    resources: ResourceVector,
    pinned_to: Option<DeviceId>,
}

impl ServiceComponent {
    /// Starts building a component with the given service-type name
    /// (e.g. `"audio-server"`).
    pub fn builder(name: impl Into<String>) -> ServiceComponentBuilder {
        ServiceComponentBuilder {
            component: ServiceComponent {
                name: name.into(),
                role: ComponentRole::Processor,
                qos_in: QosVector::new(),
                qos_out: QosVector::new(),
                capabilities: QosVector::new(),
                passthrough: Vec::new(),
                resources: ResourceVector::zero(2),
                pinned_to: None,
            },
        }
    }

    /// The service-type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The structural role.
    pub fn role(&self) -> ComponentRole {
        self.role
    }

    /// The input QoS requirement `Q_in`.
    pub fn qos_in(&self) -> &QosVector {
        &self.qos_in
    }

    /// The currently configured output QoS `Q_out`.
    pub fn qos_out(&self) -> &QosVector {
        &self.qos_out
    }

    /// The tunable output capability per dimension.
    ///
    /// Dimensions absent from the capability vector are *not* adjustable;
    /// their `qos_out` value is fixed.
    pub fn capabilities(&self) -> &QosVector {
        &self.capabilities
    }

    /// Dimensions whose input requirement follows the output setting.
    pub fn passthrough(&self) -> &[QosDimension] {
        &self.passthrough
    }

    /// The end-system resource requirement `R` in benchmark units.
    pub fn resources(&self) -> &ResourceVector {
        &self.resources
    }

    /// The device this component is pinned to, if any.
    pub fn pinned_to(&self) -> Option<DeviceId> {
        self.pinned_to
    }

    /// Pins or unpins the component.
    pub fn set_pinned_to(&mut self, device: Option<DeviceId>) {
        self.pinned_to = device;
    }

    /// Whether the output of dimension `dim` can be retuned.
    pub fn is_adjustable(&self, dim: &QosDimension) -> bool {
        self.capabilities.get(dim).is_some()
    }

    /// Retunes the output value of `dim` to `value`, propagating to the
    /// input requirement when `dim` is a passthrough dimension.
    ///
    /// The caller (the OC algorithm) is responsible for choosing a `value`
    /// inside the capability; this method enforces it.
    ///
    /// # Errors
    ///
    /// Returns the offending capability when `value` is outside it, or
    /// `None`-capability when the dimension is not adjustable.
    pub fn adjust_output(
        &mut self,
        dim: &QosDimension,
        value: QosValue,
    ) -> Result<(), AdjustError> {
        match self.capabilities.get(dim) {
            None => Err(AdjustError::NotAdjustable { dim: dim.clone() }),
            Some(cap) if !value.satisfies(cap) => Err(AdjustError::OutsideCapability {
                dim: dim.clone(),
                value,
                capability: cap.clone(),
            }),
            Some(_) => {
                self.qos_out.set(dim.clone(), value.clone());
                if self.passthrough.contains(dim) {
                    self.qos_in.set(dim.clone(), value);
                }
                Ok(())
            }
        }
    }

    /// Directly overwrites the configured output QoS vector.
    ///
    /// Used by discovery when instantiating a concrete component at a
    /// specific initial operating point; unlike [`Self::adjust_output`] it
    /// performs no capability checking.
    pub fn set_qos_out(&mut self, qos: QosVector) {
        self.qos_out = qos;
    }

    /// Directly overwrites the input QoS requirement vector.
    pub fn set_qos_in(&mut self, qos: QosVector) {
        self.qos_in = qos;
    }

    /// Scales every resource demand dimension by `factor`.
    ///
    /// Used by the runtime's degradation ladder: a component streaming at
    /// rung factor `f` processes proportionally less data, so it charges
    /// `f` times its full-quality resource demand.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is negative or non-finite.
    pub fn scale_resources(&mut self, factor: f64) {
        let factors = vec![factor; self.resources.dim()];
        self.resources = self
            .resources
            .scaled_by(&factors)
            .expect("uniform non-negative factor matches dimension");
    }
}

impl fmt::Display for ServiceComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.role)
    }
}

/// Error from [`ServiceComponent::adjust_output`].
#[derive(Debug, Clone, PartialEq)]
pub enum AdjustError {
    /// The dimension has no declared capability.
    NotAdjustable {
        /// The dimension that was requested.
        dim: QosDimension,
    },
    /// The requested value falls outside the declared capability.
    OutsideCapability {
        /// The dimension that was requested.
        dim: QosDimension,
        /// The requested value.
        value: QosValue,
        /// The declared capability it violates.
        capability: QosValue,
    },
}

impl fmt::Display for AdjustError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdjustError::NotAdjustable { dim } => {
                write!(f, "output dimension {dim} is not adjustable")
            }
            AdjustError::OutsideCapability {
                dim,
                value,
                capability,
            } => write!(
                f,
                "value {value} for {dim} is outside capability {capability}"
            ),
        }
    }
}

impl std::error::Error for AdjustError {}

/// Builder for [`ServiceComponent`] (see
/// [`ServiceComponent::builder`]).
#[derive(Debug, Clone)]
pub struct ServiceComponentBuilder {
    component: ServiceComponent,
}

impl ServiceComponentBuilder {
    /// Sets the structural role (default: [`ComponentRole::Processor`]).
    pub fn role(mut self, role: ComponentRole) -> Self {
        self.component.role = role;
        self
    }

    /// Sets the input QoS requirement `Q_in`.
    pub fn qos_in(mut self, qos: QosVector) -> Self {
        self.component.qos_in = qos;
        self
    }

    /// Sets the configured output QoS `Q_out`.
    pub fn qos_out(mut self, qos: QosVector) -> Self {
        self.component.qos_out = qos;
        self
    }

    /// Declares a tunable output capability for one dimension.
    pub fn capability(mut self, dim: QosDimension, value: QosValue) -> Self {
        self.component.capabilities.set(dim, value);
        self
    }

    /// Declares a passthrough dimension (input requirement follows output).
    pub fn passthrough(mut self, dim: QosDimension) -> Self {
        if !self.component.passthrough.contains(&dim) {
            self.component.passthrough.push(dim);
        }
        self
    }

    /// Sets the resource requirement vector (default: zero `[mem, cpu]`).
    pub fn resources(mut self, resources: ResourceVector) -> Self {
        self.component.resources = resources;
        self
    }

    /// Pins the component to a device.
    pub fn pinned_to(mut self, device: DeviceId) -> Self {
        self.component.pinned_to = Some(device);
        self
    }

    /// Finishes building the component.
    pub fn build(self) -> ServiceComponent {
        self.component
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_model::QosDimension as D;

    fn adjustable_player() -> ServiceComponent {
        ServiceComponent::builder("player")
            .role(ComponentRole::Sink)
            .qos_in(
                QosVector::new()
                    .with(D::Format, QosValue::token("WAV"))
                    .with(D::FrameRate, QosValue::range(10.0, 40.0)),
            )
            .qos_out(QosVector::new().with(D::FrameRate, QosValue::exact(40.0)))
            .capability(D::FrameRate, QosValue::range(5.0, 40.0))
            .passthrough(D::FrameRate)
            .resources(ResourceVector::mem_cpu(8.0, 15.0))
            .build()
    }

    #[test]
    fn builder_sets_all_fields() {
        let c = adjustable_player();
        assert_eq!(c.name(), "player");
        assert_eq!(c.role(), ComponentRole::Sink);
        assert_eq!(c.resources().amounts(), &[8.0, 15.0]);
        assert!(c.is_adjustable(&D::FrameRate));
        assert!(!c.is_adjustable(&D::Format));
        assert_eq!(c.pinned_to(), None);
        assert_eq!(c.to_string(), "player (sink)");
    }

    #[test]
    fn adjust_within_capability_updates_output_and_passthrough_input() {
        let mut c = adjustable_player();
        c.adjust_output(&D::FrameRate, QosValue::exact(20.0))
            .unwrap();
        assert_eq!(c.qos_out().get(&D::FrameRate), Some(&QosValue::exact(20.0)));
        // Passthrough: the input requirement now follows the output.
        assert_eq!(c.qos_in().get(&D::FrameRate), Some(&QosValue::exact(20.0)));
        // Non-passthrough dimensions of the input are untouched.
        assert_eq!(c.qos_in().get(&D::Format), Some(&QosValue::token("WAV")));
    }

    #[test]
    fn adjust_outside_capability_fails() {
        let mut c = adjustable_player();
        let err = c
            .adjust_output(&D::FrameRate, QosValue::exact(60.0))
            .unwrap_err();
        assert!(matches!(err, AdjustError::OutsideCapability { .. }));
        // State unchanged on failure.
        assert_eq!(c.qos_out().get(&D::FrameRate), Some(&QosValue::exact(40.0)));
    }

    #[test]
    fn adjust_nonadjustable_dimension_fails() {
        let mut c = adjustable_player();
        let err = c
            .adjust_output(&D::Format, QosValue::token("MPEG"))
            .unwrap_err();
        assert_eq!(err, AdjustError::NotAdjustable { dim: D::Format });
        assert_eq!(err.to_string(), "output dimension format is not adjustable");
    }

    #[test]
    fn adjust_non_passthrough_leaves_input_alone() {
        let mut c = ServiceComponent::builder("scaler")
            .qos_in(QosVector::new().with(D::Resolution, QosValue::exact(1e6)))
            .qos_out(QosVector::new().with(D::Resolution, QosValue::exact(1e6)))
            .capability(D::Resolution, QosValue::range(1e5, 2e6))
            .build();
        c.adjust_output(&D::Resolution, QosValue::exact(5e5))
            .unwrap();
        assert_eq!(c.qos_in().get(&D::Resolution), Some(&QosValue::exact(1e6)));
        assert_eq!(c.qos_out().get(&D::Resolution), Some(&QosValue::exact(5e5)));
    }

    #[test]
    fn pinning() {
        let mut c = adjustable_player();
        c.set_pinned_to(Some(DeviceId::from_index(2)));
        assert_eq!(c.pinned_to(), Some(DeviceId::from_index(2)));
        c.set_pinned_to(None);
        assert_eq!(c.pinned_to(), None);
    }

    #[test]
    fn passthrough_dedup() {
        let c = ServiceComponent::builder("x")
            .passthrough(D::FrameRate)
            .passthrough(D::FrameRate)
            .build();
        assert_eq!(c.passthrough().len(), 1);
    }
}
