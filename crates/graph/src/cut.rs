//! k-cuts of a service graph (Definition 3.3) and the aggregate quantities
//! the distribution tier derives from them.

use crate::error::GraphError;
use crate::graph::{Edge, ServiceGraph};
use crate::ids::{ComponentId, DeviceId};
use serde::{Deserialize, Serialize};
use ubiqos_model::{ModelError, ResourceVector};

/// A k-cut: a partitioning of the graph's components into `k` parts
/// (Definition 3.3), where part `j` corresponds to device `j`.
///
/// An edge *belongs to the cut* when its endpoints lie in different parts.
/// The distribution tier evaluates a cut against concrete devices: part
/// resource sums against availabilities (Definition 3.4) and inter-part
/// throughput sums `T_{i,j}` against available bandwidths, then scores it
/// with cost aggregation (Definition 3.5).
///
/// # Example
///
/// ```
/// use ubiqos_graph::{Cut, ServiceComponent, ServiceGraph};
/// let mut g = ServiceGraph::new();
/// let a = g.add_component(ServiceComponent::builder("a").build());
/// let b = g.add_component(ServiceComponent::builder("b").build());
/// g.add_edge(a, b, 3.0)?;
/// let cut = Cut::from_assignment(&g, vec![0, 1], 2).unwrap();
/// assert_eq!(cut.cut_edges(&g).len(), 1);
/// # Ok::<(), ubiqos_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cut {
    /// `assignment[c] = j` places component `c` on device/part `j`.
    assignment: Vec<u32>,
    /// The number of parts `k`.
    parts: u32,
}

impl Cut {
    /// Builds a cut from a per-component part assignment.
    ///
    /// `assignment.len()` must equal the graph's component count and every
    /// entry must be `< parts`. Parts are allowed to be empty (a placement
    /// that leaves a device idle is still a valid placement); use
    /// [`Cut::is_proper`] to test Definition 3.3's non-emptiness.
    pub fn from_assignment(
        graph: &ServiceGraph,
        assignment: Vec<usize>,
        parts: usize,
    ) -> Option<Cut> {
        if assignment.len() != graph.component_count() || parts == 0 {
            return None;
        }
        if assignment.iter().any(|&p| p >= parts) {
            return None;
        }
        Some(Cut {
            assignment: assignment.into_iter().map(|p| p as u32).collect(),
            parts: parts as u32,
        })
    }

    /// The number of parts `k`.
    pub fn parts(&self) -> usize {
        self.parts as usize
    }

    /// The number of assigned components.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the cut covers no components.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The part (device index) a component is assigned to.
    pub fn part_of(&self, component: ComponentId) -> Option<usize> {
        self.assignment.get(component.index()).map(|&p| p as usize)
    }

    /// The device a component is assigned to.
    pub fn device_of(&self, component: ComponentId) -> Option<DeviceId> {
        self.part_of(component).map(DeviceId::from_index)
    }

    /// The per-component assignment as raw part indices.
    pub fn assignment(&self) -> Vec<usize> {
        self.assignment.iter().map(|&p| p as usize).collect()
    }

    /// Components assigned to part `j`.
    pub fn part_members(&self, part: usize) -> Vec<ComponentId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p as usize == part)
            .map(|(i, _)| ComponentId::from_index(i))
            .collect()
    }

    /// Definition 3.3 strictness: every part is non-empty.
    pub fn is_proper(&self) -> bool {
        let mut seen = vec![false; self.parts()];
        for &p in &self.assignment {
            seen[p as usize] = true;
        }
        seen.iter().all(|&s| s)
    }

    /// The edges belonging to the cut (endpoints in different parts).
    pub fn cut_edges(&self, graph: &ServiceGraph) -> Vec<Edge> {
        graph
            .edges()
            .filter(|e| self.assignment[e.from.index()] != self.assignment[e.to.index()])
            .collect()
    }

    /// The total throughput crossing the cut (the classical multiway-cut
    /// objective; Definition 3.5's network term before per-link
    /// normalization).
    pub fn cut_throughput(&self, graph: &ServiceGraph) -> f64 {
        // `+ 0.0` normalizes the empty sum's negative zero.
        self.cut_edges(graph)
            .iter()
            .map(|e| e.throughput)
            .sum::<f64>()
            + 0.0
    }

    /// Sums the resource requirement vectors of part `j`'s components
    /// (the left side of Definition 3.4's first condition).
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError::DimensionMismatch`] when components carry
    /// vectors of different dimension.
    pub fn part_resource_sum(
        &self,
        graph: &ServiceGraph,
        part: usize,
    ) -> Result<ResourceVector, ModelError> {
        let mut acc: Option<ResourceVector> = None;
        for id in self.part_members(part) {
            let r = graph
                .component(id)
                .expect("cut assignment indexes valid components")
                .resources();
            acc = Some(match acc {
                None => r.clone(),
                Some(a) => a.checked_add(r)?,
            });
        }
        Ok(acc.unwrap_or_else(|| ResourceVector::zero(self.default_dim(graph))))
    }

    /// The inter-part throughput matrix `T`, where `T[i][j]` sums
    /// `c(u, v)` over edges with `u ∈ V_i, v ∈ V_j`, `i ≠ j`
    /// (Definition 3.5). Diagonal entries are zero.
    pub fn inter_part_throughput(&self, graph: &ServiceGraph) -> Vec<Vec<f64>> {
        let k = self.parts();
        let mut t = vec![vec![0.0; k]; k];
        for e in graph.edges() {
            let i = self.assignment[e.from.index()] as usize;
            let j = self.assignment[e.to.index()] as usize;
            if i != j {
                t[i][j] += e.throughput;
            }
        }
        t
    }

    /// Validates that the cut matches the graph and respects every
    /// component pin.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownComponent`] when the cut's length does
    /// not match the graph (the offending id is the first out-of-range
    /// one).
    pub fn respects_pins(&self, graph: &ServiceGraph) -> Result<bool, GraphError> {
        if self.assignment.len() != graph.component_count() {
            return Err(GraphError::UnknownComponent(ComponentId::from_index(
                self.assignment.len().min(graph.component_count()),
            )));
        }
        for (id, c) in graph.components() {
            if let Some(pin) = c.pinned_to() {
                if self.part_of(id) != Some(pin.index()) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    fn default_dim(&self, graph: &ServiceGraph) -> usize {
        graph
            .components()
            .next()
            .map_or(2, |(_, c)| c.resources().dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{ComponentRole, ServiceComponent};

    fn node(name: &str, mem: f64, cpu: f64) -> ServiceComponent {
        ServiceComponent::builder(name)
            .role(ComponentRole::Processor)
            .resources(ResourceVector::mem_cpu(mem, cpu))
            .build()
    }

    /// The paper's Figure 2 skeleton: 9 nodes, 3-cut.
    fn figure2() -> (ServiceGraph, Vec<ComponentId>) {
        let mut g = ServiceGraph::new();
        let n: Vec<ComponentId> = (1..=9)
            .map(|i| g.add_component(node(&format!("{i}"), 10.0, 5.0)))
            .collect();
        let idx = |i: usize| n[i - 1];
        for (u, v) in [
            (1, 2),
            (1, 8),
            (5, 2),
            (5, 8),
            (5, 7),
            (9, 8),
            (2, 7),
            (8, 7),
            (8, 6),
            (3, 1),
            (4, 5),
            (9, 4),
        ] {
            g.add_edge(idx(u), idx(v), 1.0).unwrap();
        }
        (g, n)
    }

    #[test]
    fn figure2_three_cut_edges() {
        let (g, n) = figure2();
        // Partition: V1 = {1,3,4,5,9}, V2 = {2,8}, V3 = {6,7} — the
        // partition that yields exactly the cut set the paper lists.
        let part = |i: usize| match i {
            1 | 3 | 4 | 5 | 9 => 0,
            2 | 8 => 1,
            _ => 2,
        };
        let assignment: Vec<usize> = (1..=9).map(part).collect();
        let cut = Cut::from_assignment(&g, assignment, 3).unwrap();
        assert!(cut.is_proper());
        // The paper lists the cut edges: e1,2 e1,8 e5,2 e5,8 e5,7 e9,8 e2,7 e8,7 e8,6.
        let cut_edges = cut.cut_edges(&g);
        assert_eq!(cut_edges.len(), 9);
        let has = |u: usize, v: usize| {
            cut_edges
                .iter()
                .any(|e| e.from == n[u - 1] && e.to == n[v - 1])
        };
        for (u, v) in [
            (1, 2),
            (1, 8),
            (5, 2),
            (5, 8),
            (5, 7),
            (9, 8),
            (2, 7),
            (8, 7),
            (8, 6),
        ] {
            assert!(has(u, v), "edge {u}->{v} should belong to the 3-cut");
        }
        assert!(!has(3, 1), "intra-part edge is not in the cut");
        assert!((cut.cut_throughput(&g) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn from_assignment_validation() {
        let (g, _) = figure2();
        assert!(Cut::from_assignment(&g, vec![0; 9], 1).is_some());
        assert!(
            Cut::from_assignment(&g, vec![0; 8], 2).is_none(),
            "wrong length"
        );
        assert!(
            Cut::from_assignment(&g, vec![2; 9], 2).is_none(),
            "part out of range"
        );
        assert!(
            Cut::from_assignment(&g, vec![0; 9], 0).is_none(),
            "zero parts"
        );
    }

    #[test]
    fn proper_vs_improper() {
        let (g, _) = figure2();
        let all_on_one = Cut::from_assignment(&g, vec![0; 9], 3).unwrap();
        assert!(!all_on_one.is_proper());
        assert!(all_on_one.cut_edges(&g).is_empty());
        assert_eq!(all_on_one.part_members(1), Vec::<ComponentId>::new());
    }

    #[test]
    fn part_resource_sums() {
        let (g, _) = figure2();
        let cut = Cut::from_assignment(&g, vec![0, 0, 0, 1, 1, 1, 2, 2, 2], 3).unwrap();
        let s0 = cut.part_resource_sum(&g, 0).unwrap();
        assert_eq!(s0.amounts(), &[30.0, 15.0]);
        let s2 = cut.part_resource_sum(&g, 2).unwrap();
        assert_eq!(s2.amounts(), &[30.0, 15.0]);
    }

    #[test]
    fn empty_part_sums_to_zero() {
        let (g, _) = figure2();
        let cut = Cut::from_assignment(&g, vec![0; 9], 2).unwrap();
        let s1 = cut.part_resource_sum(&g, 1).unwrap();
        assert!(s1.is_zero());
        assert_eq!(s1.dim(), 2);
    }

    #[test]
    fn inter_part_throughput_matrix() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(node("a", 1.0, 1.0));
        let b = g.add_component(node("b", 1.0, 1.0));
        let c = g.add_component(node("c", 1.0, 1.0));
        g.add_edge(a, b, 2.0).unwrap();
        g.add_edge(a, c, 3.0).unwrap();
        g.add_edge(b, c, 5.0).unwrap();
        let cut = Cut::from_assignment(&g, vec![0, 1, 1], 2).unwrap();
        let t = cut.inter_part_throughput(&g);
        assert_eq!(t[0][1], 5.0, "a->b (2) + a->c (3)");
        assert_eq!(t[1][0], 0.0, "direction matters");
        assert_eq!(t[0][0], 0.0);
        assert_eq!(t[1][1], 0.0, "b->c is intra-part");
    }

    #[test]
    fn pin_checking() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(node("a", 1.0, 1.0));
        let b = g.add_component(
            ServiceComponent::builder("display")
                .pinned_to(DeviceId::from_index(1))
                .build(),
        );
        g.add_edge(a, b, 1.0).unwrap();
        let good = Cut::from_assignment(&g, vec![0, 1], 2).unwrap();
        let bad = Cut::from_assignment(&g, vec![0, 0], 2).unwrap();
        assert!(good.respects_pins(&g).unwrap());
        assert!(!bad.respects_pins(&g).unwrap());
    }

    #[test]
    fn pin_check_rejects_mismatched_cut() {
        let (g, _) = figure2();
        let other = {
            let mut g2 = ServiceGraph::new();
            g2.add_component(node("solo", 1.0, 1.0));
            Cut::from_assignment(&g2, vec![0], 1).unwrap()
        };
        assert!(other.respects_pins(&g).is_err());
    }

    #[test]
    fn accessors() {
        let (g, n) = figure2();
        let cut = Cut::from_assignment(&g, vec![0, 1, 2, 0, 1, 2, 0, 1, 2], 3).unwrap();
        assert_eq!(cut.parts(), 3);
        assert_eq!(cut.len(), 9);
        assert!(!cut.is_empty());
        assert_eq!(cut.part_of(n[0]), Some(0));
        assert_eq!(cut.device_of(n[1]), Some(DeviceId::from_index(1)));
        assert_eq!(cut.part_of(ComponentId::from_index(99)), None);
        assert_eq!(cut.assignment().len(), 9);
    }
}
