//! Graphviz DOT export for service graphs.
//!
//! Handy for debugging composed graphs and for illustrating cuts: parts of
//! a [`crate::Cut`] render as colored clusters.

use crate::cut::Cut;
use crate::graph::ServiceGraph;
use std::fmt::Write as _;

/// Renders a service graph in Graphviz DOT format.
///
/// # Example
///
/// ```
/// use ubiqos_graph::{dot, ServiceComponent, ServiceGraph};
/// let mut g = ServiceGraph::new();
/// let a = g.add_component(ServiceComponent::builder("server").build());
/// let b = g.add_component(ServiceComponent::builder("player").build());
/// g.add_edge(a, b, 1.4)?;
/// let rendered = dot::to_dot(&g);
/// assert!(rendered.contains("digraph"));
/// assert!(rendered.contains("server"));
/// # Ok::<(), ubiqos_graph::GraphError>(())
/// ```
pub fn to_dot(graph: &ServiceGraph) -> String {
    let mut out = String::from("digraph service_graph {\n  rankdir=LR;\n");
    for (id, c) in graph.components() {
        let _ = writeln!(
            out,
            "  {} [label=\"{}\\n{}\"];",
            id.index(),
            escape(c.name()),
            c.role()
        );
    }
    render_edges(graph, &mut out);
    out.push_str("}\n");
    out
}

/// Renders a service graph with a cut overlaid as device clusters.
pub fn to_dot_with_cut(graph: &ServiceGraph, cut: &Cut) -> String {
    let mut out = String::from("digraph service_distribution {\n  rankdir=LR;\n");
    for part in 0..cut.parts() {
        let members = cut.part_members(part);
        let _ = writeln!(out, "  subgraph cluster_{part} {{");
        let _ = writeln!(out, "    label=\"device {part}\";");
        for id in members {
            if let Ok(c) = graph.component(id) {
                let _ = writeln!(out, "    {} [label=\"{}\"];", id.index(), escape(c.name()));
            }
        }
        out.push_str("  }\n");
    }
    render_edges(graph, &mut out);
    out.push_str("}\n");
    out
}

fn render_edges(graph: &ServiceGraph, out: &mut String) {
    for e in graph.edges() {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{:.1}\"];",
            e.from.index(),
            e.to.index(),
            e.throughput
        );
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ServiceComponent;

    #[test]
    fn plain_dot_contains_nodes_and_edges() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(ServiceComponent::builder("a\"quote").build());
        let b = g.add_component(ServiceComponent::builder("b").build());
        g.add_edge(a, b, 2.5).unwrap();
        let d = to_dot(&g);
        assert!(d.starts_with("digraph"));
        assert!(d.contains("a\\\"quote"), "quotes are escaped");
        assert!(d.contains("0 -> 1"));
        assert!(d.contains("2.5"));
        assert!(d.ends_with("}\n"));
    }

    #[test]
    fn cut_dot_renders_clusters() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(ServiceComponent::builder("a").build());
        let b = g.add_component(ServiceComponent::builder("b").build());
        g.add_edge(a, b, 1.0).unwrap();
        let cut = Cut::from_assignment(&g, vec![0, 1], 2).unwrap();
        let d = to_dot_with_cut(&g, &cut);
        assert!(d.contains("cluster_0"));
        assert!(d.contains("cluster_1"));
        assert!(d.contains("device 0"));
        assert!(d.contains("0 -> 1"));
    }
}
