//! Errors for service-graph operations.

use crate::ids::ComponentId;
use std::error::Error;
use std::fmt;

/// Errors produced by [`crate::ServiceGraph`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An operation referenced a component id not in this graph.
    UnknownComponent(ComponentId),
    /// An edge would connect a component to itself.
    SelfLoop(ComponentId),
    /// The edge already exists.
    DuplicateEdge {
        /// Tail of the duplicate edge.
        from: ComponentId,
        /// Head of the duplicate edge.
        to: ComponentId,
    },
    /// Adding this edge would create a directed cycle.
    WouldCycle {
        /// Tail of the offending edge.
        from: ComponentId,
        /// Head of the offending edge.
        to: ComponentId,
    },
    /// The graph contains a cycle (detected during a whole-graph check).
    CycleDetected,
    /// An edge throughput was negative or non-finite.
    InvalidThroughput(f64),
    /// The referenced edge does not exist.
    UnknownEdge {
        /// Tail of the missing edge.
        from: ComponentId,
        /// Head of the missing edge.
        to: ComponentId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownComponent(id) => write!(f, "unknown component {id}"),
            GraphError::SelfLoop(id) => write!(f, "self-loop on component {id}"),
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "edge {from} -> {to} already exists")
            }
            GraphError::WouldCycle { from, to } => {
                write!(f, "edge {from} -> {to} would create a cycle")
            }
            GraphError::CycleDetected => write!(f, "service graph contains a cycle"),
            GraphError::InvalidThroughput(v) => {
                write!(
                    f,
                    "invalid edge throughput {v}: must be finite and non-negative"
                )
            }
            GraphError::UnknownEdge { from, to } => {
                write!(f, "no edge {from} -> {to}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ComponentId;

    #[test]
    fn display_nonempty() {
        let c0 = ComponentId::from_index(0);
        let c1 = ComponentId::from_index(1);
        for e in [
            GraphError::UnknownComponent(c0),
            GraphError::SelfLoop(c0),
            GraphError::DuplicateEdge { from: c0, to: c1 },
            GraphError::WouldCycle { from: c0, to: c1 },
            GraphError::CycleDetected,
            GraphError::InvalidThroughput(-1.0),
            GraphError::UnknownEdge { from: c0, to: c1 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
