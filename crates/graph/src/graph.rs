//! The service graph: a DAG of components with weighted edges.

use crate::component::ServiceComponent;
use crate::error::GraphError;
use crate::ids::ComponentId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One directed edge of a service graph with its communication throughput
/// `c(u, v)` (paper Section 3.3; units are Mbps throughout this
/// reproduction).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// The upstream component.
    pub from: ComponentId,
    /// The downstream component.
    pub to: ComponentId,
    /// Communication throughput required on this edge, in Mbps.
    pub throughput: f64,
}

/// A directed acyclic graph of service components (Section 2).
///
/// The graph enforces acyclicity *incrementally*: [`ServiceGraph::add_edge`]
/// rejects edges that would close a cycle, so a `ServiceGraph` is a DAG by
/// construction. Components are identified by dense [`ComponentId`]s;
/// removing components is not supported (the configuration model only ever
/// *adds* correction components such as transcoders), which keeps ids
/// stable for the lifetime of a graph.
///
/// # Example
///
/// ```
/// use ubiqos_graph::{ServiceComponent, ServiceGraph};
/// let mut g = ServiceGraph::new();
/// let a = g.add_component(ServiceComponent::builder("a").build());
/// let b = g.add_component(ServiceComponent::builder("b").build());
/// g.add_edge(a, b, 2.0)?;
/// assert!(g.add_edge(b, a, 1.0).is_err()); // would cycle
/// # Ok::<(), ubiqos_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceGraph {
    components: Vec<ServiceComponent>,
    /// Edge throughputs keyed by `(from, to)`.
    #[serde(with = "edge_map_serde")]
    edges: BTreeMap<(ComponentId, ComponentId), f64>,
    /// Outgoing adjacency, parallel to `components`.
    out_adj: Vec<Vec<ComponentId>>,
    /// Incoming adjacency, parallel to `components`.
    in_adj: Vec<Vec<ComponentId>>,
}

impl ServiceGraph {
    /// Creates an empty service graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component, returning its id.
    pub fn add_component(&mut self, component: ServiceComponent) -> ComponentId {
        let id = ComponentId(self.components.len() as u32);
        self.components.push(component);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds a directed edge with the given throughput (Mbps).
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownComponent`] — either endpoint is not in the
    ///   graph;
    /// * [`GraphError::SelfLoop`] — `from == to`;
    /// * [`GraphError::DuplicateEdge`] — the edge already exists;
    /// * [`GraphError::WouldCycle`] — the edge would close a directed
    ///   cycle;
    /// * [`GraphError::InvalidThroughput`] — `throughput` is negative or
    ///   non-finite.
    pub fn add_edge(
        &mut self,
        from: ComponentId,
        to: ComponentId,
        throughput: f64,
    ) -> Result<(), GraphError> {
        self.check_id(from)?;
        self.check_id(to)?;
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        if !throughput.is_finite() || throughput < 0.0 {
            return Err(GraphError::InvalidThroughput(throughput));
        }
        if self.edges.contains_key(&(from, to)) {
            return Err(GraphError::DuplicateEdge { from, to });
        }
        if self.is_reachable(to, from) {
            return Err(GraphError::WouldCycle { from, to });
        }
        self.edges.insert((from, to), throughput);
        self.out_adj[from.index()].push(to);
        self.in_adj[to.index()].push(from);
        Ok(())
    }

    /// Removes an edge, returning its throughput.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownEdge`] when the edge does not exist.
    pub fn remove_edge(&mut self, from: ComponentId, to: ComponentId) -> Result<f64, GraphError> {
        match self.edges.remove(&(from, to)) {
            Some(tp) => {
                self.out_adj[from.index()].retain(|&c| c != to);
                self.in_adj[to.index()].retain(|&c| c != from);
                Ok(tp)
            }
            None => Err(GraphError::UnknownEdge { from, to }),
        }
    }

    /// Splices `component` into the middle of an existing edge
    /// `from -> to`, producing `from -> component -> to`.
    ///
    /// This is the graph operation behind the OC algorithm's transcoder and
    /// buffer insertion. `in_throughput` is the throughput of the new
    /// upstream edge; `out_throughput` of the new downstream edge (a
    /// transcoder generally changes the stream's bandwidth).
    ///
    /// Returns the id of the inserted component.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownEdge`] when `from -> to` does not
    /// exist, or [`GraphError::InvalidThroughput`] for bad throughputs. The
    /// graph is unchanged on error.
    pub fn split_edge(
        &mut self,
        from: ComponentId,
        to: ComponentId,
        component: ServiceComponent,
        in_throughput: f64,
        out_throughput: f64,
    ) -> Result<ComponentId, GraphError> {
        if !self.edges.contains_key(&(from, to)) {
            return Err(GraphError::UnknownEdge { from, to });
        }
        for tp in [in_throughput, out_throughput] {
            if !tp.is_finite() || tp < 0.0 {
                return Err(GraphError::InvalidThroughput(tp));
            }
        }
        self.remove_edge(from, to)?;
        let mid = self.add_component(component);
        // These inserts cannot fail: `mid` is fresh, so no duplicate edge
        // or cycle can arise.
        self.add_edge(from, mid, in_throughput)
            .expect("edge to fresh node");
        self.add_edge(mid, to, out_throughput)
            .expect("edge from fresh node");
        Ok(mid)
    }

    /// The number of components `V`.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// The number of edges `E`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Borrows a component.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownComponent`] for ids from another graph.
    pub fn component(&self, id: ComponentId) -> Result<&ServiceComponent, GraphError> {
        self.components
            .get(id.index())
            .ok_or(GraphError::UnknownComponent(id))
    }

    /// Mutably borrows a component.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownComponent`] for ids from another graph.
    pub fn component_mut(&mut self, id: ComponentId) -> Result<&mut ServiceComponent, GraphError> {
        self.components
            .get_mut(id.index())
            .ok_or(GraphError::UnknownComponent(id))
    }

    /// Iterates over `(id, component)` pairs in id order.
    pub fn components(&self) -> impl Iterator<Item = (ComponentId, &ServiceComponent)> {
        self.components
            .iter()
            .enumerate()
            .map(|(i, c)| (ComponentId(i as u32), c))
    }

    /// All component ids in id order.
    pub fn component_ids(&self) -> impl Iterator<Item = ComponentId> + '_ {
        (0..self.components.len()).map(|i| ComponentId(i as u32))
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().map(|(&(from, to), &throughput)| Edge {
            from,
            to,
            throughput,
        })
    }

    /// The throughput of edge `from -> to`, if it exists.
    pub fn edge_throughput(&self, from: ComponentId, to: ComponentId) -> Option<f64> {
        self.edges.get(&(from, to)).copied()
    }

    /// Direct successors of a component.
    pub fn successors(&self, id: ComponentId) -> &[ComponentId] {
        self.out_adj.get(id.index()).map_or(&[], Vec::as_slice)
    }

    /// Direct predecessors of a component.
    pub fn predecessors(&self, id: ComponentId) -> &[ComponentId] {
        self.in_adj.get(id.index()).map_or(&[], Vec::as_slice)
    }

    /// Components with no incoming edges (stream sources).
    pub fn roots(&self) -> Vec<ComponentId> {
        self.component_ids()
            .filter(|id| self.predecessors(*id).is_empty())
            .collect()
    }

    /// Components with no outgoing edges (stream sinks).
    pub fn leaves(&self) -> Vec<ComponentId> {
        self.component_ids()
            .filter(|id| self.successors(*id).is_empty())
            .collect()
    }

    /// The sum of all edge throughputs (an upper bound on any cut's
    /// bandwidth demand).
    pub fn total_throughput(&self) -> f64 {
        self.edges.values().sum()
    }

    /// Whether `target` is reachable from `start` along directed edges.
    pub fn is_reachable(&self, start: ComponentId, target: ComponentId) -> bool {
        if start == target {
            return true;
        }
        let mut seen = vec![false; self.components.len()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        while let Some(node) = stack.pop() {
            for &next in self.successors(node) {
                if next == target {
                    return true;
                }
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    stack.push(next);
                }
            }
        }
        false
    }

    fn check_id(&self, id: ComponentId) -> Result<(), GraphError> {
        if id.index() < self.components.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownComponent(id))
        }
    }
}

/// Serializes the tuple-keyed edge map as a list of `(from, to,
/// throughput)` triples, since JSON maps require string keys.
mod edge_map_serde {
    use super::ComponentId;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    pub fn serialize<S: Serializer>(
        edges: &BTreeMap<(ComponentId, ComponentId), f64>,
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        let triples: Vec<(ComponentId, ComponentId, f64)> = edges
            .iter()
            .map(|(&(from, to), &tp)| (from, to, tp))
            .collect();
        triples.serialize(serializer)
    }

    pub fn deserialize<D: Deserializer>(
        deserializer: D,
    ) -> Result<BTreeMap<(ComponentId, ComponentId), f64>, D::Error> {
        let triples = Vec::<(ComponentId, ComponentId, f64)>::deserialize(deserializer)?;
        Ok(triples
            .into_iter()
            .map(|(from, to, tp)| ((from, to), tp))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ServiceComponent;

    fn node(name: &str) -> ServiceComponent {
        ServiceComponent::builder(name).build()
    }

    fn diamond() -> (ServiceGraph, [ComponentId; 4]) {
        // a -> b -> d, a -> c -> d
        let mut g = ServiceGraph::new();
        let a = g.add_component(node("a"));
        let b = g.add_component(node("b"));
        let c = g.add_component(node("c"));
        let d = g.add_component(node("d"));
        g.add_edge(a, b, 1.0).unwrap();
        g.add_edge(a, c, 2.0).unwrap();
        g.add_edge(b, d, 3.0).unwrap();
        g.add_edge(c, d, 4.0).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn build_and_query() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.component_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.successors(a), &[b, c]);
        assert_eq!(g.predecessors(d), &[b, c]);
        assert_eq!(g.roots(), vec![a]);
        assert_eq!(g.leaves(), vec![d]);
        assert_eq!(g.edge_throughput(c, d), Some(4.0));
        assert_eq!(g.edge_throughput(d, c), None);
        assert!((g.total_throughput() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_cycles_self_loops_duplicates() {
        let (mut g, [a, b, _, d]) = diamond();
        assert_eq!(
            g.add_edge(d, a, 1.0),
            Err(GraphError::WouldCycle { from: d, to: a })
        );
        assert_eq!(g.add_edge(a, a, 1.0), Err(GraphError::SelfLoop(a)));
        assert_eq!(
            g.add_edge(a, b, 9.0),
            Err(GraphError::DuplicateEdge { from: a, to: b })
        );
        assert_eq!(g.edge_count(), 4, "graph unchanged after rejections");
    }

    #[test]
    fn rejects_bad_throughput_and_unknown_ids() {
        let (mut g, [a, b, ..]) = diamond();
        let ghost = ComponentId::from_index(99);
        assert_eq!(
            g.add_edge(a, ghost, 1.0),
            Err(GraphError::UnknownComponent(ghost))
        );
        assert_eq!(
            g.remove_edge(b, a),
            Err(GraphError::UnknownEdge { from: b, to: a })
        );
        let (mut g2, [a2, _, c2, _]) = diamond();
        assert!(matches!(
            g2.add_edge(c2, a2, f64::NAN),
            Err(GraphError::WouldCycle { .. }) | Err(GraphError::InvalidThroughput(_))
        ));
        assert!(matches!(
            g.add_edge(b, ComponentId::from_index(3), -2.0),
            Err(GraphError::InvalidThroughput(_))
        ));
    }

    #[test]
    fn remove_edge_updates_adjacency() {
        let (mut g, [a, b, _, d]) = diamond();
        assert_eq!(g.remove_edge(a, b).unwrap(), 1.0);
        assert_eq!(g.successors(a).len(), 1);
        assert_eq!(g.predecessors(b).len(), 0);
        assert_eq!(g.edge_count(), 3);
        // Removing the edge breaks reachability through b but not c.
        assert!(g.is_reachable(a, d));
        assert!(!g.is_reachable(a, b));
    }

    #[test]
    fn split_edge_inserts_component() {
        let (mut g, [a, b, ..]) = diamond();
        let t = g.split_edge(a, b, node("transcoder"), 1.5, 0.7).unwrap();
        assert_eq!(g.component_count(), 5);
        assert_eq!(g.edge_throughput(a, b), None);
        assert_eq!(g.edge_throughput(a, t), Some(1.5));
        assert_eq!(g.edge_throughput(t, b), Some(0.7));
        assert_eq!(g.component(t).unwrap().name(), "transcoder");
        assert_eq!(g.predecessors(t), &[a]);
        assert_eq!(g.successors(t), &[b]);
    }

    #[test]
    fn split_missing_edge_fails_cleanly() {
        let (mut g, [a, _, _, d]) = diamond();
        let before = g.clone();
        assert_eq!(
            g.split_edge(d, a, node("x"), 1.0, 1.0),
            Err(GraphError::UnknownEdge { from: d, to: a })
        );
        assert_eq!(g, before);
    }

    #[test]
    fn split_edge_invalid_throughput_leaves_graph_unchanged() {
        let (mut g, [a, b, ..]) = diamond();
        let before = g.clone();
        assert!(matches!(
            g.split_edge(a, b, node("x"), -1.0, 1.0),
            Err(GraphError::InvalidThroughput(_))
        ));
        assert_eq!(g, before);
    }

    #[test]
    fn reachability() {
        let (g, [a, b, c, d]) = diamond();
        assert!(g.is_reachable(a, d));
        assert!(g.is_reachable(a, a), "every node reaches itself");
        assert!(!g.is_reachable(b, c));
        assert!(!g.is_reachable(d, a));
    }

    #[test]
    fn component_access_and_mutation() {
        let (mut g, [a, ..]) = diamond();
        assert_eq!(g.component(a).unwrap().name(), "a");
        g.component_mut(a)
            .unwrap()
            .set_pinned_to(Some(crate::ids::DeviceId::from_index(0)));
        assert!(g.component(a).unwrap().pinned_to().is_some());
        let ghost = ComponentId::from_index(42);
        assert!(g.component(ghost).is_err());
        assert!(g.component_mut(ghost).is_err());
    }

    #[test]
    fn empty_graph() {
        let g = ServiceGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.roots(), Vec::<ComponentId>::new());
        assert_eq!(g.leaves(), Vec::<ComponentId>::new());
        assert_eq!(g.total_throughput(), 0.0);
    }
}
