//! Typed identifiers for graph nodes and devices.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a service component within one [`crate::ServiceGraph`].
///
/// Component ids are dense indices handed out by
/// [`crate::ServiceGraph::add_component`]; they are only meaningful
/// relative to the graph that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// The dense index of this component in its graph.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs an id from a dense index.
    ///
    /// Intended for callers that store assignments in parallel arrays
    /// (e.g. the distribution tier's cut representation); passing an index
    /// that does not exist in the target graph yields
    /// [`crate::GraphError::UnknownComponent`] from graph operations.
    pub fn from_index(index: usize) -> Self {
        ComponentId(index as u32)
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of a device in the current environment.
///
/// Devices are owned by the distribution tier's environment description;
/// the graph crate uses the id only for placement *pins* (components that
/// must run on a particular device, e.g. the display service on the client
/// device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// The dense index of this device in its environment.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs an id from a dense index.
    pub fn from_index(index: usize) -> Self {
        DeviceId(index as u32)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_indices() {
        assert_eq!(ComponentId::from_index(7).index(), 7);
        assert_eq!(DeviceId::from_index(3).index(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ComponentId::from_index(2).to_string(), "c2");
        assert_eq!(DeviceId::from_index(1).to_string(), "d1");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(ComponentId::from_index(1) < ComponentId::from_index(2));
        assert!(DeviceId::from_index(0) < DeviceId::from_index(9));
    }
}
