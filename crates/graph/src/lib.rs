//! # ubiqos-graph
//!
//! The service-graph substrate of the *ubiqos* reproduction of Gu &
//! Nahrstedt, ICDCS 2002. Applications are modeled as directed acyclic
//! graphs of autonomous service components (Section 2 of the paper):
//!
//! * [`ServiceComponent`] — one component with its input QoS requirement
//!   `Q_in`, current output QoS `Q_out`, tunable output *capabilities*,
//!   end-system resource requirement `R`, and placement constraints;
//! * [`ServiceGraph`] — the DAG with integer edge throughputs `c(u, v)`;
//! * [`topo`] — topological sorting (the first step of the Ordered
//!   Coordination algorithm);
//! * [`Cut`] — a k-cut of the graph (Definition 3.3) together with the
//!   per-part resource sums and inter-part throughput sums `T_{i,j}`
//!   consumed by the distribution tier's fit-into check (Definition 3.4)
//!   and cost aggregation (Definition 3.5);
//! * [`AbstractServiceGraph`] — the developer-provided high-level
//!   application description that the composition tier instantiates
//!   against the current environment.
//!
//! # Example
//!
//! ```
//! use ubiqos_graph::{ComponentRole, ServiceComponent, ServiceGraph};
//! use ubiqos_model::ResourceVector;
//!
//! let mut g = ServiceGraph::new();
//! let server = g.add_component(
//!     ServiceComponent::builder("audio-server")
//!         .role(ComponentRole::Source)
//!         .resources(ResourceVector::mem_cpu(64.0, 30.0))
//!         .build(),
//! );
//! let player = g.add_component(
//!     ServiceComponent::builder("audio-player")
//!         .role(ComponentRole::Sink)
//!         .resources(ResourceVector::mem_cpu(16.0, 20.0))
//!         .build(),
//! );
//! g.add_edge(server, player, 1.4)?; // 1.4 Mbps stream
//! assert_eq!(ubiqos_graph::topo::topological_sort(&g)?, vec![server, player]);
//! # Ok::<(), ubiqos_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstract_graph;
pub mod component;
pub mod cut;
pub mod dot;
pub mod error;
pub mod graph;
pub mod ids;
pub mod spec;
pub mod topo;

pub use abstract_graph::{AbstractComponentSpec, AbstractServiceGraph, PinHint, SpecId};
pub use component::{ComponentRole, ServiceComponent, ServiceComponentBuilder};
pub use cut::Cut;
pub use error::GraphError;
pub use graph::{Edge, ServiceGraph};
pub use ids::{ComponentId, DeviceId};
