//! A small textual specification language for abstract service graphs.
//!
//! Section 3.1 assumes developers "specify the application service at a
//! high level of abstraction", citing specification languages like WSDL
//! and the authors' XML-based QoS enabling language. This module is that
//! substrate: a line-oriented description language (ASDL) that parses to
//! an [`AbstractServiceGraph`] and prints back losslessly.
//!
//! # Syntax
//!
//! ```text
//! # mobile audio-on-demand
//! service audio-server {
//!     require format = MPEG
//!     require frame-rate in [10, 40]
//!     pin device 0
//! }
//! service equalizer {
//!     optional
//! }
//! service audio-player {
//!     pin client
//!     require format in {MPEG, WAV}
//! }
//! edge audio-server -> equalizer @ 1.4
//! edge equalizer -> audio-player @ 1.4
//! ```
//!
//! * `require <dimension> = <value>` — a single-value QoS desire
//!   (numeric or token);
//! * `require <dimension> in [lo, hi]` — a numeric range desire;
//! * `require <dimension> in {A, B}` — a token-set desire;
//! * `pin client` / `pin device <index>` — placement constraints;
//! * `optional` — the service enhances but is not required;
//! * `edge <from> -> <to> @ <mbps>` — a stream with its throughput.
//!
//! # Example
//!
//! ```
//! use ubiqos_graph::spec;
//! let text = "service a {}\nservice b {}\nedge a -> b @ 2.0\n";
//! let graph = spec::parse(text)?;
//! assert_eq!(graph.spec_count(), 2);
//! assert_eq!(spec::parse(&spec::render(&graph))?, graph);
//! # Ok::<(), ubiqos_graph::spec::SpecParseError>(())
//! ```

use crate::abstract_graph::{AbstractComponentSpec, AbstractServiceGraph, PinHint, SpecId};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use ubiqos_model::{QosDimension, QosValue};

/// A parse failure, carrying the 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecParseError {
    /// 1-based line where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for SpecParseError {}

fn err(line: usize, message: impl Into<String>) -> SpecParseError {
    SpecParseError {
        line,
        message: message.into(),
    }
}

/// Parses an ASDL document into an abstract service graph.
///
/// # Errors
///
/// Returns a [`SpecParseError`] pinpointing the offending line for
/// malformed statements, duplicate/unknown service names, or edges that
/// would make the graph cyclic.
pub fn parse(text: &str) -> Result<AbstractServiceGraph, SpecParseError> {
    let mut graph = AbstractServiceGraph::new();
    let mut names: BTreeMap<String, SpecId> = BTreeMap::new();
    let mut current: Option<(usize, AbstractComponentSpec, String)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("service ") {
            if current.is_some() {
                return Err(err(lineno, "nested `service` block (missing `}`?)"));
            }
            let rest = rest.trim();
            // `service x {}` declares an empty block on one line.
            let (name, complete) = if let Some(name) = rest.strip_suffix("{}") {
                (name.trim(), true)
            } else if let Some(name) = rest.strip_suffix('{') {
                (name.trim(), false)
            } else {
                return Err(err(lineno, "expected `service <name> {`"));
            };
            if name.is_empty() {
                return Err(err(lineno, "service name is empty"));
            }
            if names.contains_key(name) {
                return Err(err(lineno, format!("duplicate service '{name}'")));
            }
            if complete {
                let id = graph.add_spec(AbstractComponentSpec::new(name));
                names.insert(name.to_owned(), id);
            } else {
                current = Some((lineno, AbstractComponentSpec::new(name), name.to_owned()));
            }
        } else if line == "}" {
            let Some((_, spec, name)) = current.take() else {
                return Err(err(lineno, "unmatched `}`"));
            };
            let id = graph.add_spec(spec);
            names.insert(name, id);
        } else if let Some((_, spec, _)) = current.as_mut() {
            parse_body_line(line, lineno, spec)?;
        } else if let Some(rest) = line.strip_prefix("edge ") {
            let (from, to, mbps) = parse_edge(rest, lineno)?;
            let &from_id = names
                .get(&from)
                .ok_or_else(|| err(lineno, format!("unknown service '{from}'")))?;
            let &to_id = names
                .get(&to)
                .ok_or_else(|| err(lineno, format!("unknown service '{to}'")))?;
            graph
                .add_edge(from_id, to_id, mbps)
                .map_err(|e| err(lineno, format!("bad edge: {e}")))?;
        } else {
            return Err(err(lineno, format!("unexpected statement: `{line}`")));
        }
    }
    if let Some((opened, _, name)) = current {
        return Err(err(opened, format!("service '{name}' is never closed")));
    }
    Ok(graph)
}

/// Parses `"<from> -> <to> @ <mbps>"`.
fn parse_edge(rest: &str, lineno: usize) -> Result<(String, String, f64), SpecParseError> {
    let (endpoints, mbps) = rest
        .split_once('@')
        .ok_or_else(|| err(lineno, "expected `edge <from> -> <to> @ <mbps>`"))?;
    let (from, to) = endpoints
        .split_once("->")
        .ok_or_else(|| err(lineno, "expected `<from> -> <to>` before `@`"))?;
    let from = from.trim().to_owned();
    let to = to.trim().to_owned();
    if from.is_empty() || to.is_empty() {
        return Err(err(lineno, "edge endpoint name is empty"));
    }
    let mbps: f64 = mbps
        .trim()
        .parse()
        .map_err(|_| err(lineno, format!("bad throughput '{}'", mbps.trim())))?;
    Ok((from, to, mbps))
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_body_line(
    line: &str,
    lineno: usize,
    spec: &mut AbstractComponentSpec,
) -> Result<(), SpecParseError> {
    if line == "optional" {
        spec.optional = true;
        return Ok(());
    }
    if line == "pin client" {
        spec.pin = Some(PinHint::ClientDevice);
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("pin device ") {
        let index: u32 = rest
            .trim()
            .parse()
            .map_err(|_| err(lineno, format!("bad device index '{rest}'")))?;
        spec.pin = Some(PinHint::Device(index));
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("require ") {
        let (dim, value) = parse_requirement(rest, lineno)?;
        spec.desired_qos.set(dim, value);
        return Ok(());
    }
    Err(err(
        lineno,
        format!("unexpected statement in service body: `{line}`"),
    ))
}

fn parse_requirement(
    rest: &str,
    lineno: usize,
) -> Result<(QosDimension, QosValue), SpecParseError> {
    if let Some((dim, value)) = rest.split_once(" in ") {
        let dim = parse_dimension(dim.trim(), lineno)?;
        let value = value.trim();
        if let Some(inner) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
            let (lo, hi) = inner
                .split_once(',')
                .ok_or_else(|| err(lineno, "range needs `lo, hi`"))?;
            let lo: f64 = lo
                .trim()
                .parse()
                .map_err(|_| err(lineno, format!("bad number '{lo}'")))?;
            let hi: f64 = hi
                .trim()
                .parse()
                .map_err(|_| err(lineno, format!("bad number '{hi}'")))?;
            let value =
                QosValue::try_range(lo, hi).map_err(|e| err(lineno, format!("bad range: {e}")))?;
            return Ok((dim, value));
        }
        if let Some(inner) = value.strip_prefix('{').and_then(|v| v.strip_suffix('}')) {
            let tokens: Vec<String> = inner
                .split(',')
                .map(|t| t.trim().to_owned())
                .filter(|t| !t.is_empty())
                .collect();
            if tokens.is_empty() {
                return Err(err(lineno, "token set is empty"));
            }
            return Ok((dim, QosValue::token_set(tokens)));
        }
        return Err(err(lineno, "expected `[lo, hi]` or `{A, B}` after `in`"));
    }
    if let Some((dim, value)) = rest.split_once('=') {
        let dim = parse_dimension(dim.trim(), lineno)?;
        let value = value.trim();
        if value.is_empty() {
            return Err(err(lineno, "missing value after `=`"));
        }
        let value = match value.parse::<f64>() {
            Ok(n) => QosValue::exact(n),
            Err(_) => QosValue::token(value),
        };
        return Ok((dim, value));
    }
    Err(err(
        lineno,
        "expected `require <dim> = <value>` or `require <dim> in <range|set>`",
    ))
}

fn parse_dimension(name: &str, lineno: usize) -> Result<QosDimension, SpecParseError> {
    Ok(match name {
        "format" => QosDimension::Format,
        "resolution" => QosDimension::Resolution,
        "frame-rate" => QosDimension::FrameRate,
        "sample-rate" => QosDimension::SampleRate,
        "bit-rate" => QosDimension::BitRate,
        "channels" => QosDimension::Channels,
        "latency" => QosDimension::Latency,
        "jitter" => QosDimension::Jitter,
        other => {
            if let Some(custom) = other.strip_prefix("custom:") {
                QosDimension::Custom(custom.to_owned())
            } else {
                return Err(err(lineno, format!("unknown QoS dimension '{other}'")));
            }
        }
    })
}

/// Renders an abstract service graph back into ASDL text. The output
/// round-trips through [`parse`] to an equal graph.
pub fn render(graph: &AbstractServiceGraph) -> String {
    let mut out = String::new();
    for (_, spec) in graph.specs() {
        out.push_str(&format!("service {} {{\n", spec.service_type));
        if spec.optional {
            out.push_str("    optional\n");
        }
        match spec.pin {
            Some(PinHint::ClientDevice) => out.push_str("    pin client\n"),
            Some(PinHint::Device(i)) => out.push_str(&format!("    pin device {i}\n")),
            None => {}
        }
        for (dim, value) in spec.desired_qos.iter() {
            out.push_str(&format!("    require {}\n", render_requirement(dim, value)));
        }
        out.push_str("}\n");
    }
    // Service names are unique by construction, so edges refer by name.
    let name_of = |id: SpecId| {
        graph
            .spec(id)
            .expect("edge endpoints exist")
            .service_type
            .clone()
    };
    for (from, to, mbps) in graph.edges() {
        out.push_str(&format!(
            "edge {} -> {} @ {}\n",
            name_of(from),
            name_of(to),
            mbps
        ));
    }
    out
}

fn render_requirement(dim: &QosDimension, value: &QosValue) -> String {
    match value {
        QosValue::Exact(v) => format!("{dim} = {v}"),
        QosValue::Token(t) => format!("{dim} = {t}"),
        QosValue::Range { lo, hi } => format!("{dim} in [{lo}, {hi}]"),
        QosValue::TokenSet(set) => {
            let tokens: Vec<&str> = set.iter().map(String::as_str).collect();
            format!("{dim} in {{{}}}", tokens.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AUDIO: &str = r#"
# mobile audio-on-demand
service audio-server {
    require format = MPEG
    require frame-rate in [10, 40]
    pin device 0
}
service equalizer {
    optional            # nice to have
}
service audio-player {
    pin client
    require format in {MPEG, WAV}
}
edge audio-server -> equalizer @ 1.4
edge equalizer -> audio-player @ 1.4
"#;

    #[test]
    fn parses_the_audio_description() {
        let g = parse(AUDIO).unwrap();
        assert_eq!(g.spec_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let server = g.spec(SpecId::from_index(0)).unwrap();
        assert_eq!(server.service_type, "audio-server");
        assert_eq!(server.pin, Some(PinHint::Device(0)));
        assert_eq!(
            server.desired_qos.get(&QosDimension::Format),
            Some(&QosValue::token("MPEG"))
        );
        assert_eq!(
            server.desired_qos.get(&QosDimension::FrameRate),
            Some(&QosValue::range(10.0, 40.0))
        );
        let eq = g.spec(SpecId::from_index(1)).unwrap();
        assert!(eq.optional);
        let player = g.spec(SpecId::from_index(2)).unwrap();
        assert_eq!(player.pin, Some(PinHint::ClientDevice));
        assert_eq!(
            player.desired_qos.get(&QosDimension::Format),
            Some(&QosValue::token_set(["MPEG", "WAV"]))
        );
    }

    #[test]
    fn round_trips() {
        let g = parse(AUDIO).unwrap();
        let rendered = render(&g);
        let back = parse(&rendered).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn custom_dimensions_and_numbers() {
        let text =
            "service x {\n    require custom:depth = 16\n    require latency in [0, 50]\n}\n";
        let g = parse(text).unwrap();
        let spec = g.spec(SpecId::from_index(0)).unwrap();
        assert_eq!(
            spec.desired_qos.get(&QosDimension::Custom("depth".into())),
            Some(&QosValue::exact(16.0))
        );
        assert_eq!(
            spec.desired_qos.get(&QosDimension::Latency),
            Some(&QosValue::range(0.0, 50.0))
        );
        assert_eq!(parse(&render(&g)).unwrap(), g);
    }

    #[test]
    fn error_lines_are_reported() {
        let cases: &[(&str, usize, &str)] = &[
            ("service a {\nbogus\n}\n", 2, "unexpected statement"),
            ("service a (\n", 1, "expected `service <name> {`"),
            ("service {}\n", 1, "service name is empty"),
            (
                "service a {\n}\nedge a @ 1\n",
                3,
                "expected `<from> -> <to>`",
            ),
            (
                "service a {\n}\nservice b {\n}\nedge a -> b @ fast\n",
                5,
                "bad throughput",
            ),
            ("service a {\n}\nservice a {\n}\n", 3, "duplicate"),
            ("edge a -> b @ 1\n", 1, "unknown service 'a'"),
            ("service a {\n", 1, "never closed"),
            ("}\n", 1, "unmatched"),
            (
                "service a {\n    require bogus = 1\n}\n",
                2,
                "unknown QoS dimension",
            ),
            (
                "service a {\n    require latency in [5, 1]\n}\n",
                2,
                "bad range",
            ),
            (
                "service a {\n    require format in {}\n}\n",
                2,
                "token set is empty",
            ),
            ("service a {\n    pin device x\n}\n", 2, "bad device index"),
            ("wat\n", 1, "unexpected statement"),
        ];
        for (text, line, needle) in cases {
            let e = parse(text).unwrap_err();
            assert_eq!(e.line, *line, "for input {text:?}: {e}");
            assert!(
                e.to_string().contains(needle),
                "for input {text:?}: expected '{needle}' in '{e}'"
            );
        }
    }

    #[test]
    fn cyclic_edges_are_rejected_with_line() {
        let text = "service a {\n}\nservice b {\n}\nedge a -> b @ 1\nedge b -> a @ 1\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 6);
        assert!(e.to_string().contains("bad edge"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# header\nservice a { # trailing\n}\n\n";
        let g = parse(text).unwrap();
        assert_eq!(g.spec_count(), 1);
    }

    #[test]
    fn empty_document_is_an_empty_graph() {
        let g = parse("").unwrap();
        assert_eq!(g.spec_count(), 0);
        assert_eq!(render(&g), "");
    }
}
