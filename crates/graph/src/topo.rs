//! Topological ordering — step 1 of the Ordered Coordination algorithm.

use crate::error::GraphError;
use crate::graph::ServiceGraph;
use crate::ids::ComponentId;
use std::collections::VecDeque;

/// Computes a topological order of the service graph (Kahn's algorithm).
///
/// Ties are broken by component id, making the order deterministic. Runs
/// in O(V + E), which together with the single reverse pass gives the OC
/// algorithm its O(V + E) complexity claimed in Section 3.2.
///
/// # Errors
///
/// Returns [`GraphError::CycleDetected`] if the graph is not a DAG. (A
/// [`ServiceGraph`] built through its public API is acyclic by
/// construction, but deserialized or hand-patched graphs are re-checked
/// here.)
pub fn topological_sort(graph: &ServiceGraph) -> Result<Vec<ComponentId>, GraphError> {
    let n = graph.component_count();
    let mut in_degree: Vec<usize> = graph
        .component_ids()
        .map(|id| graph.predecessors(id).len())
        .collect();
    // A BinaryHeap would give the smallest-id-first tie-break directly, but
    // id order from a queue seeded in id order is already deterministic.
    let mut queue: VecDeque<ComponentId> = graph
        .component_ids()
        .filter(|id| in_degree[id.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(id) = queue.pop_front() {
        order.push(id);
        for &next in graph.successors(id) {
            in_degree[next.index()] -= 1;
            if in_degree[next.index()] == 0 {
                queue.push_back(next);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(GraphError::CycleDetected)
    }
}

/// Computes the *reverse* topological order.
///
/// This is the order in which the OC algorithm examines nodes: the last
/// nodes of the topological order — "usually … client services" whose
/// output corresponds to the user's QoS requirements — are checked first,
/// so their QoS is preserved while upstream components are adjusted.
///
/// # Errors
///
/// Returns [`GraphError::CycleDetected`] if the graph is not a DAG.
pub fn reverse_topological_sort(graph: &ServiceGraph) -> Result<Vec<ComponentId>, GraphError> {
    let mut order = topological_sort(graph)?;
    order.reverse();
    Ok(order)
}

/// Verifies that `order` is a valid topological order of `graph`.
///
/// Exposed for tests and for validating externally supplied orders.
pub fn is_topological_order(graph: &ServiceGraph, order: &[ComponentId]) -> bool {
    if order.len() != graph.component_count() {
        return false;
    }
    let mut position = vec![usize::MAX; graph.component_count()];
    for (pos, id) in order.iter().enumerate() {
        if id.index() >= position.len() || position[id.index()] != usize::MAX {
            return false;
        }
        position[id.index()] = pos;
    }
    graph
        .edges()
        .all(|e| position[e.from.index()] < position[e.to.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ServiceComponent;

    fn node(name: &str) -> ServiceComponent {
        ServiceComponent::builder(name).build()
    }

    #[test]
    fn sorts_a_chain() {
        let mut g = ServiceGraph::new();
        let ids: Vec<ComponentId> = (0..5)
            .map(|i| g.add_component(node(&format!("n{i}"))))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1.0).unwrap();
        }
        let order = topological_sort(&g).unwrap();
        assert_eq!(order, ids);
        let rev = reverse_topological_sort(&g).unwrap();
        assert_eq!(rev, ids.iter().rev().copied().collect::<Vec<_>>());
    }

    #[test]
    fn sorts_the_papers_figure1_graph() {
        // Figure 1(a): nodes 1..9 with the edge structure of the paper's
        // illustration (a non-linear DAG with two sources and one sink).
        let mut g = ServiceGraph::new();
        let n: Vec<ComponentId> = (1..=9)
            .map(|i| g.add_component(node(&format!("{i}"))))
            .collect();
        let idx = |i: usize| n[i - 1];
        for (u, v) in [
            (1, 2),
            (1, 8),
            (3, 1),
            (5, 2),
            (5, 8),
            (5, 7),
            (9, 8),
            (2, 7),
            (8, 7),
            (8, 6),
            (4, 5),
            (9, 4),
        ] {
            g.add_edge(idx(u), idx(v), 1.0).unwrap();
        }
        let order = topological_sort(&g).unwrap();
        assert!(is_topological_order(&g, &order));
        // Node 7 (the client-side sink) must be checked first in reverse order.
        let rev = reverse_topological_sort(&g).unwrap();
        let pos7 = rev.iter().position(|&id| id == idx(7)).unwrap();
        let pos6 = rev.iter().position(|&id| id == idx(6)).unwrap();
        assert!(
            pos7 <= 1 && pos6 <= 1,
            "sinks 6 and 7 come first in reverse order"
        );
    }

    #[test]
    fn detects_cycle_in_patched_graph() {
        // Build a DAG, then serialize-deserialize a manually cycled copy.
        let mut g = ServiceGraph::new();
        let a = g.add_component(node("a"));
        let b = g.add_component(node("b"));
        g.add_edge(a, b, 1.0).unwrap();
        let mut json: serde_json::Value = serde_json::to_value(&g).unwrap();
        // Patch in a back edge b -> a behind the API's back.
        json["edges"] = serde_json::json!([[a, b, 1.0], [b, a, 1.0]]);
        json["out_adj"] = serde_json::json!([[1], [0]]);
        json["in_adj"] = serde_json::json!([[1], [0]]);
        let cycled: ServiceGraph = serde_json::from_value(json).unwrap();
        assert_eq!(topological_sort(&cycled), Err(GraphError::CycleDetected));
        assert_eq!(
            reverse_topological_sort(&cycled),
            Err(GraphError::CycleDetected)
        );
    }

    #[test]
    fn empty_graph_sorts_to_empty() {
        let g = ServiceGraph::new();
        assert_eq!(topological_sort(&g).unwrap(), Vec::<ComponentId>::new());
    }

    #[test]
    fn validator_rejects_bad_orders() {
        let mut g = ServiceGraph::new();
        let a = g.add_component(node("a"));
        let b = g.add_component(node("b"));
        g.add_edge(a, b, 1.0).unwrap();
        assert!(is_topological_order(&g, &[a, b]));
        assert!(!is_topological_order(&g, &[b, a]), "violates the edge");
        assert!(!is_topological_order(&g, &[a]), "wrong length");
        assert!(!is_topological_order(&g, &[a, a]), "duplicate entry");
    }

    #[test]
    fn deterministic_tie_break() {
        // Two independent chains; order must interleave deterministically.
        let mut g = ServiceGraph::new();
        let a = g.add_component(node("a"));
        let b = g.add_component(node("b"));
        let c = g.add_component(node("c"));
        let d = g.add_component(node("d"));
        g.add_edge(a, c, 1.0).unwrap();
        g.add_edge(b, d, 1.0).unwrap();
        let o1 = topological_sort(&g).unwrap();
        let o2 = topological_sort(&g).unwrap();
        assert_eq!(o1, o2);
        assert_eq!(o1, vec![a, b, c, d]);
    }
}
