//! Property-based tests for service graphs, cuts, and the spec language.

use proptest::prelude::*;
use ubiqos_graph::{
    spec, topo, AbstractComponentSpec, AbstractServiceGraph, Cut, PinHint, ServiceComponent,
    ServiceGraph,
};
use ubiqos_model::{QosDimension, QosValue, QosVector, ResourceVector};

/// Strategy: a random DAG described as (node count, forward edges).
fn arb_dag() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..20).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n - 1, 1..n, 0.01f64..10.0).prop_filter_map("forward edge", move |(a, b, tp)| {
                let (from, to) = (a.min(b.max(a + 1).min(n - 1)), b.max(a + 1).min(n - 1));
                (from < to).then_some((from, to, tp))
            }),
            0..n * 3,
        );
        (Just(n), edges)
    })
}

fn build_graph(n: usize, edges: &[(usize, usize, f64)]) -> ServiceGraph {
    let mut g = ServiceGraph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            g.add_component(
                ServiceComponent::builder(format!("n{i}"))
                    .resources(ResourceVector::mem_cpu(1.0 + i as f64, 2.0))
                    .build(),
            )
        })
        .collect();
    for &(from, to, tp) in edges {
        // Duplicate edges are rejected; that's fine for the property.
        let _ = g.add_edge(ids[from], ids[to], tp);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Graphs built through the API always topologically sort, and the
    /// order is valid.
    #[test]
    fn api_built_graphs_always_sort((n, edges) in arb_dag()) {
        let g = build_graph(n, &edges);
        let order = topo::topological_sort(&g).expect("DAG by construction");
        prop_assert!(topo::is_topological_order(&g, &order));
        let rev = topo::reverse_topological_sort(&g).unwrap();
        let mut rev2 = order.clone();
        rev2.reverse();
        prop_assert_eq!(rev, rev2);
    }

    /// Every edge is either inside a part or in the cut; cut throughput
    /// plus intra-part throughput equals total throughput.
    #[test]
    fn cut_partitions_edge_weight((n, edges) in arb_dag(), parts in 1usize..4) {
        let g = build_graph(n, &edges);
        let assignment: Vec<usize> = (0..n).map(|i| i % parts).collect();
        let cut = Cut::from_assignment(&g, assignment, parts).unwrap();
        let crossing = cut.cut_throughput(&g);
        let t = cut.inter_part_throughput(&g);
        let t_sum: f64 = t.iter().flatten().sum();
        prop_assert!((crossing - t_sum).abs() < 1e-9);
        prop_assert!(crossing <= g.total_throughput() + 1e-9);
        // Part resource sums add up to the whole graph's demand.
        let mut total = ResourceVector::zero(2);
        for p in 0..parts {
            total += &cut.part_resource_sum(&g, p).unwrap();
        }
        let mut expect = ResourceVector::zero(2);
        for (_, c) in g.components() {
            expect += c.resources();
        }
        for (a, b) in total.amounts().iter().zip(expect.amounts()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Splitting an edge preserves DAG-ness and reachability.
    #[test]
    fn split_edge_preserves_structure((n, edges) in arb_dag()) {
        let mut g = build_graph(n, &edges);
        let Some(edge) = g.edges().next() else { return Ok(()); };
        let mid = g
            .split_edge(edge.from, edge.to, ServiceComponent::builder("mid").build(), 1.0, 1.0)
            .unwrap();
        prop_assert!(topo::topological_sort(&g).is_ok());
        prop_assert!(g.is_reachable(edge.from, edge.to));
        prop_assert!(g.is_reachable(edge.from, mid));
        prop_assert!(g.is_reachable(mid, edge.to));
        prop_assert_eq!(g.edge_throughput(edge.from, edge.to), None);
    }

    /// The spec language round-trips arbitrary abstract graphs.
    #[test]
    fn spec_language_round_trips(
        n in 1usize..8,
        optional_mask in 0u8..=255,
        pin_mask in 0u8..=255,
        rates in proptest::collection::vec(1.0f64..60.0, 8),
    ) {
        let mut g = AbstractServiceGraph::new();
        let ids: Vec<_> = (0..n)
            .map(|i| {
                let mut s = AbstractComponentSpec::new(format!("svc-{i}"));
                if optional_mask & (1 << i) != 0 {
                    s.optional = true;
                }
                s.pin = match pin_mask.wrapping_shr(i as u32) % 3 {
                    1 => Some(PinHint::ClientDevice),
                    2 => Some(PinHint::Device(i as u32)),
                    _ => None,
                };
                s.desired_qos = QosVector::new()
                    .with(QosDimension::FrameRate, QosValue::range(1.0, rates[i]))
                    .with(QosDimension::Format, QosValue::token("MPEG"));
                g.add_spec(s)
            })
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1.5).unwrap();
        }
        let text = spec::render(&g);
        let back = spec::parse(&text).expect("rendered spec parses");
        prop_assert_eq!(g, back);
    }

    /// The spec parser never panics on arbitrary input — it either
    /// parses or reports a lined error.
    #[test]
    fn spec_parser_is_total(text in "\\PC*") {
        let _ = spec::parse(&text);
    }

    /// Line-noise built from the grammar's own keywords also never
    /// panics.
    #[test]
    fn spec_parser_survives_keyword_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("service"), Just("edge"), Just("require"), Just("pin"),
                Just("optional"), Just("{"), Just("}"), Just("->"), Just("@"),
                Just("client"), Just("device"), Just("format"), Just("="),
                Just("in"), Just("[1, 2]"), Just("{A, B}"), Just("x"), Just("#"),
            ],
            0..40,
        ),
        newline_mask in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let mut text = String::new();
        for (i, w) in words.iter().enumerate() {
            text.push_str(w);
            text.push(if newline_mask.get(i).copied().unwrap_or(false) { '\n' } else { ' ' });
        }
        let _ = spec::parse(&text);
    }

    /// Graph JSON serialization round-trips (with `float_roundtrip`).
    #[test]
    fn graph_json_round_trips((n, edges) in arb_dag()) {
        let g = build_graph(n, &edges);
        let json = serde_json::to_string(&g).unwrap();
        let back: ServiceGraph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(g, back);
    }
}
