//! Error types for the model crate.

use std::error::Error;
use std::fmt;

/// Errors produced by QoS and resource-vector operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Two resource vectors of different dimensionality were combined.
    DimensionMismatch {
        /// Dimension of the left operand.
        left: usize,
        /// Dimension of the right operand.
        right: usize,
    },
    /// A QoS value was constructed with an invalid range (`lo > hi`).
    InvalidRange {
        /// Lower bound supplied.
        lo: f64,
        /// Upper bound supplied.
        hi: f64,
    },
    /// A resource amount or weight was negative or non-finite.
    InvalidAmount(f64),
    /// Weight vector does not sum to 1 (within tolerance).
    WeightsNotNormalized {
        /// The actual sum of the supplied weights.
        sum: f64,
    },
    /// A weight vector was empty.
    EmptyWeights,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DimensionMismatch { left, right } => {
                write!(f, "resource vector dimension mismatch: {left} vs {right}")
            }
            ModelError::InvalidRange { lo, hi } => {
                write!(f, "invalid QoS range: lo {lo} exceeds hi {hi}")
            }
            ModelError::InvalidAmount(v) => {
                write!(f, "invalid amount {v}: must be finite and non-negative")
            }
            ModelError::WeightsNotNormalized { sum } => {
                write!(f, "weights sum to {sum}, expected 1")
            }
            ModelError::EmptyWeights => write!(f, "weight vector is empty"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            ModelError::DimensionMismatch { left: 2, right: 3 },
            ModelError::InvalidRange { lo: 2.0, hi: 1.0 },
            ModelError::InvalidAmount(-1.0),
            ModelError::WeightsNotNormalized { sum: 0.5 },
            ModelError::EmptyWeights,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
