//! Media formats used by the paper's multimedia scenarios.
//!
//! The composition tier corrects *type mismatches* (e.g. an MPEG audio
//! server feeding a WAV-only PDA player) by inserting transcoders; this
//! module provides the format vocabulary those corrections reason about.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A media format token.
///
/// Formats are compared by identity; format *conversion* knowledge (which
/// transcoders exist and what they cost) lives in the composition tier's
/// transcoder catalog, keeping this type a plain vocabulary item.
///
/// # Example
///
/// ```
/// use ubiqos_model::MediaFormat;
/// assert_eq!(MediaFormat::Mpeg.to_string(), "MPEG");
/// assert_eq!("WAV".parse::<MediaFormat>().unwrap(), MediaFormat::Wav);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MediaFormat {
    /// MPEG audio/video elementary stream (paper: audio server output).
    Mpeg,
    /// Uncompressed WAV audio (paper: Jornada PDA player input).
    Wav,
    /// JPEG still frames / motion-JPEG.
    Jpeg,
    /// Raw PCM samples.
    Pcm,
    /// MP3 compressed audio.
    Mp3,
    /// H.261 conferencing video.
    H261,
    /// Any other format, named by token.
    Other(String),
}

impl MediaFormat {
    /// Returns the canonical token for this format (upper-case).
    pub fn as_token(&self) -> &str {
        match self {
            MediaFormat::Mpeg => "MPEG",
            MediaFormat::Wav => "WAV",
            MediaFormat::Jpeg => "JPEG",
            MediaFormat::Pcm => "PCM",
            MediaFormat::Mp3 => "MP3",
            MediaFormat::H261 => "H261",
            MediaFormat::Other(s) => s,
        }
    }

    /// Returns `true` when this format is a compressed representation.
    ///
    /// Buffer-insertion corrections use this to size jitter buffers:
    /// compressed streams tolerate deeper buffering at equal memory cost.
    pub fn is_compressed(&self) -> bool {
        matches!(
            self,
            MediaFormat::Mpeg | MediaFormat::Jpeg | MediaFormat::Mp3 | MediaFormat::H261
        )
    }
}

impl fmt::Display for MediaFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_token())
    }
}

impl FromStr for MediaFormat {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s.to_ascii_uppercase().as_str() {
            "MPEG" => MediaFormat::Mpeg,
            "WAV" => MediaFormat::Wav,
            "JPEG" => MediaFormat::Jpeg,
            "PCM" => MediaFormat::Pcm,
            "MP3" => MediaFormat::Mp3,
            "H261" => MediaFormat::H261,
            other => MediaFormat::Other(other.to_owned()),
        })
    }
}

impl From<MediaFormat> for String {
    fn from(f: MediaFormat) -> String {
        f.as_token().to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_known_formats() {
        for fmt in [
            MediaFormat::Mpeg,
            MediaFormat::Wav,
            MediaFormat::Jpeg,
            MediaFormat::Pcm,
            MediaFormat::Mp3,
            MediaFormat::H261,
        ] {
            let token = fmt.to_string();
            let parsed: MediaFormat = token.parse().unwrap();
            assert_eq!(parsed, fmt);
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("mpeg".parse::<MediaFormat>().unwrap(), MediaFormat::Mpeg);
        assert_eq!("Wav".parse::<MediaFormat>().unwrap(), MediaFormat::Wav);
    }

    #[test]
    fn unknown_format_becomes_other_uppercased() {
        let f: MediaFormat = "ogg".parse().unwrap();
        assert_eq!(f, MediaFormat::Other("OGG".to_owned()));
        assert_eq!(f.to_string(), "OGG");
    }

    #[test]
    fn compressed_classification() {
        assert!(MediaFormat::Mpeg.is_compressed());
        assert!(MediaFormat::Mp3.is_compressed());
        assert!(!MediaFormat::Wav.is_compressed());
        assert!(!MediaFormat::Pcm.is_compressed());
        assert!(!MediaFormat::Other("X".into()).is_compressed());
    }
}
