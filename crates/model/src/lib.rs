//! # ubiqos-model
//!
//! QoS parameter and resource-vector algebra underlying the *ubiqos*
//! reproduction of Gu & Nahrstedt, **"Dynamic QoS-Aware Multimedia Service
//! Configuration in Ubiquitous Computing Environments"** (ICDCS 2002).
//!
//! This crate provides the application service model of Section 2 of the
//! paper:
//!
//! * [`QosValue`], [`QosDimension`], and [`QosVector`] model the
//!   application-level QoS vectors `Q_in` and `Q_out` attached to every
//!   service component. QoS parameters are either *single values* (media
//!   format, resolution) or *range values* (frame rate).
//! * [`QosVector::satisfies`] implements the inter-component relation
//!   "satisfy" (`Q_out^A ⪯ Q_in^B`, Eq. 1 of the paper), and
//!   [`QosVector::mismatches`] diagnoses *why* a pair of vectors is
//!   inconsistent so the composition tier can correct it.
//! * [`ResourceVector`] models per-component end-system resource
//!   requirements `R = [r_1 … r_m]` and per-device availabilities `RA`,
//!   with vector addition (Definition 3.1) and component-wise comparison
//!   (Definition 3.2).
//! * [`Normalizer`] performs the benchmark-machine normalization of
//!   Section 3.3 that makes heterogeneous devices comparable.
//! * [`MediaFormat`] enumerates the media formats used by the paper's
//!   scenarios (MPEG audio served to a WAV-only PDA, etc.).
//!
//! # Example
//!
//! ```
//! use ubiqos_model::{QosDimension, QosValue, QosVector};
//!
//! // An MPEG server that can emit 10..40 fps.
//! let out = QosVector::new()
//!     .with(QosDimension::Format, QosValue::token("MPEG"))
//!     .with(QosDimension::FrameRate, QosValue::exact(30.0));
//! // A player that accepts MPEG at 10..30 fps.
//! let req = QosVector::new()
//!     .with(QosDimension::Format, QosValue::token("MPEG"))
//!     .with(QosDimension::FrameRate, QosValue::range(10.0, 30.0));
//! assert!(out.satisfies(&req));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod format;
pub mod qos;
pub mod resource;

pub use error::ModelError;
pub use format::MediaFormat;
pub use qos::dimension::QosDimension;
pub use qos::ladder::{weaken_requirement, weaken_value};
pub use qos::satisfy::{Mismatch, MismatchKind};
pub use qos::utility::satisfaction;
pub use qos::value::{Preference, QosValue};
pub use qos::vector::QosVector;
pub use resource::normalize::Normalizer;
pub use resource::vector::ResourceVector;
pub use resource::weights::Weights;

/// Absolute tolerance used for floating-point QoS comparisons.
///
/// QoS quantities in this model (frame rates, resolutions, bandwidths in
/// normalized units) are "human sized"; an absolute epsilon is adequate and
/// keeps the satisfy relation transitive enough for the OC algorithm.
pub const EPSILON: f64 = 1e-9;

/// Returns `true` when two floats are equal within [`EPSILON`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}

/// Returns `true` when `a <= b` within [`EPSILON`].
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPSILON
}
