//! Named QoS dimensions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A named QoS dimension (one coordinate of a `Q_in`/`Q_out` vector).
///
/// The paper's examples use media format, resolution, and frame rate; the
/// prototype scenarios additionally exercise audio sample rate and latency
/// style parameters, and `Custom` leaves the vocabulary open for
/// application-defined dimensions.
///
/// # Example
///
/// ```
/// use ubiqos_model::QosDimension;
/// assert!(QosDimension::FrameRate.higher_is_better());
/// assert!(!QosDimension::Latency.higher_is_better());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum QosDimension {
    /// Media format token (single value, e.g. `MPEG`).
    Format,
    /// Spatial resolution in total pixels (e.g. `1600*1200 = 1_920_000`).
    Resolution,
    /// Frame rate in frames per second.
    FrameRate,
    /// Audio sample rate in Hz.
    SampleRate,
    /// Stream bit rate in kbit/s.
    BitRate,
    /// Number of audio channels.
    Channels,
    /// End-to-end latency in milliseconds (lower is better).
    Latency,
    /// Inter-frame jitter in milliseconds (lower is better).
    Jitter,
    /// Application-defined dimension, named by token.
    Custom(String),
}

impl QosDimension {
    /// Whether larger numeric values of this dimension mean better quality.
    ///
    /// The OC algorithm uses this when it tunes an adjustable output into a
    /// required range: it picks the *best* admissible value, which is the
    /// range maximum for quantity-like dimensions and the range minimum for
    /// delay-like dimensions. `Custom` dimensions default to
    /// higher-is-better.
    pub fn higher_is_better(&self) -> bool {
        !matches!(self, QosDimension::Latency | QosDimension::Jitter)
    }

    /// Whether this dimension is conventionally a token (non-numeric) value.
    pub fn is_token_valued(&self) -> bool {
        matches!(self, QosDimension::Format)
    }
}

impl fmt::Display for QosDimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosDimension::Format => f.write_str("format"),
            QosDimension::Resolution => f.write_str("resolution"),
            QosDimension::FrameRate => f.write_str("frame-rate"),
            QosDimension::SampleRate => f.write_str("sample-rate"),
            QosDimension::BitRate => f.write_str("bit-rate"),
            QosDimension::Channels => f.write_str("channels"),
            QosDimension::Latency => f.write_str("latency"),
            QosDimension::Jitter => f.write_str("jitter"),
            QosDimension::Custom(name) => write!(f, "custom:{name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_of_preference() {
        assert!(QosDimension::FrameRate.higher_is_better());
        assert!(QosDimension::Resolution.higher_is_better());
        assert!(QosDimension::Custom("depth".into()).higher_is_better());
        assert!(!QosDimension::Latency.higher_is_better());
        assert!(!QosDimension::Jitter.higher_is_better());
    }

    #[test]
    fn token_valued() {
        assert!(QosDimension::Format.is_token_valued());
        assert!(!QosDimension::FrameRate.is_token_valued());
    }

    #[test]
    fn display_distinct() {
        let all = [
            QosDimension::Format,
            QosDimension::Resolution,
            QosDimension::FrameRate,
            QosDimension::SampleRate,
            QosDimension::BitRate,
            QosDimension::Channels,
            QosDimension::Latency,
            QosDimension::Jitter,
            QosDimension::Custom("x".into()),
        ];
        let mut names: Vec<String> = all.iter().map(|d| d.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn ordering_is_total_for_map_keys() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        set.insert(QosDimension::Format);
        set.insert(QosDimension::Custom("a".into()));
        set.insert(QosDimension::Custom("b".into()));
        assert_eq!(set.len(), 3);
    }
}
