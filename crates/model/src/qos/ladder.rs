//! Requirement weakening for QoS degradation ladders.
//!
//! When a session can no longer be placed at its requested QoS level, the
//! runtime walks it down a ladder of discrete levels before giving up
//! (degrade → park → retry → drop). Each rung weakens the user's
//! requirement vector by a factor in `(0, 1]`: quantity-like dimensions
//! (frame rate, resolution, …) accept values down to `factor ×` their
//! requested floor, delay-like dimensions (latency, jitter) accept values
//! up to `1/factor ×` their requested ceiling. Token dimensions (media
//! format) are never weakened — a player that only decodes WAV does not
//! start decoding MPEG because the network is congested.
//!
//! The transformation is *monotone under Eq. 1*: any output that satisfies
//! the original requirement also satisfies every weakened requirement
//! ([`weaken_requirement`] documents why, and a workspace proptest pins
//! it). This is what makes the ladder sound — stepping down a rung can
//! only admit more configurations, never reject one that was admissible
//! at full quality.

use crate::qos::dimension::QosDimension;
use crate::qos::value::QosValue;
use crate::qos::vector::QosVector;

/// Weakens one required value by `factor` in the direction that admits
/// *more* outputs for its dimension.
///
/// * higher-is-better numeric: `Exact(v)` → `Range[v·f, v]`,
///   `Range[lo, hi]` → `Range[lo·f, hi]`;
/// * lower-is-better numeric (latency, jitter): `Exact(v)` →
///   `Range[v, v/f]`, `Range[lo, hi]` → `Range[lo, hi/f]`;
/// * token values are returned unchanged.
///
/// Negative bounds are left untouched (QoS quantities are non-negative in
/// this model; scaling a negative floor would *strengthen* the
/// requirement).
pub fn weaken_value(dim: &QosDimension, required: &QosValue, factor: f64) -> QosValue {
    assert!(
        factor > 0.0 && factor <= 1.0,
        "degradation factor must be in (0, 1], got {factor}"
    );
    let widen_down = |v: f64| if v > 0.0 { v * factor } else { v };
    let widen_up = |v: f64| if v > 0.0 { v / factor } else { v };
    match required {
        QosValue::Exact(v) => {
            if dim.higher_is_better() {
                QosValue::Range {
                    lo: widen_down(*v),
                    hi: *v,
                }
            } else {
                QosValue::Range {
                    lo: *v,
                    hi: widen_up(*v),
                }
            }
        }
        QosValue::Range { lo, hi } => {
            if dim.higher_is_better() {
                QosValue::Range {
                    lo: widen_down(*lo),
                    hi: *hi,
                }
            } else {
                QosValue::Range {
                    lo: *lo,
                    hi: widen_up(*hi),
                }
            }
        }
        token => token.clone(),
    }
}

/// Weakens a whole requirement vector by `factor` (see [`weaken_value`]).
///
/// Monotone under Eq. 1: for any output vector `out`,
/// `out.satisfies(req)` implies `out.satisfies(weaken_requirement(req, f))`
/// for every `f` in `(0, 1]`, because every dimension's admissible set
/// only grows — an `Exact` demand becomes a range containing it, a range's
/// binding bound moves outward, and tokens are untouched. Weakening is
/// also monotone in `factor` itself: a lower factor admits a superset of
/// what a higher factor admits.
pub fn weaken_requirement(required: &QosVector, factor: f64) -> QosVector {
    required
        .iter()
        .map(|(dim, value)| (dim.clone(), weaken_value(dim, value, factor)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_becomes_containing_range() {
        let w = weaken_value(&QosDimension::FrameRate, &QosValue::exact(30.0), 0.5);
        assert_eq!(w, QosValue::range(15.0, 30.0));
        assert!(QosValue::exact(30.0).satisfies(&w), "original still admits");
        assert!(QosValue::exact(20.0).satisfies(&w), "lower rates now admit");
    }

    #[test]
    fn lower_is_better_widens_upward() {
        let w = weaken_value(&QosDimension::Latency, &QosValue::range(0.0, 100.0), 0.5);
        assert_eq!(w, QosValue::range(0.0, 200.0));
        assert!(QosValue::exact(150.0).satisfies(&w));
    }

    #[test]
    fn tokens_are_never_weakened() {
        let w = weaken_value(&QosDimension::Format, &QosValue::token("WAV"), 0.25);
        assert_eq!(w, QosValue::token("WAV"));
        assert!(!QosValue::token("MPEG").satisfies(&w));
    }

    #[test]
    fn factor_one_on_ranges_is_identity() {
        let r = QosValue::range(10.0, 30.0);
        assert_eq!(weaken_value(&QosDimension::FrameRate, &r, 1.0), r);
    }

    #[test]
    fn vector_weakening_is_monotone() {
        let req = QosVector::new()
            .with(QosDimension::Format, QosValue::token("WAV"))
            .with(QosDimension::FrameRate, QosValue::range(20.0, 30.0))
            .with(QosDimension::Latency, QosValue::exact(50.0));
        let out = QosVector::new()
            .with(QosDimension::Format, QosValue::token("WAV"))
            .with(QosDimension::FrameRate, QosValue::exact(25.0))
            .with(QosDimension::Latency, QosValue::exact(50.0));
        assert!(out.satisfies(&req));
        for factor in [1.0, 0.75, 0.5, 0.25] {
            let weak = weaken_requirement(&req, factor);
            assert!(out.satisfies(&weak), "monotone at factor {factor}");
        }
        // And the weakened requirement genuinely admits more.
        let slow = QosVector::new()
            .with(QosDimension::Format, QosValue::token("WAV"))
            .with(QosDimension::FrameRate, QosValue::exact(12.0))
            .with(QosDimension::Latency, QosValue::exact(90.0));
        assert!(!slow.satisfies(&req));
        assert!(slow.satisfies(&weaken_requirement(&req, 0.5)));
    }

    #[test]
    #[should_panic(expected = "degradation factor")]
    fn zero_factor_is_rejected() {
        let _ = weaken_value(&QosDimension::FrameRate, &QosValue::exact(1.0), 0.0);
    }
}
