//! Application-level QoS parameter model (Section 2 of the paper).
//!
//! Every service component accepts input with QoS level `Q_in` and emits
//! output with QoS level `Q_out`; both are vectors of application-level
//! parameters such as media format, resolution, and frame rate. This module
//! defines the values ([`value::QosValue`]), the named dimensions
//! ([`dimension::QosDimension`]), the vectors ([`vector::QosVector`]), and
//! the "satisfy" relation with mismatch diagnosis ([`satisfy`]).

pub mod dimension;
pub mod ladder;
pub mod satisfy;
pub mod utility;
pub mod value;
pub mod vector;
