//! Mismatch diagnosis for the "satisfy" relation.
//!
//! When `Q_out^A ⪯ Q_in^B` fails, the composition tier needs to know *how*
//! it failed to select a correction (Section 3.2 of the paper): token
//! mismatches call for a transcoder, range violations for output
//! adjustment or a buffer, missing dimensions for re-discovery.

use crate::qos::dimension::QosDimension;
use crate::qos::value::QosValue;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The category of a single-dimension QoS inconsistency.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MismatchKind {
    /// The required dimension is absent from the offered vector.
    MissingDimension,
    /// Offered and required values are of different kinds
    /// (numeric vs token) — the interaction is malformed.
    TypeMismatch,
    /// Both are token-typed but the offered token(s) are not acceptable
    /// (e.g. MPEG offered, WAV required) — a *type mismatch* in the
    /// paper's sense, correctable by inserting a transcoder.
    TokenMismatch,
    /// Both are numeric but the offered value/range is not contained in
    /// the requirement — a *performance mismatch*, correctable by output
    /// adjustment or buffer insertion.
    RangeViolation,
}

impl fmt::Display for MismatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MismatchKind::MissingDimension => f.write_str("missing dimension"),
            MismatchKind::TypeMismatch => f.write_str("type mismatch"),
            MismatchKind::TokenMismatch => f.write_str("token mismatch"),
            MismatchKind::RangeViolation => f.write_str("range violation"),
        }
    }
}

/// One violated dimension of the satisfy relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mismatch {
    /// The QoS dimension in violation.
    pub dimension: QosDimension,
    /// How the dimension is violated.
    pub kind: MismatchKind,
    /// What the upstream component offered (`None` when missing).
    pub offered: Option<QosValue>,
    /// What the downstream component required.
    pub required: QosValue,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.offered {
            Some(offered) => write!(
                f,
                "{} on {}: offered {}, required {}",
                self.kind, self.dimension, offered, self.required
            ),
            None => write!(
                f,
                "{} on {}: required {}",
                self.kind, self.dimension, self.required
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_dimension_and_values() {
        let m = Mismatch {
            dimension: QosDimension::Format,
            kind: MismatchKind::TokenMismatch,
            offered: Some(QosValue::token("MPEG")),
            required: QosValue::token("WAV"),
        };
        let s = m.to_string();
        assert!(s.contains("format"));
        assert!(s.contains("MPEG"));
        assert!(s.contains("WAV"));
        assert!(s.contains("token mismatch"));
    }

    #[test]
    fn display_for_missing_dimension() {
        let m = Mismatch {
            dimension: QosDimension::Channels,
            kind: MismatchKind::MissingDimension,
            offered: None,
            required: QosValue::exact(2.0),
        };
        let s = m.to_string();
        assert!(s.contains("missing dimension"));
        assert!(!s.contains("offered"));
    }
}
