//! QoS satisfaction scoring — quantifying "best possible QoS".
//!
//! The paper's goal is that users "receive the best possible QoS": a soft
//! notion that needs a number when comparing configurations or reporting
//! degradation. [`satisfaction`] scores a *delivered* QoS vector against a
//! *requested* one in `[0, 1]`:
//!
//! * a fully satisfied dimension contributes 1;
//! * a numeric dimension that falls short contributes its achieved
//!   fraction (e.g. 20 fps delivered of 40 fps requested → 0.5), with
//!   lower-is-better dimensions (latency, jitter) scored by the inverse
//!   ratio;
//! * a violated token dimension (wrong format) or missing dimension
//!   contributes 0;
//!
//! and the final score is the mean over the requested dimensions. An
//! empty request scores 1 (nothing to satisfy).

use crate::qos::dimension::QosDimension;
use crate::qos::value::{Preference, QosValue};
use crate::qos::vector::QosVector;

/// Scores how well `delivered` satisfies `requested`, in `[0, 1]`.
pub fn satisfaction(delivered: &QosVector, requested: &QosVector) -> f64 {
    let dims: Vec<_> = requested.iter().collect();
    if dims.is_empty() {
        return 1.0;
    }
    let total: f64 = dims
        .iter()
        .map(|(dim, want)| dimension_score(delivered.get(dim), dim, want))
        .sum();
    (total / dims.len() as f64).clamp(0.0, 1.0)
}

fn dimension_score(got: Option<&QosValue>, dim: &QosDimension, want: &QosValue) -> f64 {
    let Some(got) = got else {
        return 0.0;
    };
    if got.satisfies(want) {
        return 1.0;
    }
    // Partial credit only makes sense for numeric dimensions.
    let achieved = numeric_point(got, dim);
    let target = numeric_point(want, dim);
    match (achieved, target) {
        (Some(a), Some(t)) if a > 0.0 && t > 0.0 => {
            let ratio = if dim.higher_is_better() { a / t } else { t / a };
            ratio.clamp(0.0, 1.0)
        }
        _ => 0.0,
    }
}

/// The representative numeric point of a value for ratio scoring: exact
/// values as-is; ranges at their preferred end.
fn numeric_point(value: &QosValue, dim: &QosDimension) -> Option<f64> {
    let pref = if dim.higher_is_better() {
        Preference::Highest
    } else {
        Preference::Lowest
    };
    match value.pick(pref)? {
        QosValue::Exact(v) => Some(v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::dimension::QosDimension as D;

    fn v(pairs: &[(D, QosValue)]) -> QosVector {
        pairs.iter().cloned().collect()
    }

    #[test]
    fn full_satisfaction_scores_one() {
        let requested = v(&[
            (D::Format, QosValue::token("WAV")),
            (D::FrameRate, QosValue::range(10.0, 40.0)),
        ]);
        let delivered = v(&[
            (D::Format, QosValue::token("WAV")),
            (D::FrameRate, QosValue::exact(40.0)),
        ]);
        assert_eq!(satisfaction(&delivered, &requested), 1.0);
    }

    #[test]
    fn empty_request_scores_one() {
        assert_eq!(satisfaction(&QosVector::new(), &QosVector::new()), 1.0);
        let delivered = v(&[(D::FrameRate, QosValue::exact(1.0))]);
        assert_eq!(satisfaction(&delivered, &QosVector::new()), 1.0);
    }

    #[test]
    fn partial_rate_gets_fractional_credit() {
        let requested = v(&[(D::FrameRate, QosValue::exact(40.0))]);
        let delivered = v(&[(D::FrameRate, QosValue::exact(20.0))]);
        assert!((satisfaction(&delivered, &requested) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overdelivery_is_capped_at_one() {
        let requested = v(&[(D::FrameRate, QosValue::exact(40.0))]);
        let delivered = v(&[(D::FrameRate, QosValue::exact(80.0))]);
        // 80 fps does not *satisfy* exact 40 (wrong operating point) but
        // the achieved ratio caps at 1.
        assert_eq!(satisfaction(&delivered, &requested), 1.0);
    }

    #[test]
    fn lower_is_better_dimensions_invert() {
        let requested = v(&[(D::Latency, QosValue::exact(50.0))]);
        let high_latency = v(&[(D::Latency, QosValue::exact(100.0))]);
        let low_latency = v(&[(D::Latency, QosValue::exact(25.0))]);
        assert!((satisfaction(&high_latency, &requested) - 0.5).abs() < 1e-12);
        assert_eq!(satisfaction(&low_latency, &requested), 1.0);
    }

    #[test]
    fn wrong_format_scores_zero_on_that_dimension() {
        let requested = v(&[
            (D::Format, QosValue::token("WAV")),
            (D::FrameRate, QosValue::exact(40.0)),
        ]);
        let delivered = v(&[
            (D::Format, QosValue::token("MPEG")),
            (D::FrameRate, QosValue::exact(40.0)),
        ]);
        assert!((satisfaction(&delivered, &requested) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_dimension_scores_zero() {
        let requested = v(&[(D::FrameRate, QosValue::exact(40.0))]);
        assert_eq!(satisfaction(&QosVector::new(), &requested), 0.0);
    }

    #[test]
    fn range_requests_score_against_preferred_end() {
        let requested = v(&[(D::FrameRate, QosValue::range(10.0, 40.0))]);
        let delivered = v(&[(D::FrameRate, QosValue::exact(5.0))]);
        // 5 fps of a [10, 40] request: ratio against the high end = 0.125.
        assert!((satisfaction(&delivered, &requested) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn score_is_always_in_unit_interval() {
        let requested = v(&[
            (D::FrameRate, QosValue::exact(40.0)),
            (D::Latency, QosValue::exact(10.0)),
            (D::Format, QosValue::token("WAV")),
        ]);
        for fps in [0.0, 1.0, 40.0, 400.0] {
            for lat in [1.0, 10.0, 1000.0] {
                let delivered = v(&[
                    (D::FrameRate, QosValue::exact(fps)),
                    (D::Latency, QosValue::exact(lat)),
                ]);
                let s = satisfaction(&delivered, &requested);
                assert!((0.0..=1.0).contains(&s), "{fps}/{lat} -> {s}");
            }
        }
    }
}
