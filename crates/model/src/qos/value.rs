//! QoS parameter values: single values, range values, and token values.

use crate::error::ModelError;
use crate::{approx_eq, approx_le};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Direction of preference when choosing a concrete value inside a range.
///
/// See [`QosValue::pick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Preference {
    /// Prefer the largest admissible value (frame rate, resolution, …).
    Highest,
    /// Prefer the smallest admissible value (latency, jitter, …).
    Lowest,
}

/// One QoS parameter value.
///
/// The paper distinguishes *single value* parameters (media format,
/// resolution) from *range value* parameters (frame rate `[10fps, 30fps]`).
/// We additionally distinguish numeric and token values so the satisfy
/// relation can diagnose type mismatches (the precondition for transcoder
/// insertion) separately from range violations (the precondition for
/// adjustment or buffering).
///
/// # Example
///
/// ```
/// use ubiqos_model::QosValue;
/// let out = QosValue::exact(25.0);
/// let req = QosValue::range(10.0, 30.0);
/// assert!(out.satisfies(&req));
/// assert!(!req.satisfies(&out)); // a range does not satisfy an exact demand
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QosValue {
    /// A single numeric value (paper: "single value" parameter).
    Exact(f64),
    /// A closed numeric interval `[lo, hi]` (paper: "range value").
    Range {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// A single token value, e.g. a media format.
    Token(String),
    /// A set of acceptable tokens, e.g. the formats a player can decode.
    TokenSet(BTreeSet<String>),
}

impl QosValue {
    /// Creates a single numeric value.
    pub fn exact(v: f64) -> Self {
        QosValue::Exact(v)
    }

    /// Creates a range value `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite. Use
    /// [`QosValue::try_range`] for fallible construction.
    pub fn range(lo: f64, hi: f64) -> Self {
        Self::try_range(lo, hi).expect("invalid QoS range")
    }

    /// Creates a range value, validating the bounds.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidRange`] if `lo > hi`, and
    /// [`ModelError::InvalidAmount`] if either bound is non-finite.
    pub fn try_range(lo: f64, hi: f64) -> Result<Self, ModelError> {
        if !lo.is_finite() {
            return Err(ModelError::InvalidAmount(lo));
        }
        if !hi.is_finite() {
            return Err(ModelError::InvalidAmount(hi));
        }
        if lo > hi {
            return Err(ModelError::InvalidRange { lo, hi });
        }
        Ok(QosValue::Range { lo, hi })
    }

    /// Creates a single token value.
    pub fn token(t: impl Into<String>) -> Self {
        QosValue::Token(t.into())
    }

    /// Creates a token-set value from any iterator of tokens.
    pub fn token_set<I, T>(tokens: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<String>,
    {
        QosValue::TokenSet(tokens.into_iter().map(Into::into).collect())
    }

    /// Whether this value is numeric (`Exact` or `Range`).
    pub fn is_numeric(&self) -> bool {
        matches!(self, QosValue::Exact(_) | QosValue::Range { .. })
    }

    /// Whether this value is token-typed (`Token` or `TokenSet`).
    pub fn is_token(&self) -> bool {
        matches!(self, QosValue::Token(_) | QosValue::TokenSet(_))
    }

    /// The "satisfy" check of Eq. 1: does this (output) value satisfy the
    /// `required` (input) value?
    ///
    /// * required `Exact`/`Token` (single value): the output must be the
    ///   same single value;
    /// * required `Range`/`TokenSet` (range value): the output must be
    ///   contained in (`⊆`) the required range/set. Both a single output
    ///   value inside the range and a sub-range/sub-set count as contained.
    ///
    /// A numeric output never satisfies a token requirement or vice versa.
    pub fn satisfies(&self, required: &QosValue) -> bool {
        match (self, required) {
            (QosValue::Exact(a), QosValue::Exact(b)) => approx_eq(*a, *b),
            (QosValue::Exact(a), QosValue::Range { lo, hi }) => {
                approx_le(*lo, *a) && approx_le(*a, *hi)
            }
            (QosValue::Range { lo: alo, hi: ahi }, QosValue::Range { lo, hi }) => {
                approx_le(*lo, *alo) && approx_le(*ahi, *hi)
            }
            // A range output only satisfies an exact demand when degenerate.
            (QosValue::Range { lo, hi }, QosValue::Exact(b)) => {
                approx_eq(*lo, *hi) && approx_eq(*lo, *b)
            }
            (QosValue::Token(a), QosValue::Token(b)) => a == b,
            (QosValue::Token(a), QosValue::TokenSet(set)) => set.contains(a),
            (QosValue::TokenSet(a), QosValue::TokenSet(b)) => a.is_subset(b),
            (QosValue::TokenSet(a), QosValue::Token(b)) => a.len() == 1 && a.contains(b),
            _ => false,
        }
    }

    /// Intersects this value (viewed as a *capability*: the set of values a
    /// component can be tuned to produce) with a requirement, returning the
    /// admissible sub-capability, or `None` when the intersection is empty
    /// or the kinds are incompatible.
    ///
    /// This is the feasibility test behind the OC algorithm's automatic
    /// output adjustment: an adjustable predecessor can be retuned exactly
    /// when `capability.intersect(requirement)` is non-empty.
    pub fn intersect(&self, other: &QosValue) -> Option<QosValue> {
        match (self, other) {
            (QosValue::Exact(a), _) => other.contains_point(*a).then_some(QosValue::Exact(*a)),
            (_, QosValue::Exact(b)) => self.contains_point(*b).then_some(QosValue::Exact(*b)),
            (QosValue::Range { lo: alo, hi: ahi }, QosValue::Range { lo: blo, hi: bhi }) => {
                let lo = alo.max(*blo);
                let hi = ahi.min(*bhi);
                approx_le(lo, hi).then_some(QosValue::Range { lo, hi })
            }
            (QosValue::Token(a), _) => other.contains_token(a).then(|| QosValue::Token(a.clone())),
            (_, QosValue::Token(b)) => self.contains_token(b).then(|| QosValue::Token(b.clone())),
            (QosValue::TokenSet(a), QosValue::TokenSet(b)) => {
                let inter: BTreeSet<String> = a.intersection(b).cloned().collect();
                (!inter.is_empty()).then_some(QosValue::TokenSet(inter))
            }
            _ => None,
        }
    }

    /// Picks the single best concrete value out of this value, given a
    /// direction of preference.
    ///
    /// `Exact`/`Token` values return themselves; a `Range` returns its
    /// preferred endpoint; a `TokenSet` returns its first token in
    /// lexicographic order (token quality is not ordered in this model).
    /// Returns `None` only for an empty `TokenSet`.
    pub fn pick(&self, pref: Preference) -> Option<QosValue> {
        match self {
            QosValue::Exact(v) => Some(QosValue::Exact(*v)),
            QosValue::Range { lo, hi } => Some(QosValue::Exact(match pref {
                Preference::Highest => *hi,
                Preference::Lowest => *lo,
            })),
            QosValue::Token(t) => Some(QosValue::Token(t.clone())),
            QosValue::TokenSet(set) => set.iter().next().map(|t| QosValue::Token(t.clone())),
        }
    }

    /// Whether a numeric point lies inside this value.
    pub fn contains_point(&self, v: f64) -> bool {
        match self {
            QosValue::Exact(a) => approx_eq(*a, v),
            QosValue::Range { lo, hi } => approx_le(*lo, v) && approx_le(v, *hi),
            _ => false,
        }
    }

    /// Whether a token lies inside this value.
    pub fn contains_token(&self, t: &str) -> bool {
        match self {
            QosValue::Token(a) => a == t,
            QosValue::TokenSet(set) => set.contains(t),
            _ => false,
        }
    }
}

impl fmt::Display for QosValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosValue::Exact(v) => write!(f, "{v}"),
            QosValue::Range { lo, hi } => write!(f, "[{lo}, {hi}]"),
            QosValue::Token(t) => f.write_str(t),
            QosValue::TokenSet(set) => {
                f.write_str("{")?;
                for (i, t) in set.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str(t)?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<f64> for QosValue {
    fn from(v: f64) -> Self {
        QosValue::Exact(v)
    }
}

impl From<&str> for QosValue {
    fn from(t: &str) -> Self {
        QosValue::Token(t.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_satisfies_exact_and_range() {
        assert!(QosValue::exact(5.0).satisfies(&QosValue::exact(5.0)));
        assert!(!QosValue::exact(5.0).satisfies(&QosValue::exact(6.0)));
        assert!(QosValue::exact(5.0).satisfies(&QosValue::range(0.0, 10.0)));
        assert!(!QosValue::exact(11.0).satisfies(&QosValue::range(0.0, 10.0)));
        assert!(
            QosValue::exact(10.0).satisfies(&QosValue::range(0.0, 10.0)),
            "inclusive"
        );
    }

    #[test]
    fn range_subset_semantics() {
        assert!(QosValue::range(2.0, 3.0).satisfies(&QosValue::range(1.0, 4.0)));
        assert!(!QosValue::range(0.0, 3.0).satisfies(&QosValue::range(1.0, 4.0)));
        assert!(QosValue::range(1.0, 4.0).satisfies(&QosValue::range(1.0, 4.0)));
        // Only a degenerate range satisfies an exact demand.
        assert!(QosValue::range(5.0, 5.0).satisfies(&QosValue::exact(5.0)));
        assert!(!QosValue::range(4.0, 5.0).satisfies(&QosValue::exact(5.0)));
    }

    #[test]
    fn token_semantics() {
        let mpeg = QosValue::token("MPEG");
        let wav = QosValue::token("WAV");
        let either = QosValue::token_set(["MPEG", "WAV"]);
        assert!(mpeg.satisfies(&mpeg.clone()));
        assert!(!mpeg.satisfies(&wav));
        assert!(mpeg.satisfies(&either));
        assert!(
            !either.satisfies(&mpeg),
            "a 2-token set cannot promise one token"
        );
        assert!(QosValue::token_set(["MPEG"]).satisfies(&mpeg));
        assert!(QosValue::token_set(["MPEG"]).satisfies(&either));
    }

    #[test]
    fn numeric_never_satisfies_token() {
        assert!(!QosValue::exact(1.0).satisfies(&QosValue::token("MPEG")));
        assert!(!QosValue::token("MPEG").satisfies(&QosValue::exact(1.0)));
    }

    #[test]
    fn try_range_validation() {
        assert!(QosValue::try_range(1.0, 0.0).is_err());
        assert!(QosValue::try_range(f64::NAN, 1.0).is_err());
        assert!(QosValue::try_range(0.0, f64::INFINITY).is_err());
        assert!(QosValue::try_range(0.0, 0.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid QoS range")]
    fn range_panics_on_inverted_bounds() {
        let _ = QosValue::range(2.0, 1.0);
    }

    #[test]
    fn intersect_numeric() {
        let a = QosValue::range(0.0, 10.0);
        let b = QosValue::range(5.0, 20.0);
        assert_eq!(a.intersect(&b), Some(QosValue::range(5.0, 10.0)));
        assert_eq!(
            a.intersect(&QosValue::exact(3.0)),
            Some(QosValue::exact(3.0))
        );
        assert_eq!(a.intersect(&QosValue::exact(30.0)), None);
        assert_eq!(
            QosValue::range(0.0, 1.0).intersect(&QosValue::range(2.0, 3.0)),
            None
        );
    }

    #[test]
    fn intersect_tokens() {
        let cap = QosValue::token_set(["MPEG", "WAV", "MP3"]);
        let req = QosValue::token_set(["WAV", "PCM"]);
        assert_eq!(cap.intersect(&req), Some(QosValue::token_set(["WAV"])));
        assert_eq!(cap.intersect(&QosValue::token("PCM")), None);
        assert_eq!(
            cap.intersect(&QosValue::token("MP3")),
            Some(QosValue::token("MP3"))
        );
        assert_eq!(cap.intersect(&QosValue::exact(1.0)), None, "kind mismatch");
    }

    #[test]
    fn pick_respects_preference() {
        let r = QosValue::range(10.0, 30.0);
        assert_eq!(r.pick(Preference::Highest), Some(QosValue::exact(30.0)));
        assert_eq!(r.pick(Preference::Lowest), Some(QosValue::exact(10.0)));
        assert_eq!(
            QosValue::token("X").pick(Preference::Highest),
            Some(QosValue::token("X"))
        );
        assert_eq!(
            QosValue::token_set(Vec::<String>::new()).pick(Preference::Highest),
            None
        );
    }

    #[test]
    fn picked_value_satisfies_source() {
        let r = QosValue::range(10.0, 30.0);
        for pref in [Preference::Highest, Preference::Lowest] {
            assert!(r.pick(pref).unwrap().satisfies(&r));
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(QosValue::exact(5.0).to_string(), "5");
        assert_eq!(QosValue::range(1.0, 2.0).to_string(), "[1, 2]");
        assert_eq!(QosValue::token("MPEG").to_string(), "MPEG");
        assert_eq!(QosValue::token_set(["B", "A"]).to_string(), "{A, B}");
    }
}
