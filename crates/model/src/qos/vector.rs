//! QoS vectors (`Q_in` / `Q_out`) and the satisfy relation over them.

use crate::qos::dimension::QosDimension;
use crate::qos::satisfy::{Mismatch, MismatchKind};
use crate::qos::value::QosValue;
use serde::{Deserialize, Serialize};
use std::collections::btree_map;
use std::collections::BTreeMap;
use std::fmt;

/// A QoS vector: a map from QoS dimension to value.
///
/// Models the paper's `Q_in = [q_1^in … q_n^in]` and
/// `Q_out = [q_1^out … q_n^out]`. Dimensions are keyed, not positional, so
/// two vectors can be compared even when they mention different dimensions
/// — exactly what the satisfy relation of Eq. 1 requires (`∀i ∃j` with
/// matching parameter).
///
/// # Example
///
/// ```
/// use ubiqos_model::{QosDimension, QosValue, QosVector};
/// let out = QosVector::new()
///     .with(QosDimension::Format, QosValue::token("WAV"))
///     .with(QosDimension::SampleRate, QosValue::exact(44_100.0));
/// let req = QosVector::new().with(QosDimension::Format, QosValue::token("WAV"));
/// assert!(out.satisfies(&req)); // extra output dimensions are fine
/// assert!(!req.satisfies(&out)); // missing sample-rate is not
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QosVector {
    params: BTreeMap<QosDimension, QosValue>,
}

impl QosVector {
    /// Creates an empty QoS vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion; replaces any existing value for `dim`.
    #[must_use]
    pub fn with(mut self, dim: QosDimension, value: QosValue) -> Self {
        self.params.insert(dim, value);
        self
    }

    /// Inserts or replaces the value for a dimension, returning the previous
    /// value if any.
    pub fn set(&mut self, dim: QosDimension, value: QosValue) -> Option<QosValue> {
        self.params.insert(dim, value)
    }

    /// Returns the value for a dimension, if present.
    pub fn get(&self, dim: &QosDimension) -> Option<&QosValue> {
        self.params.get(dim)
    }

    /// Removes a dimension, returning its value if it was present.
    pub fn remove(&mut self, dim: &QosDimension) -> Option<QosValue> {
        self.params.remove(dim)
    }

    /// The number of dimensions (the paper's `Dim(Q)`).
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// Whether the vector has no dimensions.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Iterates over `(dimension, value)` pairs in dimension order.
    pub fn iter(&self) -> btree_map::Iter<'_, QosDimension, QosValue> {
        self.params.iter()
    }

    /// The satisfy relation of Eq. 1: `self ⪯ required` — every dimension
    /// demanded by `required` is present in `self` with a satisfying value.
    ///
    /// An *empty* requirement is trivially satisfied; extra dimensions in
    /// `self` are ignored.
    pub fn satisfies(&self, required: &QosVector) -> bool {
        required
            .params
            .iter()
            .all(|(dim, req)| self.params.get(dim).is_some_and(|out| out.satisfies(req)))
    }

    /// Diagnoses every way in which `self` fails to satisfy `required`.
    ///
    /// Returns one [`Mismatch`] per violated dimension; an empty result
    /// means [`QosVector::satisfies`] holds. The composition tier drives
    /// its corrections off the [`MismatchKind`] of each entry.
    pub fn mismatches(&self, required: &QosVector) -> Vec<Mismatch> {
        let mut out = Vec::new();
        for (dim, req) in &required.params {
            match self.params.get(dim) {
                None => out.push(Mismatch {
                    dimension: dim.clone(),
                    kind: MismatchKind::MissingDimension,
                    offered: None,
                    required: req.clone(),
                }),
                Some(offered) if !offered.satisfies(req) => {
                    let kind = if offered.is_token() != req.is_token() {
                        MismatchKind::TypeMismatch
                    } else if offered.is_token() {
                        MismatchKind::TokenMismatch
                    } else {
                        MismatchKind::RangeViolation
                    };
                    out.push(Mismatch {
                        dimension: dim.clone(),
                        kind,
                        offered: Some(offered.clone()),
                        required: req.clone(),
                    });
                }
                Some(_) => {}
            }
        }
        out
    }

    /// Merges another vector into this one, with `other` winning conflicts.
    pub fn merge_from(&mut self, other: &QosVector) {
        for (dim, value) in &other.params {
            self.params.insert(dim.clone(), value.clone());
        }
    }
}

impl fmt::Display for QosVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, (dim, value)) in self.params.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{dim}={value}")?;
        }
        f.write_str("]")
    }
}

impl FromIterator<(QosDimension, QosValue)> for QosVector {
    fn from_iter<I: IntoIterator<Item = (QosDimension, QosValue)>>(iter: I) -> Self {
        QosVector {
            params: iter.into_iter().collect(),
        }
    }
}

impl Extend<(QosDimension, QosValue)> for QosVector {
    fn extend<I: IntoIterator<Item = (QosDimension, QosValue)>>(&mut self, iter: I) {
        self.params.extend(iter);
    }
}

impl<'a> IntoIterator for &'a QosVector {
    type Item = (&'a QosDimension, &'a QosValue);
    type IntoIter = btree_map::Iter<'a, QosDimension, QosValue>;

    fn into_iter(self) -> Self::IntoIter {
        self.params.iter()
    }
}

impl IntoIterator for QosVector {
    type Item = (QosDimension, QosValue);
    type IntoIter = btree_map::IntoIter<QosDimension, QosValue>;

    fn into_iter(self) -> Self::IntoIter {
        self.params.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mpeg_30fps() -> QosVector {
        QosVector::new()
            .with(QosDimension::Format, QosValue::token("MPEG"))
            .with(QosDimension::FrameRate, QosValue::exact(30.0))
    }

    #[test]
    fn empty_requirement_is_trivially_satisfied() {
        assert!(QosVector::new().satisfies(&QosVector::new()));
        assert!(mpeg_30fps().satisfies(&QosVector::new()));
    }

    #[test]
    fn satisfy_checks_every_required_dimension() {
        let req = QosVector::new()
            .with(QosDimension::Format, QosValue::token("MPEG"))
            .with(QosDimension::FrameRate, QosValue::range(10.0, 40.0));
        assert!(mpeg_30fps().satisfies(&req));

        let req_strict = req.with(QosDimension::Resolution, QosValue::exact(1_920_000.0));
        assert!(!mpeg_30fps().satisfies(&req_strict));
    }

    #[test]
    fn mismatch_diagnosis_kinds() {
        let out = QosVector::new()
            .with(QosDimension::Format, QosValue::token("MPEG"))
            .with(QosDimension::FrameRate, QosValue::exact(50.0))
            .with(QosDimension::Latency, QosValue::token("weird"));
        let req = QosVector::new()
            .with(QosDimension::Format, QosValue::token("WAV"))
            .with(QosDimension::FrameRate, QosValue::range(10.0, 40.0))
            .with(QosDimension::Latency, QosValue::exact(20.0))
            .with(QosDimension::Channels, QosValue::exact(2.0));
        let mismatches = out.mismatches(&req);
        assert_eq!(mismatches.len(), 4);
        let kind_of = |dim: &QosDimension| {
            mismatches
                .iter()
                .find(|m| &m.dimension == dim)
                .map(|m| m.kind.clone())
                .unwrap()
        };
        assert_eq!(kind_of(&QosDimension::Format), MismatchKind::TokenMismatch);
        assert_eq!(
            kind_of(&QosDimension::FrameRate),
            MismatchKind::RangeViolation
        );
        assert_eq!(kind_of(&QosDimension::Latency), MismatchKind::TypeMismatch);
        assert_eq!(
            kind_of(&QosDimension::Channels),
            MismatchKind::MissingDimension
        );
    }

    #[test]
    fn mismatches_empty_iff_satisfies() {
        let out = mpeg_30fps();
        let req = QosVector::new().with(QosDimension::FrameRate, QosValue::range(0.0, 60.0));
        assert!(out.satisfies(&req));
        assert!(out.mismatches(&req).is_empty());
    }

    #[test]
    fn set_get_remove_roundtrip() {
        let mut v = QosVector::new();
        assert_eq!(v.set(QosDimension::FrameRate, QosValue::exact(24.0)), None);
        assert_eq!(v.dim(), 1);
        assert_eq!(
            v.set(QosDimension::FrameRate, QosValue::exact(30.0)),
            Some(QosValue::exact(24.0))
        );
        assert_eq!(
            v.get(&QosDimension::FrameRate),
            Some(&QosValue::exact(30.0))
        );
        assert_eq!(
            v.remove(&QosDimension::FrameRate),
            Some(QosValue::exact(30.0))
        );
        assert!(v.is_empty());
    }

    #[test]
    fn merge_from_overwrites() {
        let mut a = mpeg_30fps();
        let b = QosVector::new().with(QosDimension::FrameRate, QosValue::exact(15.0));
        a.merge_from(&b);
        assert_eq!(
            a.get(&QosDimension::FrameRate),
            Some(&QosValue::exact(15.0))
        );
        assert_eq!(a.get(&QosDimension::Format), Some(&QosValue::token("MPEG")));
    }

    #[test]
    fn collect_and_display() {
        let v: QosVector = [
            (QosDimension::Format, QosValue::token("WAV")),
            (QosDimension::Channels, QosValue::exact(2.0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(v.dim(), 2);
        let s = v.to_string();
        assert!(s.contains("format=WAV"));
        assert!(s.contains("channels=2"));
    }
}
