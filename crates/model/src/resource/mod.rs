//! End-system resource model (Definitions 3.1, 3.2 and the heterogeneity
//! normalization of Section 3.3).
//!
//! Resource vectors are positional: index `i` is "the *i*-th resource
//! type", and every vector in one configuration problem must follow the
//! same schema (the paper: "we assume that `R` and `RA` represent the same
//! set of resources and obey the same order"). The conventional schema used
//! throughout the reproduction is `[memory (MB), cpu (%)]`, matching the
//! paper's examples such as `RA_PDA = [32MB, 100%]`.

pub mod normalize;
pub mod vector;
pub mod weights;

/// Index of the memory component in the conventional `[memory, cpu]` schema.
pub const MEMORY: usize = 0;
/// Index of the CPU component in the conventional `[memory, cpu]` schema.
pub const CPU: usize = 1;
