//! Benchmark-machine normalization (Section 3.3).
//!
//! The distribution model assumes homogeneous devices; heterogeneity is
//! handled by normalizing both resource requirements and availabilities to
//! a *benchmark machine*. The paper's example: with a laptop benchmark, a
//! PDA's `[32MB, 100%]` becomes `[32MB, 40%]` and a PC's `[256MB, 100%]`
//! becomes `[256MB, 500%]` — memory is unaffected, CPU is scaled by the
//! speed ratio to the benchmark.

use crate::error::ModelError;
use crate::resource::vector::ResourceVector;
use serde::{Deserialize, Serialize};

/// Converts device-local resource amounts into benchmark-machine units.
///
/// A normalizer holds one multiplicative factor per resource type; the
/// factor is the ratio of the device's per-unit capacity to the benchmark
/// machine's (1.0 means "identical to the benchmark"). In the general case
/// the paper derives these factors "through experimental measurements"; in
/// this reproduction device profiles carry them directly.
///
/// # Example
///
/// ```
/// use ubiqos_model::{Normalizer, ResourceVector};
/// // A PDA whose CPU runs at 40% of the laptop benchmark's speed.
/// let pda = Normalizer::new(vec![1.0, 0.4])?;
/// let local = ResourceVector::mem_cpu(32.0, 100.0);
/// assert_eq!(pda.normalize_availability(&local)?.amounts(), &[32.0, 40.0]);
/// # Ok::<(), ubiqos_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    factors: Vec<f64>,
}

impl Normalizer {
    /// Creates a normalizer from per-resource speed factors.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidAmount`] if a factor is non-positive or
    /// non-finite (a zero factor would make requirements un-invertible).
    pub fn new(factors: Vec<f64>) -> Result<Self, ModelError> {
        for &f in &factors {
            if !f.is_finite() || f <= 0.0 {
                return Err(ModelError::InvalidAmount(f));
            }
        }
        Ok(Normalizer { factors })
    }

    /// The identity normalizer (the device *is* the benchmark machine).
    pub fn identity(dim: usize) -> Self {
        Normalizer {
            factors: vec![1.0; dim],
        }
    }

    /// The per-resource factors.
    pub fn factors(&self) -> &[f64] {
        &self.factors
    }

    /// Normalizes a device-local *availability* vector into benchmark
    /// units: `N(RA)_i = RA_i · factor_i`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DimensionMismatch`] when the vector dimension
    /// differs from the normalizer's.
    pub fn normalize_availability(
        &self,
        local: &ResourceVector,
    ) -> Result<ResourceVector, ModelError> {
        local.scaled_by(&self.factors)
    }

    /// Converts a benchmark-units *requirement* into device-local units:
    /// `R_local,i = R_bench,i / factor_i`.
    ///
    /// This is the inverse view: a component profiled to need 40% of the
    /// benchmark CPU needs 100% of a PDA running at factor 0.4.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DimensionMismatch`] when the vector dimension
    /// differs from the normalizer's.
    pub fn localize_requirement(
        &self,
        bench: &ResourceVector,
    ) -> Result<ResourceVector, ModelError> {
        let inverse: Vec<f64> = self.factors.iter().map(|f| 1.0 / f).collect();
        bench.scaled_by(&inverse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_pda_and_pc() {
        let pda = Normalizer::new(vec![1.0, 0.4]).unwrap();
        let pc = Normalizer::new(vec![1.0, 5.0]).unwrap();
        let pda_local = ResourceVector::mem_cpu(32.0, 100.0);
        let pc_local = ResourceVector::mem_cpu(256.0, 100.0);
        assert_eq!(
            pda.normalize_availability(&pda_local).unwrap().amounts(),
            &[32.0, 40.0]
        );
        assert_eq!(
            pc.normalize_availability(&pc_local).unwrap().amounts(),
            &[256.0, 500.0]
        );
    }

    #[test]
    fn localize_is_inverse_of_normalize() {
        let n = Normalizer::new(vec![1.0, 0.4]).unwrap();
        let bench = ResourceVector::mem_cpu(8.0, 20.0);
        let local = n.localize_requirement(&bench).unwrap();
        assert!((local[1] - 50.0).abs() < 1e-9);
        let back = n.normalize_availability(&local).unwrap();
        for (a, b) in back.amounts().iter().zip(bench.amounts()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_is_noop() {
        let n = Normalizer::identity(2);
        let v = ResourceVector::mem_cpu(5.0, 7.0);
        assert_eq!(n.normalize_availability(&v).unwrap(), v);
        assert_eq!(n.localize_requirement(&v).unwrap(), v);
    }

    #[test]
    fn rejects_nonpositive_factors() {
        assert!(Normalizer::new(vec![0.0]).is_err());
        assert!(Normalizer::new(vec![-1.0]).is_err());
        assert!(Normalizer::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let n = Normalizer::identity(2);
        let v = ResourceVector::new(vec![1.0]).unwrap();
        assert!(n.normalize_availability(&v).is_err());
        assert!(n.localize_requirement(&v).is_err());
    }
}
