//! Resource requirement / availability vectors.

use crate::error::ModelError;
use crate::EPSILON;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index};

/// A vector of end-system resource amounts, `R = [r_1, …, r_m]`.
///
/// Used both for per-component *requirements* and per-device
/// *availabilities* (`RA`). Supports the paper's vector addition
/// (Definition 3.1) via [`Add`]/[`AddAssign`] and the component-wise
/// comparison `R ≤ RA` (Definition 3.2) via [`ResourceVector::fits_within`].
///
/// Amounts are non-negative finite floats in *normalized benchmark units*
/// (see [`crate::Normalizer`]); by convention index 0 is memory in MB and
/// index 1 is CPU in percent, but the type is schema-agnostic.
///
/// # Example
///
/// ```
/// use ubiqos_model::ResourceVector;
/// let need = ResourceVector::new(vec![16.0, 25.0])?;   // 16 MB, 25% CPU
/// let have = ResourceVector::new(vec![32.0, 100.0])?;  // a PDA
/// assert!(need.fits_within(&have));
/// let double = (need.clone() + need.clone())?;
/// assert_eq!(double.amounts(), &[32.0, 50.0]);
/// # Ok::<(), ubiqos_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceVector {
    amounts: Vec<f64>,
}

impl ResourceVector {
    /// Creates a resource vector from raw amounts.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidAmount`] if any amount is negative or
    /// non-finite.
    pub fn new(amounts: Vec<f64>) -> Result<Self, ModelError> {
        for &a in &amounts {
            if !a.is_finite() || a < 0.0 {
                return Err(ModelError::InvalidAmount(a));
            }
        }
        Ok(ResourceVector { amounts })
    }

    /// Creates a zero vector of the given dimension.
    pub fn zero(dim: usize) -> Self {
        ResourceVector {
            amounts: vec![0.0; dim],
        }
    }

    /// Convenience constructor for the conventional `[memory MB, cpu %]`
    /// schema used throughout the paper's experiments.
    ///
    /// # Panics
    ///
    /// Panics if either amount is negative or non-finite.
    pub fn mem_cpu(memory_mb: f64, cpu_pct: f64) -> Self {
        Self::new(vec![memory_mb, cpu_pct]).expect("invalid resource amount")
    }

    /// The dimension `m` of the vector.
    pub fn dim(&self) -> usize {
        self.amounts.len()
    }

    /// The raw amounts.
    pub fn amounts(&self) -> &[f64] {
        &self.amounts
    }

    /// Definition 3.2: `self ≤ other` component-wise (within epsilon).
    ///
    /// Vectors of different dimension never fit.
    pub fn fits_within(&self, other: &ResourceVector) -> bool {
        self.dim() == other.dim()
            && self
                .amounts
                .iter()
                .zip(&other.amounts)
                .all(|(r, ra)| *r <= *ra + EPSILON)
    }

    /// Checked component-wise addition (Definition 3.1).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DimensionMismatch`] when the dimensions differ.
    pub fn checked_add(&self, other: &ResourceVector) -> Result<ResourceVector, ModelError> {
        if self.dim() != other.dim() {
            return Err(ModelError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        Ok(ResourceVector {
            amounts: self
                .amounts
                .iter()
                .zip(&other.amounts)
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// Component-wise subtraction, clamped at zero.
    ///
    /// Used to track residual availability as components are placed; the
    /// clamp protects accumulated float error from producing tiny negative
    /// availabilities.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DimensionMismatch`] when the dimensions differ.
    pub fn saturating_sub(&self, other: &ResourceVector) -> Result<ResourceVector, ModelError> {
        if self.dim() != other.dim() {
            return Err(ModelError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        Ok(ResourceVector {
            amounts: self
                .amounts
                .iter()
                .zip(&other.amounts)
                .map(|(a, b)| (a - b).max(0.0))
                .collect(),
        })
    }

    /// Component-wise scaling by a non-negative factor per component.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DimensionMismatch`] when `factors.len()`
    /// differs from the vector dimension, or [`ModelError::InvalidAmount`]
    /// if a factor is negative or non-finite.
    pub fn scaled_by(&self, factors: &[f64]) -> Result<ResourceVector, ModelError> {
        if self.dim() != factors.len() {
            return Err(ModelError::DimensionMismatch {
                left: self.dim(),
                right: factors.len(),
            });
        }
        for &f in factors {
            if !f.is_finite() || f < 0.0 {
                return Err(ModelError::InvalidAmount(f));
            }
        }
        Ok(ResourceVector {
            amounts: self
                .amounts
                .iter()
                .zip(factors)
                .map(|(a, f)| a * f)
                .collect(),
        })
    }

    /// Weighted scalarization `Σ w_i · r_i`.
    ///
    /// The paper's heuristic orders both devices and components by "the
    /// weighted sum of different resources" (footnote 3); this is that sum.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `weights.len() != self.dim()`; in
    /// release builds the shorter of the two lengths is used.
    pub fn weighted_sum(&self, weights: &[f64]) -> f64 {
        debug_assert_eq!(
            weights.len(),
            self.dim(),
            "weight/vector dimension mismatch"
        );
        self.amounts.iter().zip(weights).map(|(a, w)| a * w).sum()
    }

    /// Returns the amount at `index`, or `None` when out of bounds.
    pub fn get(&self, index: usize) -> Option<f64> {
        self.amounts.get(index).copied()
    }

    /// Whether every component is (approximately) zero.
    pub fn is_zero(&self) -> bool {
        self.amounts.iter().all(|&a| a <= EPSILON)
    }
}

impl Add for ResourceVector {
    type Output = Result<ResourceVector, ModelError>;

    fn add(self, rhs: ResourceVector) -> Self::Output {
        self.checked_add(&rhs)
    }
}

impl AddAssign<&ResourceVector> for ResourceVector {
    /// In-place Definition 3.1 addition.
    ///
    /// # Panics
    ///
    /// Panics when the dimensions differ; use
    /// [`ResourceVector::checked_add`] for fallible addition.
    fn add_assign(&mut self, rhs: &ResourceVector) {
        *self = self
            .checked_add(rhs)
            .expect("resource vector dimension mismatch");
    }
}

impl Index<usize> for ResourceVector {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.amounts[index]
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, a) in self.amounts.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a:.2}")?;
        }
        f.write_str("]")
    }
}

impl FromIterator<f64> for ResourceVector {
    /// Collects amounts into a vector.
    ///
    /// # Panics
    ///
    /// Panics when an amount is negative or non-finite; use
    /// [`ResourceVector::new`] for validation without panicking.
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        ResourceVector::new(iter.into_iter().collect()).expect("invalid resource amount")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_negative_and_nonfinite() {
        assert!(ResourceVector::new(vec![-1.0]).is_err());
        assert!(ResourceVector::new(vec![f64::NAN]).is_err());
        assert!(ResourceVector::new(vec![f64::INFINITY]).is_err());
        assert!(ResourceVector::new(vec![]).is_ok());
        assert!(ResourceVector::new(vec![0.0, 5.5]).is_ok());
    }

    #[test]
    fn definition_3_1_addition() {
        let a = ResourceVector::mem_cpu(10.0, 20.0);
        let b = ResourceVector::mem_cpu(5.0, 2.5);
        let sum = a.checked_add(&b).unwrap();
        assert_eq!(sum.amounts(), &[15.0, 22.5]);
    }

    #[test]
    fn addition_dimension_mismatch() {
        let a = ResourceVector::new(vec![1.0]).unwrap();
        let b = ResourceVector::mem_cpu(1.0, 1.0);
        assert_eq!(
            a.checked_add(&b),
            Err(ModelError::DimensionMismatch { left: 1, right: 2 })
        );
    }

    #[test]
    fn definition_3_2_comparison() {
        let need = ResourceVector::mem_cpu(32.0, 100.0);
        let pda = ResourceVector::mem_cpu(32.0, 100.0);
        let pc = ResourceVector::mem_cpu(256.0, 500.0);
        assert!(need.fits_within(&pda), "equality counts as fitting");
        assert!(need.fits_within(&pc));
        assert!(!pc.fits_within(&pda));
        // One exceeding component is enough to fail.
        let tall = ResourceVector::mem_cpu(1.0, 600.0);
        assert!(!tall.fits_within(&pc));
    }

    #[test]
    fn mismatched_dims_never_fit() {
        let a = ResourceVector::new(vec![1.0]).unwrap();
        let b = ResourceVector::mem_cpu(10.0, 10.0);
        assert!(!a.fits_within(&b));
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = ResourceVector::mem_cpu(10.0, 5.0);
        let b = ResourceVector::mem_cpu(4.0, 8.0);
        let d = a.saturating_sub(&b).unwrap();
        assert_eq!(d.amounts(), &[6.0, 0.0]);
    }

    #[test]
    fn scaled_by_normalization_example() {
        // The paper's example: a PDA with [32MB, 100%] normalized on a
        // laptop benchmark to [32MB, 40%].
        let pda = ResourceVector::mem_cpu(32.0, 100.0);
        let normalized = pda.scaled_by(&[1.0, 0.4]).unwrap();
        assert_eq!(normalized.amounts(), &[32.0, 40.0]);
        assert!(pda.scaled_by(&[1.0]).is_err());
        assert!(pda.scaled_by(&[1.0, -0.5]).is_err());
    }

    #[test]
    fn weighted_sum() {
        let v = ResourceVector::mem_cpu(100.0, 50.0);
        let s = v.weighted_sum(&[0.3, 0.7]);
        assert!((s - (30.0 + 35.0)).abs() < 1e-12);
    }

    #[test]
    fn add_assign_and_index() {
        let mut v = ResourceVector::zero(2);
        v += &ResourceVector::mem_cpu(8.0, 4.0);
        v += &ResourceVector::mem_cpu(2.0, 1.0);
        assert_eq!(v[0], 10.0);
        assert_eq!(v[1], 5.0);
        assert!(!v.is_zero());
        assert!(ResourceVector::zero(3).is_zero());
    }

    #[test]
    fn collect_from_iterator() {
        let v: ResourceVector = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(v.dim(), 3);
        assert_eq!(v.get(2), Some(3.0));
        assert_eq!(v.get(3), None);
    }

    #[test]
    fn display_two_decimals() {
        let v = ResourceVector::mem_cpu(32.0, 40.5);
        assert_eq!(v.to_string(), "[32.00, 40.50]");
    }
}
