//! The weight vector of Definition 3.5.
//!
//! Cost aggregation weighs `m` end-system resource types plus one network
//! term: `w_1 … w_m, w_{m+1}` with `Σ w_i = 1`. Higher weights mark more
//! critical resources.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// Tolerance when validating that weights sum to one.
const SUM_TOLERANCE: f64 = 1e-6;

/// The nonnegative weights `w_1 … w_{m+1}` of Definition 3.5.
///
/// The first `m` entries weigh end-system resource types (in resource-
/// vector order); the final entry weighs the network term. The sum of all
/// entries must be 1.
///
/// # Example
///
/// ```
/// use ubiqos_model::Weights;
/// // Memory 30%, CPU 30%, network 40%.
/// let w = Weights::new(vec![0.3, 0.3], 0.4)?;
/// assert_eq!(w.resource(), &[0.3, 0.3]);
/// assert_eq!(w.network(), 0.4);
/// # Ok::<(), ubiqos_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    resource: Vec<f64>,
    network: f64,
}

impl Weights {
    /// Creates and validates a weight vector.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyWeights`] when `resource` is empty;
    /// * [`ModelError::InvalidAmount`] when any weight is negative or
    ///   non-finite;
    /// * [`ModelError::WeightsNotNormalized`] when the weights do not sum
    ///   to 1 within tolerance.
    pub fn new(resource: Vec<f64>, network: f64) -> Result<Self, ModelError> {
        if resource.is_empty() {
            return Err(ModelError::EmptyWeights);
        }
        for &w in resource.iter().chain(std::iter::once(&network)) {
            if !w.is_finite() || w < 0.0 {
                return Err(ModelError::InvalidAmount(w));
            }
        }
        let sum: f64 = resource.iter().sum::<f64>() + network;
        if (sum - 1.0).abs() > SUM_TOLERANCE {
            return Err(ModelError::WeightsNotNormalized { sum });
        }
        Ok(Weights { resource, network })
    }

    /// Creates uniform weights over `m` resource types plus the network
    /// term (each weight `1 / (m + 1)`).
    ///
    /// # Panics
    ///
    /// Panics when `m == 0`.
    pub fn uniform(m: usize) -> Self {
        assert!(m > 0, "at least one resource type is required");
        let w = 1.0 / (m as f64 + 1.0);
        Weights {
            resource: vec![w; m],
            network: w,
        }
    }

    /// Creates weights from raw (nonnegative, not-all-zero) importances by
    /// normalizing them to sum to one. The last importance is the network
    /// term.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyWeights`] when fewer than two importances
    /// are supplied (at least one resource plus the network term), and
    /// [`ModelError::InvalidAmount`] when an importance is negative,
    /// non-finite, or all importances are zero.
    pub fn from_importance(importance: &[f64]) -> Result<Self, ModelError> {
        if importance.len() < 2 {
            return Err(ModelError::EmptyWeights);
        }
        for &w in importance {
            if !w.is_finite() || w < 0.0 {
                return Err(ModelError::InvalidAmount(w));
            }
        }
        let sum: f64 = importance.iter().sum();
        if sum <= 0.0 {
            return Err(ModelError::InvalidAmount(sum));
        }
        let mut normalized: Vec<f64> = importance.iter().map(|w| w / sum).collect();
        let network = normalized.pop().expect("length checked above");
        Ok(Weights {
            resource: normalized,
            network,
        })
    }

    /// The end-system resource weights `w_1 … w_m`.
    pub fn resource(&self) -> &[f64] {
        &self.resource
    }

    /// The network weight `w_{m+1}`.
    pub fn network(&self) -> f64 {
        self.network
    }

    /// The number of end-system resource types `m`.
    pub fn resource_dim(&self) -> usize {
        self.resource.len()
    }
}

impl Default for Weights {
    /// Uniform weights for the conventional `[memory, cpu]` schema.
    fn default() -> Self {
        Weights::uniform(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_normalized_weights() {
        let w = Weights::new(vec![0.25, 0.25], 0.5).unwrap();
        assert_eq!(w.resource_dim(), 2);
        assert_eq!(w.network(), 0.5);
    }

    #[test]
    fn rejects_bad_weights() {
        assert_eq!(Weights::new(vec![], 1.0), Err(ModelError::EmptyWeights));
        assert!(matches!(
            Weights::new(vec![0.5, 0.6], 0.2),
            Err(ModelError::WeightsNotNormalized { .. })
        ));
        assert!(matches!(
            Weights::new(vec![-0.5, 1.0], 0.5),
            Err(ModelError::InvalidAmount(_))
        ));
    }

    #[test]
    fn uniform_sums_to_one() {
        for m in 1..6 {
            let w = Weights::uniform(m);
            let sum: f64 = w.resource().iter().sum::<f64>() + w.network();
            assert!((sum - 1.0).abs() < 1e-12);
            assert_eq!(w.resource_dim(), m);
        }
    }

    #[test]
    fn from_importance_normalizes() {
        let w = Weights::from_importance(&[2.0, 2.0, 4.0]).unwrap();
        assert_eq!(w.resource(), &[0.25, 0.25]);
        assert_eq!(w.network(), 0.5);
    }

    #[test]
    fn from_importance_rejects_degenerate() {
        assert!(Weights::from_importance(&[1.0]).is_err());
        assert!(Weights::from_importance(&[0.0, 0.0]).is_err());
        assert!(Weights::from_importance(&[1.0, -1.0]).is_err());
    }

    #[test]
    fn default_is_uniform_mem_cpu() {
        let w = Weights::default();
        assert_eq!(w.resource_dim(), 2);
        let third = 1.0 / 3.0;
        assert!((w.network() - third).abs() < 1e-12);
    }
}
