//! Property-based tests for the QoS and resource algebra.

use proptest::prelude::*;
use ubiqos_model::{QosDimension, QosValue, QosVector, ResourceVector, Weights};

fn arb_amount() -> impl Strategy<Value = f64> {
    0.0f64..1e6
}

fn arb_resource_vector(dim: usize) -> impl Strategy<Value = ResourceVector> {
    proptest::collection::vec(arb_amount(), dim)
        .prop_map(|v| ResourceVector::new(v).expect("amounts are valid"))
}

fn arb_numeric_value() -> impl Strategy<Value = QosValue> {
    prop_oneof![
        arb_amount().prop_map(QosValue::exact),
        (arb_amount(), arb_amount()).prop_map(|(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            QosValue::range(lo, hi)
        }),
    ]
}

fn arb_token_value() -> impl Strategy<Value = QosValue> {
    let tokens = prop_oneof![
        Just("MPEG".to_owned()),
        Just("WAV".to_owned()),
        Just("JPEG".to_owned()),
        Just("PCM".to_owned()),
        Just("MP3".to_owned()),
    ];
    prop_oneof![
        tokens.clone().prop_map(QosValue::Token),
        proptest::collection::btree_set(tokens, 1..4).prop_map(QosValue::TokenSet),
    ]
}

fn arb_value() -> impl Strategy<Value = QosValue> {
    prop_oneof![arb_numeric_value(), arb_token_value()]
}

proptest! {
    // ---- ResourceVector ----------------------------------------------

    #[test]
    fn addition_is_commutative(a in arb_resource_vector(3), b in arb_resource_vector(3)) {
        let ab = a.checked_add(&b).unwrap();
        let ba = b.checked_add(&a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn addition_is_associative(
        a in arb_resource_vector(2),
        b in arb_resource_vector(2),
        c in arb_resource_vector(2),
    ) {
        let left = a.checked_add(&b).unwrap().checked_add(&c).unwrap();
        let right = a.checked_add(&b.checked_add(&c).unwrap()).unwrap();
        for (l, r) in left.amounts().iter().zip(right.amounts()) {
            prop_assert!((l - r).abs() <= 1e-6 * l.abs().max(1.0));
        }
    }

    #[test]
    fn zero_is_identity(a in arb_resource_vector(4)) {
        let z = ResourceVector::zero(4);
        prop_assert_eq!(a.checked_add(&z).unwrap(), a.clone());
        prop_assert!(z.fits_within(&a));
    }

    #[test]
    fn fits_within_is_reflexive_and_monotone(
        a in arb_resource_vector(2),
        b in arb_resource_vector(2),
    ) {
        prop_assert!(a.fits_within(&a));
        let sum = a.checked_add(&b).unwrap();
        prop_assert!(a.fits_within(&sum));
        prop_assert!(b.fits_within(&sum));
    }

    #[test]
    fn fits_within_is_transitive(
        a in arb_resource_vector(2),
        b in arb_resource_vector(2),
        c in arb_resource_vector(2),
    ) {
        if a.fits_within(&b) && b.fits_within(&c) {
            // Tolerance stacking is bounded by 2·EPSILON, far below the
            // magnitudes generated here.
            prop_assert!(a.fits_within(&c));
        }
    }

    #[test]
    fn saturating_sub_never_negative(
        a in arb_resource_vector(3),
        b in arb_resource_vector(3),
    ) {
        let d = a.saturating_sub(&b).unwrap();
        prop_assert!(d.amounts().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn weighted_sum_nonnegative_and_linear(a in arb_resource_vector(2), b in arb_resource_vector(2)) {
        let w = [0.3, 0.7];
        let sa = a.weighted_sum(&w);
        let sb = b.weighted_sum(&w);
        let ssum = a.checked_add(&b).unwrap().weighted_sum(&w);
        prop_assert!(sa >= 0.0);
        prop_assert!((ssum - (sa + sb)).abs() <= 1e-6 * ssum.abs().max(1.0));
    }

    // ---- QosValue ------------------------------------------------------

    #[test]
    fn satisfies_is_reflexive_for_singles(v in arb_value()) {
        // Exact and Token values always satisfy themselves; ranges and
        // token sets satisfy themselves by the subset rule.
        prop_assert!(v.satisfies(&v));
    }

    #[test]
    fn intersect_result_satisfies_both(a in arb_value(), b in arb_value()) {
        if let Some(i) = a.intersect(&b) {
            prop_assert!(i.satisfies(&a), "intersection {i:?} must satisfy {a:?}");
            prop_assert!(i.satisfies(&b), "intersection {i:?} must satisfy {b:?}");
        }
    }

    #[test]
    fn intersect_is_symmetric_in_feasibility(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.intersect(&b).is_some(), b.intersect(&a).is_some());
    }

    #[test]
    fn pick_stays_within(v in arb_value()) {
        use ubiqos_model::Preference;
        for pref in [Preference::Highest, Preference::Lowest] {
            if let Some(p) = v.pick(pref) {
                prop_assert!(p.satisfies(&v));
            }
        }
    }

    #[test]
    fn exact_in_range_satisfies(lo in arb_amount(), span in arb_amount(), t in 0.0f64..1.0) {
        let hi = lo + span;
        let point = lo + t * span;
        prop_assert!(QosValue::exact(point).satisfies(&QosValue::range(lo, hi)));
    }

    // ---- QosVector -----------------------------------------------------

    #[test]
    fn vector_satisfies_is_reflexive(
        values in proptest::collection::vec(arb_value(), 0..5)
    ) {
        let dims = [
            QosDimension::Format,
            QosDimension::FrameRate,
            QosDimension::Resolution,
            QosDimension::Latency,
            QosDimension::Channels,
        ];
        let v: QosVector = dims.iter().cloned().zip(values).collect();
        prop_assert!(v.satisfies(&v));
        prop_assert!(v.mismatches(&v).is_empty());
    }

    #[test]
    fn mismatches_agrees_with_satisfies(
        a_vals in proptest::collection::vec(arb_value(), 3),
        b_vals in proptest::collection::vec(arb_value(), 3),
    ) {
        let dims = [QosDimension::Format, QosDimension::FrameRate, QosDimension::Resolution];
        let a: QosVector = dims.iter().cloned().zip(a_vals).collect();
        let b: QosVector = dims.iter().cloned().zip(b_vals).collect();
        prop_assert_eq!(a.satisfies(&b), a.mismatches(&b).is_empty());
    }

    // ---- Weights -------------------------------------------------------

    #[test]
    fn from_importance_always_normalized(
        raw in proptest::collection::vec(0.01f64..100.0, 2..6)
    ) {
        let w = Weights::from_importance(&raw).unwrap();
        let sum: f64 = w.resource().iter().sum::<f64>() + w.network();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }
}
