//! Property tests for the QoS satisfaction score.

use proptest::prelude::*;
use ubiqos_model::{satisfaction, QosDimension, QosValue, QosVector};

fn vec_of(fps: f64, latency: f64, fmt: &str) -> QosVector {
    QosVector::new()
        .with(QosDimension::FrameRate, QosValue::exact(fps))
        .with(QosDimension::Latency, QosValue::exact(latency))
        .with(QosDimension::Format, QosValue::token(fmt))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Satisfaction is always in [0, 1].
    #[test]
    fn score_is_bounded(
        fps in 0.0f64..1000.0,
        lat in 0.001f64..1000.0,
        want_fps in 0.001f64..1000.0,
        want_lat in 0.001f64..1000.0,
        same_fmt in prop::bool::ANY,
    ) {
        let delivered = vec_of(fps, lat, if same_fmt { "WAV" } else { "MPEG" });
        let requested = vec_of(want_fps, want_lat, "WAV");
        let s = satisfaction(&delivered, &requested);
        prop_assert!((0.0..=1.0).contains(&s), "score {s}");
    }

    /// Delivering exactly what was requested scores 1.
    #[test]
    fn exact_delivery_is_perfect(
        fps in 0.001f64..1000.0,
        lat in 0.001f64..1000.0,
    ) {
        let v = vec_of(fps, lat, "WAV");
        prop_assert_eq!(satisfaction(&v, &v), 1.0);
    }

    /// Satisfaction is monotone in delivered frame rate (up to the
    /// requested level) when everything else matches.
    #[test]
    fn monotone_in_rate(
        want in 10.0f64..100.0,
        lo_frac in 0.05f64..0.9,
        step in 0.01f64..0.09,
    ) {
        let requested = QosVector::new().with(QosDimension::FrameRate, QosValue::exact(want));
        let lower = QosVector::new()
            .with(QosDimension::FrameRate, QosValue::exact(want * lo_frac));
        let higher = QosVector::new()
            .with(QosDimension::FrameRate, QosValue::exact(want * (lo_frac + step)));
        prop_assert!(satisfaction(&lower, &requested) <= satisfaction(&higher, &requested) + 1e-12);
    }

    /// Degrading one dimension can only lower the score.
    #[test]
    fn degradation_never_raises_the_score(
        want_fps in 10.0f64..100.0,
        frac in 0.0f64..1.0,
    ) {
        let requested = vec_of(want_fps, 50.0, "WAV");
        let perfect = vec_of(want_fps, 50.0, "WAV");
        let degraded = vec_of(want_fps * frac, 50.0, "WAV");
        prop_assert!(satisfaction(&degraded, &requested) <= satisfaction(&perfect, &requested) + 1e-12);
    }
}
