//! Scoped-thread fan-out primitives shared by the branch-and-bound
//! solver and the experiment drivers.
//!
//! The crate deliberately exposes a tiny, deterministic surface instead
//! of a general-purpose thread pool:
//!
//! * [`par_map`] — map a function over a slice with a shared work
//!   queue (an atomic cursor), returning results **in input order**
//!   regardless of which worker produced them;
//! * [`par_run`] — the index-only variant for "run these N independent
//!   jobs" fan-outs;
//! * [`par_map_threads`] — [`par_map`] with an explicit worker count,
//!   for callers that sweep thread counts inside one process;
//! * [`thread_count`] — the worker count used by both, derived from
//!   `std::thread::available_parallelism` and overridable with the
//!   `UBIQOS_THREADS` environment variable (handy both for pinning
//!   benchmarks and for exercising the parallel code path on
//!   single-core machines).
//!
//! Worker panics are re-raised on the caller's thread, so a failing
//! closure behaves like it would in a serial loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads [`par_map`] and [`par_run`] spawn.
///
/// `UBIQOS_THREADS` (a positive integer) takes precedence; otherwise
/// the detected hardware parallelism is used, floored at 2 so the
/// concurrent code path is exercised even on single-core hosts.
pub fn thread_count() -> usize {
    if let Ok(forced) = std::env::var("UBIQOS_THREADS") {
        if let Ok(n) = forced.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(2)
}

/// Maps `f` over `items` on [`thread_count`] scoped threads.
///
/// Items are claimed from a shared atomic cursor, so imbalanced work
/// distributes itself; results are reassembled in input order, making
/// the output independent of scheduling. With one thread (or at most
/// one item) the map degenerates to a serial loop with no spawning.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_threads(thread_count(), items, f)
}

/// [`par_map`] with an explicit worker count instead of the
/// `UBIQOS_THREADS`-derived default.
///
/// Callers that sweep thread counts inside one process (the pipeline
/// runtime's scale driver, the batched ≡ serial equivalence proptests)
/// use this to pin the fan-out width per call without mutating the
/// process-global environment. Results are reassembled in input order,
/// so the output is identical at every `workers` value.
pub fn par_map_threads<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
            })
            .collect()
    });

    let mut slots: Vec<Option<U>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    for (i, value) in buckets.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index claimed twice");
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was claimed by exactly one worker"))
        .collect()
}

/// Runs `f(0), f(1), …, f(jobs - 1)` across [`thread_count`] threads,
/// returning the results in index order.
pub fn par_run<U, F>(jobs: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let indices: Vec<usize> = (0..jobs).collect();
    par_map(&indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            // Uneven work so fast workers overtake slow ones.
            if x % 17 == 0 {
                std::thread::yield_now();
            }
            x * 3
        });
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_run_matches_serial() {
        assert_eq!(
            par_run(9, |i| i * i),
            (0..9).map(|i| i * i).collect::<Vec<_>>()
        );
        assert_eq!(par_run(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_run(1, |i| i + 5), vec![5]);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            par_run(8, |i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn thread_count_is_at_least_two_without_override() {
        if std::env::var("UBIQOS_THREADS").is_err() {
            assert!(thread_count() >= 2);
        }
    }

    #[test]
    fn explicit_worker_counts_agree_with_serial() {
        let items: Vec<usize> = (0..100).collect();
        let expect: Vec<usize> = items.iter().map(|x| x + 1).collect();
        for workers in [0, 1, 2, 8, 200] {
            assert_eq!(par_map_threads(workers, &items, |_, &x| x + 1), expect);
        }
        assert_eq!(par_map_threads(4, &[] as &[usize], |_, &x| x), Vec::new());
    }
}
