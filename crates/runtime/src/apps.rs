//! The two prototype applications of Section 4: *mobile audio-on-demand*
//! and *video conferencing*.
//!
//! Each function builds the abstract service graph plus the registry
//! entries (concrete instances) the paper's testbed provides, so
//! scenarios and examples can assemble the experiment with one call.

use crate::cost_model::LinkKind;
use ubiqos_discovery::{DeviceProperties, ServiceDescriptor, ServiceRegistry};
use ubiqos_distribution::{Device, DeviceClass, Environment};
use ubiqos_graph::{
    AbstractComponentSpec, AbstractServiceGraph, ComponentRole, PinHint, ServiceComponent,
};
use ubiqos_model::{QosDimension as D, QosValue, QosVector, ResourceVector};

/// Properties of a desktop-class client.
pub fn desktop_props() -> DeviceProperties {
    DeviceProperties {
        screen_pixels: 1600.0 * 1200.0,
        compute_factor: 5.0,
    }
}

/// Properties of the HP Jornada PDA client.
pub fn pda_props() -> DeviceProperties {
    DeviceProperties {
        screen_pixels: 320.0 * 240.0,
        compute_factor: 0.4,
    }
}

/// The audio-on-demand smart space: desktop1 (content server host),
/// desktop2, the Jornada PDA, and desktop3, with ethernet everywhere but
/// the PDA.
///
/// Returns `(environment, per-device links, per-device properties)`.
pub fn audio_environment() -> (Environment, Vec<LinkKind>, Vec<DeviceProperties>) {
    let env = Environment::builder()
        .device(
            Device::new("desktop1", ResourceVector::mem_cpu(256.0, 500.0))
                .with_class(DeviceClass::Desktop),
        )
        .device(
            Device::new("desktop2", ResourceVector::mem_cpu(256.0, 500.0))
                .with_class(DeviceClass::Desktop),
        )
        .device(
            Device::new("jornada", ResourceVector::mem_cpu(32.0, 40.0))
                .with_class(DeviceClass::Pda),
        )
        .device(
            Device::new("desktop3", ResourceVector::mem_cpu(256.0, 500.0))
                .with_class(DeviceClass::Desktop),
        )
        .default_bandwidth_mbps(100.0)
        .link_mbps(0, 2, 4.0)
        .link_mbps(1, 2, 4.0)
        .link_mbps(2, 3, 4.0)
        .build();
    let links = vec![
        LinkKind::Ethernet,
        LinkKind::Ethernet,
        LinkKind::Wireless,
        LinkKind::Ethernet,
    ];
    let props = vec![
        desktop_props(),
        desktop_props(),
        pda_props(),
        desktop_props(),
    ];
    (env, links, props)
}

/// Registers the audio-on-demand instances: the MPEG audio server on
/// desktop1 and two player implementations — a full MPEG player that
/// needs a capable machine, and a lightweight WAV-only player that runs
/// anywhere (the Jornada's player).
pub fn register_audio_services(registry: &mut ServiceRegistry) {
    registry.register(
        ServiceDescriptor::new(
            "audio-server@desktop1",
            "audio-server",
            ServiceComponent::builder("audio-server")
                .role(ComponentRole::Source)
                .qos_out(
                    QosVector::new()
                        .with(D::Format, QosValue::token("MPEG"))
                        .with(D::FrameRate, QosValue::exact(40.0)),
                )
                .capability(D::FrameRate, QosValue::range(5.0, 40.0))
                .resources(ResourceVector::mem_cpu(64.0, 60.0))
                .build(),
        )
        .with_code_size_mb(4.0),
    );
    registry.register(
        ServiceDescriptor::new(
            "mpeg-player",
            "audio-player",
            ServiceComponent::builder("audio-player")
                .role(ComponentRole::Sink)
                .qos_in(
                    QosVector::new()
                        .with(D::Format, QosValue::token("MPEG"))
                        .with(D::FrameRate, QosValue::range(10.0, 40.0)),
                )
                .qos_out(QosVector::new().with(D::FrameRate, QosValue::exact(40.0)))
                .capability(D::FrameRate, QosValue::range(5.0, 40.0))
                .resources(ResourceVector::mem_cpu(32.0, 35.0))
                .build(),
        )
        .with_min_device(DeviceProperties {
            screen_pixels: 640.0 * 480.0,
            compute_factor: 1.0,
        })
        .with_code_size_mb(2.5),
    );
    registry.register(
        ServiceDescriptor::new(
            "wav-player",
            "audio-player",
            ServiceComponent::builder("audio-player")
                .role(ComponentRole::Sink)
                .qos_in(
                    QosVector::new()
                        .with(D::Format, QosValue::token("WAV"))
                        .with(D::FrameRate, QosValue::range(10.0, 40.0)),
                )
                .qos_out(QosVector::new().with(D::FrameRate, QosValue::exact(40.0)))
                .capability(D::FrameRate, QosValue::range(5.0, 40.0))
                .resources(ResourceVector::mem_cpu(6.0, 12.0))
                .build(),
        )
        .with_min_device(DeviceProperties {
            screen_pixels: 160.0 * 120.0,
            compute_factor: 0.2,
        })
        .with_code_size_mb(1.0),
    );
}

/// The mobile audio-on-demand abstract graph: an audio server (pinned to
/// desktop1, where the content lives) streaming to an audio player on the
/// user's current portal.
pub fn audio_on_demand_app() -> AbstractServiceGraph {
    let mut g = AbstractServiceGraph::new();
    let server = g.add_spec(
        AbstractComponentSpec::new("audio-server")
            .with_desired_qos(QosVector::new().with(D::Format, QosValue::token("MPEG")))
            .with_pin(PinHint::Device(0)),
    );
    let player = g.add_spec(
        AbstractComponentSpec::new("audio-player")
            .with_desired_qos(QosVector::new().with(D::Format, QosValue::token("MPEG")))
            .with_pin(PinHint::ClientDevice),
    );
    // Compressed MPEG audio is ~0.35 Mbps; the MPEG2WAV transcoder
    // expands it 4x to ~1.4 Mbps of WAV, which still fits the 4 Mbps
    // wireless hop to the PDA.
    g.add_edge(server, player, 0.35).unwrap();
    g
}

/// The user's QoS request for audio-on-demand: "CD quality music" —
/// modeled as 40 chunk/s delivery.
pub fn audio_user_qos() -> QosVector {
    QosVector::new().with(D::FrameRate, QosValue::exact(40.0))
}

/// The video-conferencing smart space: three Sun Ultra-60 class
/// workstations on ethernet.
pub fn conference_environment() -> (Environment, Vec<LinkKind>, Vec<DeviceProperties>) {
    let env = Environment::builder()
        .device(
            Device::new("ws1", ResourceVector::mem_cpu(512.0, 400.0))
                .with_class(DeviceClass::Workstation),
        )
        .device(
            Device::new("ws2", ResourceVector::mem_cpu(512.0, 400.0))
                .with_class(DeviceClass::Workstation),
        )
        .device(
            Device::new("ws3", ResourceVector::mem_cpu(512.0, 400.0))
                .with_class(DeviceClass::Workstation),
        )
        .default_bandwidth_mbps(100.0)
        .build();
    let links = vec![LinkKind::Ethernet; 3];
    let props = vec![desktop_props(); 3];
    (env, links, props)
}

/// Registers the video-conferencing instances: recorders on ws1, the AV
/// gateway/multiplexer, the lip-synchronizer, and the two players.
pub fn register_conference_services(registry: &mut ServiceRegistry) {
    let avmux = || QosValue::token("AVMUX");
    registry.register(
        ServiceDescriptor::new(
            "video-recorder@ws1",
            "video-recorder",
            ServiceComponent::builder("video-recorder")
                .role(ComponentRole::Source)
                .qos_out(
                    QosVector::new()
                        .with(D::Format, QosValue::token("H261"))
                        .with(D::FrameRate, QosValue::exact(25.0)),
                )
                .capability(D::FrameRate, QosValue::range(1.0, 30.0))
                .resources(ResourceVector::mem_cpu(48.0, 50.0))
                .build(),
        )
        .with_code_size_mb(1.5),
    );
    registry.register(
        ServiceDescriptor::new(
            "audio-recorder@ws1",
            "audio-recorder",
            ServiceComponent::builder("audio-recorder")
                .role(ComponentRole::Source)
                .qos_out(
                    QosVector::new()
                        .with(D::Format, QosValue::token("PCM"))
                        .with(D::SampleRate, QosValue::exact(6.0)),
                )
                .capability(D::SampleRate, QosValue::range(1.0, 8.0))
                .resources(ResourceVector::mem_cpu(16.0, 20.0))
                .build(),
        )
        .with_code_size_mb(1.0),
    );
    registry.register(
        ServiceDescriptor::new(
            "av-gateway",
            "av-gateway",
            ServiceComponent::builder("av-gateway")
                .role(ComponentRole::Processor)
                // The multiplexer accepts both elementary streams.
                .qos_in(QosVector::new())
                .qos_out(
                    QosVector::new()
                        .with(D::Format, avmux())
                        .with(D::FrameRate, QosValue::exact(25.0))
                        .with(D::SampleRate, QosValue::exact(6.0)),
                )
                .capability(D::FrameRate, QosValue::range(1.0, 30.0))
                .capability(D::SampleRate, QosValue::range(1.0, 8.0))
                .passthrough(D::FrameRate)
                .passthrough(D::SampleRate)
                .resources(ResourceVector::mem_cpu(64.0, 45.0))
                .build(),
        )
        .with_code_size_mb(2.0),
    );
    registry.register(
        ServiceDescriptor::new(
            "lipsync",
            "lipsync",
            ServiceComponent::builder("lipsync")
                .role(ComponentRole::Processor)
                .qos_in(QosVector::new().with(D::Format, avmux()))
                .qos_out(
                    QosVector::new()
                        .with(D::Format, avmux())
                        .with(D::FrameRate, QosValue::exact(25.0))
                        .with(D::SampleRate, QosValue::exact(6.0)),
                )
                .capability(D::FrameRate, QosValue::range(1.0, 30.0))
                .capability(D::SampleRate, QosValue::range(1.0, 8.0))
                .passthrough(D::FrameRate)
                .passthrough(D::SampleRate)
                .resources(ResourceVector::mem_cpu(96.0, 70.0))
                .build(),
        )
        .with_code_size_mb(2.5),
    );
    registry.register(
        ServiceDescriptor::new(
            "video-player@ws3",
            "video-player",
            ServiceComponent::builder("video-player")
                .role(ComponentRole::Sink)
                .qos_in(
                    QosVector::new()
                        .with(D::Format, avmux())
                        .with(D::FrameRate, QosValue::range(5.0, 25.0)),
                )
                .resources(ResourceVector::mem_cpu(48.0, 45.0))
                .build(),
        )
        .with_code_size_mb(1.5),
    );
    registry.register(
        ServiceDescriptor::new(
            "audio-player@ws3",
            "conference-audio-player",
            ServiceComponent::builder("conference-audio-player")
                .role(ComponentRole::Sink)
                .qos_in(
                    QosVector::new()
                        .with(D::Format, avmux())
                        .with(D::SampleRate, QosValue::range(1.0, 6.0)),
                )
                .resources(ResourceVector::mem_cpu(16.0, 15.0))
                .build(),
        )
        .with_code_size_mb(1.0),
    );
}

/// The video-conferencing abstract graph (Figure 3's non-linear service
/// graph): video + audio recorders on ws1 feed an AV gateway (pinned to
/// ws2, the boundary host), which feeds the lip-synchronizer, which fans
/// out to the video and audio players on the user's workstation.
pub fn video_conference_app() -> AbstractServiceGraph {
    let mut g = AbstractServiceGraph::new();
    let vrec =
        g.add_spec(AbstractComponentSpec::new("video-recorder").with_pin(PinHint::Device(0)));
    let arec =
        g.add_spec(AbstractComponentSpec::new("audio-recorder").with_pin(PinHint::Device(0)));
    let gateway = g.add_spec(AbstractComponentSpec::new("av-gateway").with_pin(PinHint::Device(1)));
    let lipsync = g.add_spec(AbstractComponentSpec::new("lipsync"));
    let vplay =
        g.add_spec(AbstractComponentSpec::new("video-player").with_pin(PinHint::ClientDevice));
    let aplay = g.add_spec(
        AbstractComponentSpec::new("conference-audio-player").with_pin(PinHint::ClientDevice),
    );
    g.add_edge(vrec, gateway, 2.0).unwrap();
    g.add_edge(arec, gateway, 0.2).unwrap();
    g.add_edge(gateway, lipsync, 2.2).unwrap();
    g.add_edge(lipsync, vplay, 2.0).unwrap();
    g.add_edge(lipsync, aplay, 0.2).unwrap();
    g
}

/// The user's QoS request for the conference: video 25 fps, audio 6
/// chunks/s.
pub fn conference_user_qos() -> QosVector {
    QosVector::new()
        .with(D::FrameRate, QosValue::exact(25.0))
        .with(D::SampleRate, QosValue::exact(6.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audio_environment_shape() {
        let (env, links, props) = audio_environment();
        assert_eq!(env.device_count(), 4);
        assert_eq!(links.len(), 4);
        assert_eq!(props.len(), 4);
        assert_eq!(links[2], LinkKind::Wireless, "the PDA is wireless");
        assert_eq!(env.bandwidth().get(0, 2), 4.0, "wireless link is thin");
        assert_eq!(env.bandwidth().get(0, 1), 100.0);
    }

    #[test]
    fn audio_registry_has_three_instances() {
        let mut r = ServiceRegistry::new();
        register_audio_services(&mut r);
        assert_eq!(r.instance_count(), 3);
    }

    #[test]
    fn audio_app_is_a_two_node_chain() {
        let g = audio_on_demand_app();
        assert_eq!(g.spec_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn conference_app_is_nonlinear() {
        let g = video_conference_app();
        assert_eq!(g.spec_count(), 6);
        assert_eq!(g.edge_count(), 5);
        // Two sources (recorders) and two sinks (players).
        let mut indeg = vec![0; g.spec_count()];
        let mut outdeg = vec![0; g.spec_count()];
        for (f, t, _) in g.edges() {
            outdeg[f.index()] += 1;
            indeg[t.index()] += 1;
        }
        assert_eq!(indeg.iter().filter(|&&d| d == 0).count(), 2, "two sources");
        assert_eq!(outdeg.iter().filter(|&&d| d == 0).count(), 2, "two sinks");
    }

    #[test]
    fn conference_registry_has_six_instances() {
        let mut r = ServiceRegistry::new();
        register_conference_services(&mut r);
        assert_eq!(r.instance_count(), 6);
    }

    #[test]
    fn pda_props_fail_mpeg_player_minimum() {
        let pda = pda_props();
        let mpeg_min = DeviceProperties {
            screen_pixels: 640.0 * 480.0,
            compute_factor: 1.0,
        };
        assert!(!pda.meets(&mpeg_min));
        assert!(desktop_props().meets(&mpeg_min));
    }
}
