//! Application checkpointing and state handoff.
//!
//! Section 3.1 assumes "system services … for saving and restoring
//! application checkpoints and for migrating components with their data
//! between nodes" (citing the Mobility book and one.world). What the
//! evaluation observes is continuity — "music continues from the
//! interruption point" — and the handoff *time*, so the substrate models
//! exactly those: a media-position checkpoint and a timed handoff plan.

use crate::cost_model::{CostModel, LinkKind};
use serde::{Deserialize, Serialize};

/// A saved application state: where in the media the user was.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Media position in seconds at the interruption point.
    pub position_s: f64,
    /// Wall-clock time (ms since session start) the checkpoint was taken.
    pub taken_at_ms: f64,
}

impl Checkpoint {
    /// Captures a checkpoint.
    pub fn capture(position_s: f64, taken_at_ms: f64) -> Self {
        Checkpoint {
            position_s,
            taken_at_ms,
        }
    }
}

/// One phase of the state-handoff protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HandoffPhase {
    /// Pause the old pipeline and quiesce in-flight data.
    Freeze,
    /// Capture and transfer the checkpoint to the new configuration.
    TransferState,
    /// Bind the new components to the stream (subscriptions, sockets).
    Rebind,
    /// Buffer the first frame at the interruption point before resuming.
    BufferFirstFrame,
}

impl HandoffPhase {
    /// All phases, in protocol order.
    pub fn all() -> [HandoffPhase; 4] {
        [
            HandoffPhase::Freeze,
            HandoffPhase::TransferState,
            HandoffPhase::Rebind,
            HandoffPhase::BufferFirstFrame,
        ]
    }
}

impl std::fmt::Display for HandoffPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandoffPhase::Freeze => f.write_str("freeze"),
            HandoffPhase::TransferState => f.write_str("transfer-state"),
            HandoffPhase::Rebind => f.write_str("rebind"),
            HandoffPhase::BufferFirstFrame => f.write_str("buffer-first-frame"),
        }
    }
}

/// A timed plan for moving a session's state to a new configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HandoffPlan {
    /// The checkpoint carried over.
    pub checkpoint: Checkpoint,
    /// The link kind of the handoff *target* device.
    pub target_link: LinkKind,
    /// Per-phase timings, in protocol order.
    pub phases: Vec<(HandoffPhase, f64)>,
    /// Total handoff time (protocol round trips + first-frame
    /// buffering), in ms.
    pub handoff_ms: f64,
}

impl HandoffPlan {
    /// Plans a handoff of `checkpoint` onto a device reached via
    /// `target_link`.
    ///
    /// The cost model's round trips are spread over the protocol phases
    /// (freeze and rebind are chattier than the one-way state transfer),
    /// and the first-frame buffering closes the plan; phase times always
    /// sum to [`CostModel::handoff_ms`].
    pub fn new(checkpoint: Checkpoint, target_link: LinkKind, costs: &CostModel) -> Self {
        let rtt = target_link.rtt_ms();
        let total_rtts = costs.handoff_rtts;
        // Freeze needs a round trip per old endpoint pair (2), rebind the
        // same; whatever remains carries the state itself.
        let freeze = (total_rtts * 0.25) * rtt;
        let rebind = (total_rtts * 0.25) * rtt;
        let transfer = (total_rtts * 0.5) * rtt;
        let phases = vec![
            (HandoffPhase::Freeze, freeze),
            (HandoffPhase::TransferState, transfer),
            (HandoffPhase::Rebind, rebind),
            (HandoffPhase::BufferFirstFrame, costs.first_frame_buffer_ms),
        ];
        HandoffPlan {
            checkpoint,
            target_link,
            handoff_ms: costs.handoff_ms(target_link),
            phases,
        }
    }

    /// The media position playback resumes from — the interruption point.
    pub fn resume_position_s(&self) -> f64 {
        self.checkpoint.position_s
    }

    /// The duration of one phase, in ms.
    pub fn phase_ms(&self, phase: HandoffPhase) -> f64 {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|&(_, ms)| ms)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resume_at_interruption_point() {
        let costs = CostModel::default();
        let cp = Checkpoint::capture(93.5, 120_000.0);
        let plan = HandoffPlan::new(cp.clone(), LinkKind::Ethernet, &costs);
        assert_eq!(plan.resume_position_s(), 93.5);
        assert_eq!(plan.checkpoint, cp);
    }

    #[test]
    fn wireless_handoff_is_slower() {
        let costs = CostModel::default();
        let cp = Checkpoint::capture(0.0, 0.0);
        let to_pda = HandoffPlan::new(cp.clone(), LinkKind::Wireless, &costs);
        let to_pc = HandoffPlan::new(cp, LinkKind::Ethernet, &costs);
        assert!(to_pda.handoff_ms > to_pc.handoff_ms);
    }

    #[test]
    fn phases_sum_to_the_total() {
        let costs = CostModel::default();
        for link in [LinkKind::Ethernet, LinkKind::Wireless] {
            let plan = HandoffPlan::new(Checkpoint::capture(1.0, 2.0), link, &costs);
            let sum: f64 = plan.phases.iter().map(|&(_, ms)| ms).sum();
            assert!(
                (sum - plan.handoff_ms).abs() < 1e-9,
                "{link:?}: {sum} vs {}",
                plan.handoff_ms
            );
            assert_eq!(plan.phases.len(), 4);
            // All four protocol phases present, in order.
            let order: Vec<HandoffPhase> = plan.phases.iter().map(|&(p, _)| p).collect();
            assert_eq!(order, HandoffPhase::all());
        }
    }

    #[test]
    fn buffering_dominates_wired_handoffs() {
        // On a fast LAN the protocol chatter is cheap; the first-frame
        // buffer is the floor the paper's handoff time cannot go below.
        let costs = CostModel::default();
        let plan = HandoffPlan::new(Checkpoint::capture(0.0, 0.0), LinkKind::Ethernet, &costs);
        let buffer = plan.phase_ms(HandoffPhase::BufferFirstFrame);
        for phase in [
            HandoffPhase::Freeze,
            HandoffPhase::TransferState,
            HandoffPhase::Rebind,
        ] {
            assert!(buffer > plan.phase_ms(phase));
        }
        assert_eq!(
            plan.phase_ms(HandoffPhase::BufferFirstFrame),
            costs.first_frame_buffer_ms
        );
    }

    #[test]
    fn phase_display_names_are_distinct() {
        let mut names: Vec<String> = HandoffPhase::all().iter().map(|p| p.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
