//! Epoch-validated composition memoization — the domain server's
//! cross-request configuration cache.
//!
//! The Fig. 5 workload and the fault campaigns issue thousands of
//! near-identical configuration requests against a registry that changes
//! only at churn events. Composition (discover → compose → OC check) is
//! a pure function of the request and the registry contents, so its
//! result can be memoized keyed by the request and validated by the
//! registry's [`ServiceRegistry::epoch`]:
//!
//! * an entry whose fill epoch equals the current epoch is trivially
//!   valid — nothing changed at all;
//! * an entry from an older epoch is *revalidated* precisely: if none of
//!   the service types the request's abstract graph depends on appear in
//!   [`ServiceRegistry::changed_types_since`], the registry answers every
//!   discovery query of this composition exactly as it did at fill time,
//!   so the entry is still byte-identical to a fresh composition (the
//!   runtime cross-checks this under `debug_assertions`);
//! * otherwise the entry is discarded.
//!
//! The dependency set is exactly the abstract specs' service types. That
//! is sound because the domain server composes with an empty expansion
//! library (no recursive spec expansion) and a *static* transcoder
//! catalog — the registry is consulted only for the abstract types
//! themselves.
//!
//! The distribution tier is never cached: placement depends on the
//! residual environment, which changes with every admission and refund.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::{self, Write as _};
use ubiqos_composition::ComposedApplication;
use ubiqos_discovery::ServiceRegistry;

/// Cached compositions kept before stale entries are evicted.
const CACHE_CAP: usize = 256;

/// A 128-bit fingerprint of a request's cache identity, computed by
/// streaming the request's deterministic `Debug` rendering through two
/// independent FNV-1a accumulators — no intermediate `String` is ever
/// allocated, which keeps the hit path free of per-request heap work.
///
/// Two independent 64-bit streams make an accidental collision across a
/// 256-entry cache astronomically unlikely; debug builds additionally
/// cross-check every hit against a fresh recomposition, so a collision
/// cannot pass unnoticed there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey(u64, u64);

impl CacheKey {
    /// Fingerprints preformatted arguments, e.g.
    /// `CacheKey::of(format_args!("{:?}|{}", graph, device))`.
    pub fn of(args: fmt::Arguments<'_>) -> Self {
        let mut sink = FnvSink::default();
        // Writing into the sink is infallible.
        let _ = sink.write_fmt(args);
        CacheKey(sink.a, sink.b)
    }
}

/// `fmt::Write` adapter feeding two FNV-1a streams with distinct offset
/// bases (the second basis is the standard one bit-inverted).
struct FnvSink {
    a: u64,
    b: u64,
}

impl Default for FnvSink {
    fn default() -> Self {
        FnvSink {
            a: 0xcbf2_9ce4_8422_2325,
            b: !0xcbf2_9ce4_8422_2325,
        }
    }
}

impl fmt::Write for FnvSink {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        for byte in s.bytes() {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(PRIME);
        }
        Ok(())
    }
}

/// Counters for the composition cache. Purely observational — they never
/// feed deterministic logs or virtual time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompositionCacheStats {
    /// Lookups answered from the cache (including revalidated entries).
    pub hits: u64,
    /// Lookups that fell through to a fresh composition.
    pub misses: u64,
    /// Hits that required an epoch revalidation via the changelog
    /// (subset of `hits`).
    pub revalidations: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    /// The composed (and demand-scaled, per the key's rung factor)
    /// application.
    app: ComposedApplication,
    /// Service types this composition's discovery depended on.
    dep_types: BTreeSet<String>,
    /// Registry epoch the entry was filled (or last revalidated) at.
    epoch: u64,
}

/// The epoch-validated memo of composed applications.
#[derive(Debug)]
pub struct CompositionCache {
    enabled: bool,
    entries: BTreeMap<CacheKey, Entry>,
    stats: CompositionCacheStats,
}

impl Default for CompositionCache {
    fn default() -> Self {
        CompositionCache {
            enabled: true,
            entries: BTreeMap::new(),
            stats: CompositionCacheStats::default(),
        }
    }
}

impl CompositionCache {
    /// Creates an enabled, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether lookups and inserts are active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables the cache; disabling clears it. Observable
    /// configuration results are identical either way — the toggle
    /// exists for the cached-vs-uncached benchmark runs.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.entries.clear();
        }
    }

    /// The cache counters.
    pub fn stats(&self) -> CompositionCacheStats {
        self.stats
    }

    /// Looks `key` up against the registry's current epoch, revalidating
    /// an older entry through the changed-type changelog when possible.
    /// Returns a clone of the cached application on a (re)validated hit.
    pub fn lookup(
        &mut self,
        key: CacheKey,
        registry: &ServiceRegistry,
    ) -> Option<ComposedApplication> {
        if !self.enabled {
            return None;
        }
        let current = registry.epoch();
        let valid = match self.entries.get_mut(&key) {
            None => false,
            Some(entry) if entry.epoch == current => true,
            Some(entry) => match registry.changed_types_since(entry.epoch) {
                Some(changed)
                    if entry
                        .dep_types
                        .iter()
                        .all(|t| !changed.contains(t.as_str())) =>
                {
                    entry.epoch = current;
                    self.stats.revalidations += 1;
                    true
                }
                // A dependency changed, or the changelog no longer
                // reaches back to the entry's epoch.
                _ => false,
            },
        };
        if valid {
            self.stats.hits += 1;
            Some(self.entries[&key].app.clone())
        } else {
            self.entries.remove(&key);
            self.stats.misses += 1;
            None
        }
    }

    /// Stores a freshly composed application under `key`. `epoch` must be
    /// the registry epoch observed *before* composition started.
    pub fn insert(
        &mut self,
        key: CacheKey,
        app: ComposedApplication,
        dep_types: BTreeSet<String>,
        epoch: u64,
    ) {
        if !self.enabled {
            return;
        }
        if self.entries.len() >= CACHE_CAP {
            // Stale-first eviction; flush entirely if everything is hot.
            self.entries.retain(|_, e| e.epoch == epoch);
            if self.entries.len() >= CACHE_CAP {
                self.entries.clear();
            }
        }
        self.entries.insert(
            key,
            Entry {
                app,
                dep_types,
                epoch,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_composition::{ComposeRequest, ServiceComposer};
    use ubiqos_discovery::{DeviceProperties, ServiceDescriptor};
    use ubiqos_graph::{AbstractComponentSpec, AbstractServiceGraph, DeviceId, ServiceComponent};
    use ubiqos_model::QosVector;

    fn registry() -> ServiceRegistry {
        let mut r = ServiceRegistry::new();
        r.register(ServiceDescriptor::new(
            "a1",
            "audio-server",
            ServiceComponent::builder("audio-server").build(),
        ));
        r
    }

    fn compose(r: &ServiceRegistry) -> ComposedApplication {
        let mut g = AbstractServiceGraph::new();
        g.add_spec(AbstractComponentSpec::new("audio-server"));
        ServiceComposer::new(r)
            .compose(&ComposeRequest {
                abstract_graph: &g,
                user_qos: QosVector::new(),
                client_device: DeviceId::from_index(0),
                client_props: DeviceProperties::unconstrained(),
                domain: None,
            })
            .unwrap()
    }

    #[test]
    fn hit_after_insert_and_invalidation_on_dependent_change() {
        let mut r = registry();
        let app = compose(&r);
        let mut cache = CompositionCache::new();
        let deps = BTreeSet::from(["audio-server".to_owned()]);
        let k = CacheKey::of(format_args!("k"));
        cache.insert(k, app.clone(), deps, r.epoch());
        assert_eq!(cache.lookup(k, &r), Some(app.clone()));

        // An unrelated type churns: the entry revalidates.
        r.register(ServiceDescriptor::new(
            "v1",
            "video-server",
            ServiceComponent::builder("video-server").build(),
        ));
        assert_eq!(cache.lookup(k, &r), Some(app));
        assert_eq!(cache.stats().revalidations, 1);

        // The dependency churns: the entry dies.
        r.register(ServiceDescriptor::new(
            "a2",
            "audio-server",
            ServiceComponent::builder("audio-server").build(),
        ));
        assert_eq!(cache.lookup(k, &r), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn disabled_cache_is_inert() {
        let r = registry();
        let app = compose(&r);
        let mut cache = CompositionCache::new();
        cache.set_enabled(false);
        let k = CacheKey::of(format_args!("k"));
        cache.insert(
            k,
            app,
            BTreeSet::from(["audio-server".to_owned()]),
            r.epoch(),
        );
        assert_eq!(cache.lookup(k, &r), None);
        assert!(!cache.enabled());
        assert_eq!(cache.stats().misses, 0, "disabled lookups are not counted");
    }
}
