//! The calibrated middleware cost model behind Figure 4.
//!
//! The paper measures its prototype on a CORBA-based middleware over a
//! mixed ethernet/802.11 testbed; we have neither, so every timing is a
//! deterministic model calibrated to the *magnitudes* the paper reports:
//! tens of ms for composition/distribution, hundreds of ms for
//! initialization and state handoff, and seconds for dynamic downloading
//! (which "occupies the largest proportion of the total overhead").

use serde::{Deserialize, Serialize};

/// The kind of network link a device hangs off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Wired LAN (the paper's desktops and workstations).
    Ethernet,
    /// 802.11 wireless (the paper's PDA).
    Wireless,
}

impl LinkKind {
    /// One-way latency of the link in ms.
    pub fn rtt_ms(self) -> f64 {
        match self {
            LinkKind::Ethernet => 2.0,
            LinkKind::Wireless => 25.0,
        }
    }

    /// Usable download bandwidth in Mbps.
    pub fn download_mbps(self) -> f64 {
        match self {
            LinkKind::Ethernet => 80.0,
            LinkKind::Wireless => 4.0,
        }
    }
}

/// Deterministic cost constants for every configuration action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed middleware cost of one composition round (acquiring the
    /// abstract graph, coordination messages).
    pub composition_base_ms: f64,
    /// Per-abstract-spec discovery lookup cost.
    pub discovery_per_query_ms: f64,
    /// Per-correction cost in the OC algorithm (adjustment negotiation or
    /// insertion bookkeeping).
    pub correction_ms: f64,
    /// Fixed middleware cost of one distribution round.
    pub distribution_base_ms: f64,
    /// Per-component placement bookkeeping.
    pub distribution_per_component_ms: f64,
    /// Per-component process start / binding cost during initialization.
    pub init_per_component_ms: f64,
    /// Number of round trips in the state-handoff protocol.
    pub handoff_rtts: f64,
    /// Media buffered at the interruption point before resuming (ms) —
    /// "the buffering time for the first frame at the interruption
    /// point".
    pub first_frame_buffer_ms: f64,
    /// Fixed per-download setup cost (repository lookup, verification).
    pub download_setup_ms: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            composition_base_ms: 40.0,
            discovery_per_query_ms: 12.0,
            correction_ms: 8.0,
            distribution_base_ms: 25.0,
            distribution_per_component_ms: 3.0,
            init_per_component_ms: 45.0,
            handoff_rtts: 6.0,
            first_frame_buffer_ms: 150.0,
            download_setup_ms: 60.0,
        }
    }
}

impl CostModel {
    /// Composition-tier time for `specs` abstract specs and
    /// `corrections` applied OC corrections.
    pub fn composition_ms(&self, specs: usize, corrections: usize) -> f64 {
        self.composition_base_ms
            + self.discovery_per_query_ms * specs as f64
            + self.correction_ms * corrections as f64
    }

    /// Distribution-tier time for a `components`-node graph.
    pub fn distribution_ms(&self, components: usize) -> f64 {
        self.distribution_base_ms + self.distribution_per_component_ms * components as f64
    }

    /// Initialization time for freshly started components.
    pub fn initialization_ms(&self, components: usize) -> f64 {
        self.init_per_component_ms * components as f64
    }

    /// Time to download `size_mb` of component code over `link`.
    pub fn download_ms(&self, size_mb: f64, link: LinkKind) -> f64 {
        if size_mb <= 0.0 {
            return 0.0;
        }
        self.download_setup_ms + size_mb * 8.0 / link.download_mbps() * 1000.0
    }

    /// State-handoff time onto a device attached via `link`: protocol
    /// round trips plus first-frame buffering. Wireless targets pay more,
    /// reproducing the paper's "the state handoff time from PC to PDA is
    /// longer than that from PDA to PC".
    pub fn handoff_ms(&self, target_link: LinkKind) -> f64 {
        self.handoff_rtts * target_link.rtt_ms() + self.first_frame_buffer_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wireless_is_slower_than_ethernet() {
        assert!(LinkKind::Wireless.rtt_ms() > LinkKind::Ethernet.rtt_ms());
        assert!(LinkKind::Wireless.download_mbps() < LinkKind::Ethernet.download_mbps());
    }

    #[test]
    fn handoff_asymmetry_matches_paper() {
        let m = CostModel::default();
        assert!(
            m.handoff_ms(LinkKind::Wireless) > m.handoff_ms(LinkKind::Ethernet),
            "PC->PDA handoff (wireless target) must exceed PDA->PC"
        );
    }

    #[test]
    fn download_scales_with_size_and_link() {
        let m = CostModel::default();
        assert_eq!(m.download_ms(0.0, LinkKind::Ethernet), 0.0);
        let small = m.download_ms(1.0, LinkKind::Ethernet);
        let big = m.download_ms(10.0, LinkKind::Ethernet);
        assert!(big > small);
        assert!(m.download_ms(1.0, LinkKind::Wireless) > small);
        // 1 MB over 80 Mbps = 100 ms transfer + 60 ms setup.
        assert!((small - 160.0).abs() < 1e-9);
    }

    #[test]
    fn composition_scales_with_specs_and_corrections() {
        let m = CostModel::default();
        assert!(m.composition_ms(3, 1) > m.composition_ms(2, 1));
        assert!(m.composition_ms(2, 2) > m.composition_ms(2, 1));
        assert_eq!(m.composition_ms(0, 0), m.composition_base_ms);
    }

    #[test]
    fn magnitudes_match_figure4() {
        // Figure 4 shows totals under ~2000 ms with downloading dominating
        // event 4 (5 components, several MB of code).
        let m = CostModel::default();
        let comp = m.composition_ms(5, 2);
        let dist = m.distribution_ms(5);
        let download = m.download_ms(8.0, LinkKind::Ethernet);
        let init = m.initialization_ms(5);
        let total = comp + dist + download + init;
        assert!(download > comp && download > dist && download > init);
        assert!(
            total < 2500.0,
            "total {total} ms stays in the figure's range"
        );
    }
}
