//! The domain server: per-domain infrastructure service hosting the
//! configuration model (Section 1: "the service configuration model is
//! implemented as part of the domain server").

use crate::checkpoint::{Checkpoint, HandoffPlan};
use crate::cost_model::{CostModel, LinkKind};
use crate::event_service::{EventService, RuntimeEvent};
use crate::overhead::ConfigOverhead;
use crate::repository::ComponentRepository;
use crate::streaming::{delivered_qos, DeliveredQos};
use std::collections::BTreeMap;
use std::fmt;
use ubiqos::{
    Configuration, ConfigureError, ConfigureRequest, ReconfigureTrigger, ServiceConfigurator,
};
use ubiqos_discovery::{DeviceProperties, DomainId, ServiceRegistry};
use ubiqos_distribution::Environment;
use ubiqos_graph::{AbstractServiceGraph, DeviceId};
use ubiqos_model::QosVector;

/// Identifier of a session within one domain server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// One running application session.
#[derive(Debug, Clone)]
pub struct Session {
    /// Human-readable application name.
    pub name: String,
    /// The abstract application description (kept for recomposition).
    pub abstract_graph: AbstractServiceGraph,
    /// The user's QoS requirements.
    pub user_qos: QosVector,
    /// The user's current portal device.
    pub client_device: DeviceId,
    /// The domain the user currently discovers services in (`None` =
    /// whole smart space).
    pub domain: Option<DomainId>,
    /// The live configuration.
    pub configuration: Configuration,
    /// Media position in seconds (advances as the session plays).
    pub position_s: f64,
    /// Overhead of every configuration action so far, labeled.
    pub overhead_log: Vec<(String, ConfigOverhead)>,
}

impl Session {
    /// The QoS currently delivered at each sink.
    pub fn measured_qos(&self) -> Vec<DeliveredQos> {
        delivered_qos(&self.configuration.app.graph)
    }

    /// How well the delivered QoS satisfies the user's request, in
    /// `[0, 1]`: the mean [`ubiqos_model::satisfaction`] over all sinks
    /// (1.0 when the user requested nothing or the graph has no sinks).
    pub fn qos_satisfaction(&self) -> f64 {
        let vectors = crate::streaming::sink_delivered_vectors(&self.configuration.app.graph);
        if vectors.is_empty() || self.user_qos.is_empty() {
            return 1.0;
        }
        // Only score the user dimensions each sink's stream carries: a
        // video request's frame rate is not the audio sink's business.
        let scores: Vec<f64> = vectors
            .iter()
            .map(|(_, delivered)| {
                let relevant: QosVector = self
                    .user_qos
                    .iter()
                    .filter(|(dim, _)| delivered.get(dim).is_some())
                    .map(|(d, v)| (d.clone(), v.clone()))
                    .collect();
                ubiqos_model::satisfaction(delivered, &relevant)
            })
            .collect();
        scores.iter().sum::<f64>() / scores.len() as f64
    }
}

/// The outcome of a crash or fluctuation recovery pass.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Sessions successfully reconfigured onto the surviving devices.
    pub recovered: Vec<SessionId>,
    /// Sessions that could not be reconfigured and were stopped.
    pub dropped: Vec<SessionId>,
    /// For each dropped session, the configuration error witnessing that
    /// it was genuinely unplaceable when the drop happened (same order as
    /// `dropped`).
    pub drop_errors: Vec<(SessionId, ConfigureError)>,
}

/// The per-domain infrastructure server: registry + environment +
/// repository + event service + the two-tier configurator.
///
/// The server accounts every running session against the device
/// capacities: configuration requests see the *residual* environment, so
/// concurrent applications genuinely compete for the smart space's
/// resources (and for link bandwidth, which is charged as a shared pool).
pub struct DomainServer {
    registry: ServiceRegistry,
    /// Pristine capacities as built, before any crash/fluctuation: the
    /// reference state crashed devices recover to.
    pristine: Environment,
    /// Full current capacities (what the devices could offer if idle).
    capacity: Environment,
    /// Residual environment: capacity minus every live session's charge.
    env: Environment,
    /// Link kind per device (indexes match the environment).
    links: Vec<LinkKind>,
    /// Device properties per device, for client-side discovery filtering.
    device_props: Vec<DeviceProperties>,
    repository: ComponentRepository,
    costs: CostModel,
    events: EventService,
    sessions: BTreeMap<u64, Session>,
    next_session: u64,
    now_ms: f64,
}

impl fmt::Debug for DomainServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DomainServer")
            .field("devices", &self.env.device_count())
            .field("sessions", &self.sessions.len())
            .field("now_ms", &self.now_ms)
            .finish()
    }
}

impl DomainServer {
    /// Creates a domain server over an environment.
    ///
    /// # Panics
    ///
    /// Panics when `links`/`device_props` lengths do not match the
    /// environment's device count (scenario construction error).
    pub fn new(
        env: Environment,
        links: Vec<LinkKind>,
        device_props: Vec<DeviceProperties>,
    ) -> Self {
        assert_eq!(links.len(), env.device_count(), "one link kind per device");
        assert_eq!(
            device_props.len(),
            env.device_count(),
            "one property set per device"
        );
        DomainServer {
            registry: ServiceRegistry::new(),
            pristine: env.clone(),
            capacity: env.clone(),
            env,
            links,
            device_props,
            repository: ComponentRepository::new(),
            costs: CostModel::default(),
            events: EventService::new(),
            sessions: BTreeMap::new(),
            next_session: 0,
            now_ms: 0.0,
        }
    }

    /// Mutable access to the service registry (device/service arrival and
    /// departure).
    pub fn registry_mut(&mut self) -> &mut ServiceRegistry {
        &mut self.registry
    }

    /// The registry.
    pub fn registry(&self) -> &ServiceRegistry {
        &self.registry
    }

    /// Mutable access to the component repository (pre-installation).
    pub fn repository_mut(&mut self) -> &mut ComponentRepository {
        &mut self.repository
    }

    /// The event service (subscribe for reconfiguration notifications).
    pub fn events(&self) -> &EventService {
        &self.events
    }

    /// The *residual* environment: current capacities minus every live
    /// session's charge.
    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// The full current capacities (what idle devices could offer).
    pub fn capacity(&self) -> &Environment {
        &self.capacity
    }

    /// The pristine capacities the server was built with, untouched by
    /// any crash or fluctuation — the reference state fault injectors
    /// scale degradation factors against.
    pub fn pristine(&self) -> &Environment {
        &self.pristine
    }

    /// The number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Current wall-clock time in ms since domain start.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Borrows a session.
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions.get(&id.0)
    }

    /// Iterates over every live session in id order (the order recovery
    /// passes process them in).
    pub fn sessions(&self) -> impl Iterator<Item = (SessionId, &Session)> {
        self.sessions.iter().map(|(&id, s)| (SessionId(id), s))
    }

    /// Probes whether an application could be configured *right now*
    /// against the residual environment, without starting a session or
    /// charging anything. Fault-injection harnesses use this to verify
    /// that admission denials and recovery drops are genuine.
    pub fn can_place(
        &self,
        abstract_graph: &AbstractServiceGraph,
        user_qos: &QosVector,
        client_device: DeviceId,
        domain: Option<DomainId>,
    ) -> bool {
        self.configure(abstract_graph, user_qos, client_device, domain)
            .is_ok()
    }

    /// Advances wall-clock and every session's media position by
    /// `seconds` of playback.
    pub fn play(&mut self, seconds: f64) {
        self.now_ms += seconds * 1000.0;
        for s in self.sessions.values_mut() {
            s.position_s += seconds;
        }
    }

    /// Starts an application session on behalf of a user at
    /// `client_device`: composes, distributes, downloads missing
    /// component code, and initializes.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigureError`] from either tier; the session is not
    /// created on failure.
    pub fn start_session(
        &mut self,
        name: impl Into<String>,
        abstract_graph: AbstractServiceGraph,
        user_qos: QosVector,
        client_device: DeviceId,
    ) -> Result<SessionId, ConfigureError> {
        self.start_session_in_domain(name, abstract_graph, user_qos, client_device, None)
    }

    /// Starts a session whose discovery is scoped to `domain` (and its
    /// ancestors). See [`DomainServer::start_session`].
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigureError`] from either tier.
    pub fn start_session_in_domain(
        &mut self,
        name: impl Into<String>,
        abstract_graph: AbstractServiceGraph,
        user_qos: QosVector,
        client_device: DeviceId,
        domain: Option<DomainId>,
    ) -> Result<SessionId, ConfigureError> {
        let name = name.into();
        let (configuration, mut overhead) =
            self.configure(&abstract_graph, &user_qos, client_device, domain)?;
        overhead.downloading_ms = self.download_for(&configuration);
        overhead.init_or_handoff_ms = self
            .costs
            .initialization_ms(configuration.app.graph.component_count());
        self.env
            .charge_cut(&configuration.app.graph, &configuration.cut)
            .expect("configured cut has consistent dimensions");

        let id = SessionId(self.next_session);
        self.next_session += 1;
        self.sessions.insert(
            id.0,
            Session {
                name,
                abstract_graph,
                user_qos,
                client_device,
                domain,
                configuration,
                position_s: 0.0,
                overhead_log: vec![("start".into(), overhead)],
            },
        );
        self.now_ms += overhead.total_ms();
        self.events.publish(RuntimeEvent {
            at_ms: self.now_ms,
            session: Some(id.0),
            trigger: ReconfigureTrigger::ApplicationStarted,
        });
        Ok(id)
    }

    /// Stops a session, refunding its resources and returning it.
    pub fn stop_session(&mut self, id: SessionId) -> Option<Session> {
        let s = self.sessions.remove(&id.0);
        if let Some(s) = &s {
            self.env
                .refund_cut(&s.configuration.app.graph, &s.configuration.cut)
                .expect("charged cut has consistent dimensions");
            self.events.publish(RuntimeEvent {
                at_ms: self.now_ms,
                session: Some(id.0),
                trigger: ReconfigureTrigger::ApplicationStopped,
            });
        }
        s
    }

    /// Handles a portal switch (e.g. PC → PDA): recomposes for the new
    /// client device, redistributes, downloads anything missing, and
    /// performs state handoff so the media "continues from the
    /// interruption point".
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigureError`]; on failure the old configuration
    /// stays live.
    pub fn switch_device(
        &mut self,
        id: SessionId,
        new_device: DeviceId,
    ) -> Result<HandoffPlan, ConfigureError> {
        let (abstract_graph, user_qos, old_device, position_s, old_config, domain) = {
            let s = self
                .sessions
                .get(&id.0)
                .expect("switch_device on a live session");
            (
                s.abstract_graph.clone(),
                s.user_qos.clone(),
                s.client_device,
                s.position_s,
                s.configuration.clone(),
                s.domain,
            )
        };
        // Free the old configuration's resources first — the new one may
        // reuse the same devices. On failure the old charge is restored
        // and the old configuration stays live.
        self.env
            .refund_cut(&old_config.app.graph, &old_config.cut)
            .expect("charged cut has consistent dimensions");
        let configured = self.configure(&abstract_graph, &user_qos, new_device, domain);
        let (configuration, mut overhead) = match configured {
            Ok(ok) => ok,
            Err(e) => {
                self.env
                    .charge_cut(&old_config.app.graph, &old_config.cut)
                    .expect("restoring the previous charge");
                return Err(e);
            }
        };
        self.env
            .charge_cut(&configuration.app.graph, &configuration.cut)
            .expect("configured cut has consistent dimensions");
        overhead.downloading_ms = self.download_for(&configuration);

        let checkpoint = Checkpoint::capture(position_s, self.now_ms);
        let plan = HandoffPlan::new(checkpoint, self.links[new_device.index()], &self.costs);
        overhead.init_or_handoff_ms = plan.handoff_ms;

        let session = self.sessions.get_mut(&id.0).expect("checked above");
        session.client_device = new_device;
        session.configuration = configuration;
        session
            .overhead_log
            .push((format!("switch {old_device} -> {new_device}"), overhead));
        self.now_ms += overhead.total_ms();
        self.events.publish(RuntimeEvent {
            at_ms: self.now_ms,
            session: Some(id.0),
            trigger: ReconfigureTrigger::DeviceSwitched {
                from: old_device,
                to: new_device,
            },
        });
        Ok(plan)
    }

    /// Handles user mobility: the user (and their portal) moved to a new
    /// location/domain, so "the previous service components may no longer
    /// be available" — the session is recomposed against the services
    /// visible from the new domain, with state handoff.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigureError`]; on failure the old configuration
    /// stays live (and the session keeps its old domain).
    pub fn move_user(
        &mut self,
        id: SessionId,
        new_domain: Option<DomainId>,
        new_device: DeviceId,
    ) -> Result<HandoffPlan, ConfigureError> {
        let (abstract_graph, user_qos, position_s, old_config) = {
            let s = self
                .sessions
                .get(&id.0)
                .expect("move_user on a live session");
            (
                s.abstract_graph.clone(),
                s.user_qos.clone(),
                s.position_s,
                s.configuration.clone(),
            )
        };
        self.env
            .refund_cut(&old_config.app.graph, &old_config.cut)
            .expect("charged cut has consistent dimensions");
        let configured = self.configure(&abstract_graph, &user_qos, new_device, new_domain);
        let (configuration, mut overhead) = match configured {
            Ok(ok) => ok,
            Err(e) => {
                self.env
                    .charge_cut(&old_config.app.graph, &old_config.cut)
                    .expect("restoring the previous charge");
                return Err(e);
            }
        };
        self.env
            .charge_cut(&configuration.app.graph, &configuration.cut)
            .expect("configured cut has consistent dimensions");
        overhead.downloading_ms = self.download_for(&configuration);
        let checkpoint = Checkpoint::capture(position_s, self.now_ms);
        let plan = HandoffPlan::new(checkpoint, self.links[new_device.index()], &self.costs);
        overhead.init_or_handoff_ms = plan.handoff_ms;

        let location = new_domain.map_or("the whole space".to_owned(), |d| {
            self.registry
                .domain(d)
                .map_or_else(|| d.to_string(), |dom| dom.name.clone())
        });
        let session = self.sessions.get_mut(&id.0).expect("checked above");
        session.client_device = new_device;
        session.domain = new_domain;
        session.configuration = configuration;
        session
            .overhead_log
            .push((format!("move to {location}"), overhead));
        self.now_ms += overhead.total_ms();
        self.events.publish(RuntimeEvent {
            at_ms: self.now_ms,
            session: Some(id.0),
            trigger: ReconfigureTrigger::UserMoved {
                to_location: location,
            },
        });
        Ok(plan)
    }

    /// Handles a device crash (Section 3.3: "if one of old devices
    /// crashes, the service distributor needs to calculate new service
    /// distributions for the changed resource availability").
    ///
    /// The crashed device's capacity and links drop to zero and every
    /// live session is reconfigured from scratch against the survivors
    /// (recomposition included — instances hosted only on the dead device
    /// should be unregistered by the caller beforehand). Sessions that
    /// cannot be reconfigured are stopped.
    pub fn handle_crash(&mut self, device: DeviceId) -> RecoveryReport {
        let d = device.index();
        if let Some(dev) = self.capacity.device_mut(d) {
            let dim = dev.availability().dim();
            dev.set_availability(ubiqos_model::ResourceVector::zero(dim));
        }
        for other in 0..self.capacity.device_count() {
            if other != d {
                self.capacity.bandwidth_mut().set(d, other, 0.0);
            }
        }
        self.events.publish(RuntimeEvent {
            at_ms: self.now_ms,
            session: None,
            trigger: ReconfigureTrigger::DeviceCrashed(device),
        });
        self.reconfigure_all_sessions(&format!("recover from {device} crash"))
    }

    /// Brings a crashed (or degraded) device back: its capacity and every
    /// link touching it return to the *pristine* values the server was
    /// built with, and live sessions are re-placed so the recovered
    /// capacity is actually used.
    ///
    /// Note that recovery is deliberately coarse — a link degraded
    /// independently via [`DomainServer::degrade_link`] is also restored
    /// if it touches the recovered device, mirroring a rebooted node
    /// rejoining the network at full line rate.
    pub fn recover_device(&mut self, device: DeviceId) -> RecoveryReport {
        let d = device.index();
        if let (Some(dev), Some(fresh)) = (self.capacity.device_mut(d), self.pristine.device(d)) {
            dev.set_availability(fresh.availability().clone());
        }
        for other in 0..self.capacity.device_count() {
            if other != d {
                let fresh = self.pristine.bandwidth().get(d, other);
                self.capacity.bandwidth_mut().set(d, other, fresh);
            }
        }
        self.events.publish(RuntimeEvent {
            at_ms: self.now_ms,
            session: None,
            trigger: ReconfigureTrigger::DeviceRecovered(device),
        });
        self.reconfigure_all_sessions(&format!("re-place after {device} recovery"))
    }

    /// Applies a link-bandwidth fluctuation: the capacity of the `a`-`b`
    /// link becomes `mbps` (degradation or restoration), and every live
    /// session is re-placed against the new shared pool. Sessions whose
    /// streams no longer fit anywhere are stopped.
    pub fn degrade_link(&mut self, a: DeviceId, b: DeviceId, mbps: f64) -> RecoveryReport {
        self.capacity
            .bandwidth_mut()
            .set(a.index(), b.index(), mbps);
        self.events.publish(RuntimeEvent {
            at_ms: self.now_ms,
            session: None,
            trigger: ReconfigureTrigger::LinkFluctuation { a, b },
        });
        self.reconfigure_all_sessions(&format!("absorb link fluctuation on {a}-{b}"))
    }

    /// Applies a resource fluctuation: the device's *capacity* becomes
    /// `availability` (running sessions keep their charges). Sessions
    /// whose placements no longer fit are reconfigured, and stopped if
    /// that fails.
    pub fn fluctuate(
        &mut self,
        device: DeviceId,
        availability: ubiqos_model::ResourceVector,
    ) -> RecoveryReport {
        if let Some(dev) = self.capacity.device_mut(device.index()) {
            dev.set_availability(availability);
        }
        self.events.publish(RuntimeEvent {
            at_ms: self.now_ms,
            session: None,
            trigger: ReconfigureTrigger::ResourceFluctuation(device),
        });
        self.reconfigure_all_sessions(&format!("absorb fluctuation on {device}"))
    }

    /// Re-places every live session against the current capacities, in
    /// session order. Used after crashes and fluctuations.
    fn reconfigure_all_sessions(&mut self, label: &str) -> RecoveryReport {
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        // Start from the full (post-event) capacity and re-admit one by one.
        self.env = self.capacity.clone();
        let mut report = RecoveryReport {
            recovered: Vec::new(),
            dropped: Vec::new(),
            drop_errors: Vec::new(),
        };
        for raw_id in ids {
            let (abstract_graph, user_qos, client_device, domain) = {
                let s = &self.sessions[&raw_id];
                (
                    s.abstract_graph.clone(),
                    s.user_qos.clone(),
                    s.client_device,
                    s.domain,
                )
            };
            match self.configure(&abstract_graph, &user_qos, client_device, domain) {
                Ok((configuration, mut overhead)) => {
                    overhead.downloading_ms = self.download_for(&configuration);
                    overhead.init_or_handoff_ms =
                        self.costs.handoff_ms(self.links[client_device.index()]);
                    self.env
                        .charge_cut(&configuration.app.graph, &configuration.cut)
                        .expect("configured cut has consistent dimensions");
                    let session = self.sessions.get_mut(&raw_id).expect("live id");
                    session.configuration = configuration;
                    session.overhead_log.push((label.to_owned(), overhead));
                    self.now_ms += overhead.total_ms();
                    report.recovered.push(SessionId(raw_id));
                }
                Err(e) => {
                    self.sessions.remove(&raw_id);
                    self.events.publish(RuntimeEvent {
                        at_ms: self.now_ms,
                        session: Some(raw_id),
                        trigger: ReconfigureTrigger::ApplicationStopped,
                    });
                    report.dropped.push(SessionId(raw_id));
                    report.drop_errors.push((SessionId(raw_id), e));
                }
            }
        }
        report
    }

    /// Runs the two-tier pipeline and prices its composition and
    /// distribution phases.
    fn configure(
        &self,
        abstract_graph: &AbstractServiceGraph,
        user_qos: &QosVector,
        client_device: DeviceId,
        domain: Option<DomainId>,
    ) -> Result<(Configuration, ConfigOverhead), ConfigureError> {
        let mut configurator = ServiceConfigurator::new(&self.registry);
        let configuration = configurator.configure(&ConfigureRequest {
            abstract_graph,
            user_qos: user_qos.clone(),
            client_device,
            client_props: self.device_props[client_device.index()],
            domain,
            env: &self.env,
        })?;
        let overhead = ConfigOverhead {
            composition_ms: self.costs.composition_ms(
                abstract_graph.spec_count(),
                configuration.app.report.corrections.len(),
            ),
            distribution_ms: self
                .costs
                .distribution_ms(configuration.app.graph.component_count()),
            downloading_ms: 0.0,
            init_or_handoff_ms: 0.0,
        };
        Ok((configuration, overhead))
    }

    /// Downloads every instance of a configuration onto its assigned
    /// device, returning the total download time.
    fn download_for(&mut self, configuration: &Configuration) -> f64 {
        let mut total = 0.0;
        for inst in &configuration.app.instances {
            if let Some(device) = configuration.cut.part_of(inst.component) {
                total += self.repository.ensure_installed(
                    device,
                    &inst.instance_id,
                    inst.code_size_mb,
                    self.links[device],
                    &self.costs,
                );
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubiqos_discovery::ServiceDescriptor;
    use ubiqos_distribution::Device;
    use ubiqos_graph::{AbstractComponentSpec, ComponentRole, PinHint, ServiceComponent};
    use ubiqos_model::{QosDimension as D, QosValue, ResourceVector};

    fn two_desktop_server() -> DomainServer {
        let env = Environment::builder()
            .device(Device::new(
                "desktop1",
                ResourceVector::mem_cpu(256.0, 300.0),
            ))
            .device(Device::new(
                "desktop2",
                ResourceVector::mem_cpu(256.0, 300.0),
            ))
            .default_bandwidth_mbps(50.0)
            .build();
        let props = DeviceProperties {
            screen_pixels: 1_920_000.0,
            compute_factor: 5.0,
        };
        let mut server = DomainServer::new(
            env,
            vec![LinkKind::Ethernet, LinkKind::Ethernet],
            vec![props, props],
        );
        server.registry_mut().register(ServiceDescriptor::new(
            "server@d1",
            "audio-server",
            ServiceComponent::builder("audio-server")
                .role(ComponentRole::Source)
                .qos_out(
                    QosVector::new()
                        .with(D::Format, QosValue::token("MPEG"))
                        .with(D::FrameRate, QosValue::exact(40.0)),
                )
                .capability(D::FrameRate, QosValue::range(5.0, 40.0))
                .resources(ResourceVector::mem_cpu(64.0, 40.0))
                .build(),
        ));
        server.registry_mut().register(
            ServiceDescriptor::new(
                "player@any",
                "audio-player",
                ServiceComponent::builder("audio-player")
                    .role(ComponentRole::Sink)
                    .qos_in(
                        QosVector::new()
                            .with(D::Format, QosValue::token("MPEG"))
                            .with(D::FrameRate, QosValue::range(10.0, 40.0)),
                    )
                    .resources(ResourceVector::mem_cpu(16.0, 20.0))
                    .build(),
            )
            .with_code_size_mb(2.0),
        );
        server
    }

    fn audio_app() -> AbstractServiceGraph {
        let mut g = AbstractServiceGraph::new();
        let s = g.add_spec(AbstractComponentSpec::new("audio-server").with_pin(PinHint::Device(0)));
        let p =
            g.add_spec(AbstractComponentSpec::new("audio-player").with_pin(PinHint::ClientDevice));
        g.add_edge(s, p, 1.4).unwrap();
        g
    }

    #[test]
    fn start_session_configures_and_accounts_overhead() {
        let mut server = two_desktop_server();
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        let s = server.session(id).unwrap();
        assert_eq!(s.overhead_log.len(), 1);
        let (label, overhead) = &s.overhead_log[0];
        assert_eq!(label, "start");
        assert!(overhead.composition_ms > 0.0);
        assert!(overhead.distribution_ms > 0.0);
        assert!(overhead.downloading_ms > 0.0, "nothing was preinstalled");
        assert!(overhead.init_or_handoff_ms > 0.0);
        let qos = s.measured_qos();
        assert_eq!(qos.len(), 1);
        assert_eq!(qos[0].fps, 40.0);
        assert!(server.now_ms() > 0.0);
    }

    #[test]
    fn preinstalled_components_download_nothing() {
        let mut server = two_desktop_server();
        for d in 0..2 {
            server.repository_mut().preinstall(d, "server@d1");
            server.repository_mut().preinstall(d, "player@any");
        }
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        let s = server.session(id).unwrap();
        assert_eq!(s.overhead_log[0].1.downloading_ms, 0.0);
    }

    #[test]
    fn switch_device_hands_off_state() {
        let mut server = two_desktop_server();
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        server.play(30.0);
        let plan = server.switch_device(id, DeviceId::from_index(0)).unwrap();
        assert_eq!(
            plan.resume_position_s(),
            30.0,
            "resumes at interruption point"
        );
        let s = server.session(id).unwrap();
        assert_eq!(s.client_device, DeviceId::from_index(0));
        assert_eq!(s.overhead_log.len(), 2);
        assert!(s.overhead_log[1].0.contains("switch"));
        assert!(s.overhead_log[1].1.init_or_handoff_ms > 0.0);
        // The player is now pinned to desktop1.
        let player = s
            .configuration
            .app
            .instances
            .iter()
            .find(|i| i.instance_id == "player@any")
            .unwrap();
        assert_eq!(s.configuration.cut.part_of(player.component), Some(0));
    }

    #[test]
    fn events_are_published() {
        let mut server = two_desktop_server();
        let rx = server.events().subscribe();
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        server.switch_device(id, DeviceId::from_index(0)).unwrap();
        server.stop_session(id).unwrap();
        let events: Vec<RuntimeEvent> = rx.try_iter().collect();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].trigger, ReconfigureTrigger::ApplicationStarted);
        assert!(matches!(
            events[1].trigger,
            ReconfigureTrigger::DeviceSwitched { .. }
        ));
        assert_eq!(events[2].trigger, ReconfigureTrigger::ApplicationStopped);
    }

    #[test]
    fn failed_start_creates_no_session() {
        let mut server = two_desktop_server();
        let mut bogus = AbstractServiceGraph::new();
        bogus.add_spec(AbstractComponentSpec::new("hologram-projector"));
        let err = server
            .start_session("bogus", bogus, QosVector::new(), DeviceId::from_index(0))
            .unwrap_err();
        assert!(matches!(err, ConfigureError::Composition(_)));
        assert!(server.session(SessionId(0)).is_none());
    }

    #[test]
    fn stop_unknown_session_is_none() {
        let mut server = two_desktop_server();
        assert!(server.stop_session(SessionId(42)).is_none());
    }

    #[test]
    fn sessions_charge_and_refund_the_environment() {
        let mut server = two_desktop_server();
        let idle = server.env().clone();
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        assert_eq!(server.session_count(), 1);
        // Something was charged somewhere.
        let charged: f64 = server
            .env()
            .devices()
            .iter()
            .map(|d| d.availability().amounts().iter().sum::<f64>())
            .sum();
        let full: f64 = idle
            .devices()
            .iter()
            .map(|d| d.availability().amounts().iter().sum::<f64>())
            .sum();
        assert!(charged < full);
        server.stop_session(id).unwrap();
        assert_eq!(server.env(), &idle, "refund restores the environment");
        assert_eq!(server.capacity(), &idle);
    }

    #[test]
    fn concurrent_sessions_compete_for_capacity() {
        // The audio server needs [64, 40] and must sit on desktop1
        // (pinned), which offers [256, 300]: at most 4 concurrent
        // sessions' servers fit even though players spread out.
        let mut server = two_desktop_server();
        let mut started = 0;
        for i in 0..8 {
            let device = DeviceId::from_index(i % 2);
            if server
                .start_session(format!("audio-{i}"), audio_app(), QosVector::new(), device)
                .is_ok()
            {
                started += 1;
            }
        }
        assert!(started >= 3, "several sessions fit ({started})");
        assert!(started < 8, "but not all of them ({started})");
    }

    #[test]
    fn failed_switch_restores_the_old_charge() {
        let mut server = two_desktop_server();
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        let residual_before = server.env().clone();
        // Make the switch impossible: the player vanishes from discovery.
        let taken = server.registry_mut().unregister("player@any").unwrap();
        assert!(server.switch_device(id, DeviceId::from_index(0)).is_err());
        assert_eq!(
            server.env(),
            &residual_before,
            "failed switch must not leak or free resources"
        );
        server.registry_mut().register(taken);
        assert!(server.switch_device(id, DeviceId::from_index(0)).is_ok());
    }

    #[test]
    fn device_crash_recovers_sessions_onto_survivors() {
        let mut server = two_desktop_server();
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        // The player's desktop2 crashes... but the player is pinned to
        // the client device, so the session can only survive if the
        // client moves. Crash desktop2 and expect the session dropped.
        let report = server.handle_crash(DeviceId::from_index(1));
        assert_eq!(report.dropped, vec![id]);
        assert!(report.recovered.is_empty());
        assert_eq!(server.session_count(), 0);
        assert!(server
            .capacity()
            .device(1)
            .unwrap()
            .availability()
            .is_zero());
    }

    #[test]
    fn crash_of_unused_device_keeps_sessions() {
        // Three devices: server pinned to d0, client on d1, d2 idle.
        let env = Environment::builder()
            .device(Device::new("d0", ResourceVector::mem_cpu(256.0, 300.0)))
            .device(Device::new("d1", ResourceVector::mem_cpu(256.0, 300.0)))
            .device(Device::new("d2", ResourceVector::mem_cpu(256.0, 300.0)))
            .default_bandwidth_mbps(50.0)
            .build();
        let props = DeviceProperties {
            screen_pixels: 1_920_000.0,
            compute_factor: 5.0,
        };
        let mut server = DomainServer::new(env, vec![LinkKind::Ethernet; 3], vec![props; 3]);
        // Reuse the two-desktop registry entries.
        let donor = two_desktop_server();
        for hit in donor
            .registry()
            .discover_all(&ubiqos_discovery::DiscoveryQuery::new("audio-server"))
        {
            server.registry_mut().register(hit.descriptor);
        }
        for hit in donor
            .registry()
            .discover_all(&ubiqos_discovery::DiscoveryQuery::new("audio-player"))
        {
            server.registry_mut().register(hit.descriptor);
        }
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        let report = server.handle_crash(DeviceId::from_index(2));
        assert_eq!(report.recovered, vec![id]);
        assert!(report.dropped.is_empty());
        let s = server.session(id).unwrap();
        assert!(s.overhead_log.last().unwrap().0.contains("crash"));
    }

    #[test]
    fn user_mobility_recomposes_in_the_new_domain() {
        // Two rooms, each with its own audio server; the player is global.
        let mut server = two_desktop_server();
        let office = server.registry_mut().add_domain("office", None);
        let lounge = server.registry_mut().add_domain("lounge", None);
        // Scope the existing server instance to the office and add a
        // lounge-only one.
        let office_server = {
            let mut hit = server
                .registry()
                .discover_all(&ubiqos_discovery::DiscoveryQuery::new("audio-server"))
                .remove(0)
                .descriptor;
            hit.domain = Some(office);
            hit
        };
        let mut lounge_server = office_server.clone();
        lounge_server.instance_id = "server@lounge".into();
        lounge_server.domain = Some(lounge);
        server.registry_mut().register(office_server);
        server.registry_mut().register(lounge_server);

        let id = server
            .start_session_in_domain(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
                Some(office),
            )
            .unwrap();
        assert_eq!(server.session(id).unwrap().domain, Some(office));
        let uses = |server: &DomainServer, instance: &str| {
            server
                .session(id)
                .unwrap()
                .configuration
                .app
                .instances
                .iter()
                .any(|i| i.instance_id == instance)
        };
        assert!(uses(&server, "server@d1"), "office instance in use");

        server.play(10.0);
        let rx = server.events().subscribe();
        let plan = server
            .move_user(id, Some(lounge), DeviceId::from_index(0))
            .unwrap();
        assert_eq!(plan.resume_position_s(), 10.0);
        let s = server.session(id).unwrap();
        assert_eq!(s.domain, Some(lounge));
        assert!(
            uses(&server, "server@lounge"),
            "recomposed onto the lounge server"
        );
        assert!(s.overhead_log.last().unwrap().0.contains("lounge"));
        let events: Vec<_> = rx.try_iter().collect();
        assert!(matches!(
            events[0].trigger,
            ReconfigureTrigger::UserMoved { ref to_location } if to_location == "lounge"
        ));
    }

    #[test]
    fn failed_move_keeps_old_domain_and_charge() {
        let mut server = two_desktop_server();
        let office = server.registry_mut().add_domain("office", None);
        let desert = server.registry_mut().add_domain("desert", None);
        // Scope everything to the office; the desert is empty.
        for ty in ["audio-server", "audio-player"] {
            let mut hit = server
                .registry()
                .discover_all(&ubiqos_discovery::DiscoveryQuery::new(ty))
                .remove(0)
                .descriptor;
            hit.domain = Some(office);
            server.registry_mut().register(hit);
        }
        let id = server
            .start_session_in_domain(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
                Some(office),
            )
            .unwrap();
        let residual = server.env().clone();
        assert!(server
            .move_user(id, Some(desert), DeviceId::from_index(0))
            .is_err());
        let s = server.session(id).unwrap();
        assert_eq!(s.domain, Some(office), "old domain kept");
        assert_eq!(server.env(), &residual, "charge unchanged");
    }

    #[test]
    fn fluctuation_can_drop_then_readmit() {
        let mut server = two_desktop_server();
        let id = server
            .start_session(
                "audio",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1),
            )
            .unwrap();
        // Desktop1 (hosting the pinned server) loses almost everything.
        let report = server.fluctuate(DeviceId::from_index(0), ResourceVector::mem_cpu(8.0, 8.0));
        assert_eq!(report.dropped, vec![id]);
        // Capacity returns; new sessions work again.
        server.fluctuate(
            DeviceId::from_index(0),
            ResourceVector::mem_cpu(256.0, 300.0),
        );
        assert!(server
            .start_session(
                "audio2",
                audio_app(),
                QosVector::new(),
                DeviceId::from_index(1)
            )
            .is_ok());
    }
}
